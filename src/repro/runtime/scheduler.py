"""The stage scheduler: dispatch ready stages concurrently, charge the
critical path.

Execution model.  Stage-graph nodes are submitted to a thread pool as soon
as every dependency has finished (Kahn-style ready set).  Each node runs
under its own :class:`~repro.runtime.metering.StageMeter`, so its simulated
duration (network + compute + per-stage overhead) is measured privately
even while other nodes run on sibling threads; ledgered *bytes* still flow
to the global ledger and stay identical to a serial run.

Simulated time.  Real stage overlap on the host is incidental -- what the
paper's clock should report is the dependency-bound schedule: a node starts
when its slowest dependency finishes, and the run ends when the last node
does (max over concurrent chains, not the serial sum).  The event times are
computed from the measured per-node durations and the dependency structure
alone, assuming one stage per cluster dispatch slot, so the reported
seconds are deterministic -- independent of host thread count, pool width
or completion order.  The critical path (the chain realising the final
finish time) is committed to the global clock, split by cause.

Failure.  The first raised error stops new submissions; running nodes are
drained, resources are left to the executor's cleanup, and the original
exception (e.g. :class:`~repro.errors.MemoryLimitExceeded`) is re-raised
unwrapped.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable

from repro.rdd.clock import TimeBreakdown
from repro.runtime.graph import StageGraph, StageNode
from repro.runtime.metering import StageMeter

#: Upper bound on concurrently dispatched stages when the config does not
#: pin one.  Stage concurrency is about overlapping *simulated* stages, not
#: saturating host cores (block tasks already use the engine pools), so a
#: modest width is plenty.
DEFAULT_MAX_CONCURRENT_STAGES = 8


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """Simulated schedule entry for one stage-graph node."""

    node: int
    stage: int
    duration: TimeBreakdown  # this node's own metered cost
    start_seconds: float  # when its last dependency finished
    finish_seconds: float

    @property
    def duration_seconds(self) -> float:
        return self.duration.total_seconds


@dataclasses.dataclass
class SchedulerReport:
    """What one scheduled run measured."""

    timings: list[StageTiming]  # indexed by node
    critical_path: tuple[int, ...]  # node indices realising the makespan
    elapsed: TimeBreakdown  # summed along the critical path

    @property
    def makespan_seconds(self) -> float:
        return self.elapsed.total_seconds

    def serial_seconds(self) -> float:
        """What the old serial clock would have charged (sum of all nodes)."""
        return sum(t.duration_seconds for t in self.timings)


class StageScheduler:
    """Runs a :class:`StageGraph`'s nodes with bounded concurrency."""

    def __init__(self, max_concurrent: int | None = None) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.max_concurrent = max_concurrent or DEFAULT_MAX_CONCURRENT_STAGES

    def run(
        self,
        graph: StageGraph,
        run_node: Callable[[StageNode], StageMeter],
    ) -> SchedulerReport:
        """Execute every node (``run_node`` returns its meter); first error
        is re-raised after in-flight nodes drain."""
        meters = self._dispatch(graph, run_node)
        return self._simulate(graph, meters)

    # -- physical dispatch ---------------------------------------------------

    def _dispatch(
        self,
        graph: StageGraph,
        run_node: Callable[[StageNode], StageMeter],
    ) -> list[StageMeter]:
        nodes = graph.nodes
        meters: list[StageMeter | None] = [None] * len(nodes)
        if not nodes:
            return []
        if self.max_concurrent == 1:
            # Serial dispatch in topological (node-index) order; the time
            # simulation below is identical either way.
            for node in nodes:
                meters[node.index] = run_node(node)
            return meters  # type: ignore[return-value]

        waiting = {node.index: len(node.deps) for node in nodes}
        ready = sorted(i for i, n in waiting.items() if n == 0)
        for i in ready:
            del waiting[i]
        failure: BaseException | None = None
        with ThreadPoolExecutor(
            max_workers=self.max_concurrent, thread_name_prefix="repro-stage"
        ) as pool:
            running = {pool.submit(run_node, nodes[i]): i for i in ready}
            while running:
                done, __ = wait(running, return_when=FIRST_COMPLETED)
                freed: list[int] = []
                for future in done:
                    index = running.pop(future)
                    error = future.exception()
                    if error is not None:
                        if failure is None:
                            failure = error
                        continue
                    meters[index] = future.result()
                    for dependent in nodes[index].dependents:
                        if dependent in waiting:
                            waiting[dependent] -= 1
                            if waiting[dependent] == 0:
                                freed.append(dependent)
                                del waiting[dependent]
                if failure is None:
                    for i in sorted(freed):
                        running[pool.submit(run_node, nodes[i])] = i
                # After a failure: submit nothing more, drain what runs.
        if failure is not None:
            raise failure
        return meters  # type: ignore[return-value]

    # -- simulated schedule --------------------------------------------------

    def _simulate(
        self, graph: StageGraph, meters: list[StageMeter]
    ) -> SchedulerReport:
        timings: list[StageTiming] = []
        finish = [0.0] * len(meters)
        for node in graph.nodes:  # indices are topological
            network, compute, overhead = meters[node.index].breakdown()
            duration = TimeBreakdown(
                network_seconds=network,
                compute_seconds=compute,
                overhead_seconds=overhead,
            )
            start = max((finish[dep] for dep in node.deps), default=0.0)
            finish[node.index] = start + duration.total_seconds
            timings.append(
                StageTiming(
                    node=node.index,
                    stage=node.stage,
                    duration=duration,
                    start_seconds=start,
                    finish_seconds=finish[node.index],
                )
            )

        critical = self._critical_path(graph, timings, finish)
        elapsed = TimeBreakdown()
        for index in critical:
            duration = timings[index].duration
            elapsed.network_seconds += duration.network_seconds
            elapsed.compute_seconds += duration.compute_seconds
            elapsed.overhead_seconds += duration.overhead_seconds
        return SchedulerReport(
            timings=timings, critical_path=tuple(critical), elapsed=elapsed
        )

    @staticmethod
    def _critical_path(
        graph: StageGraph, timings: list[StageTiming], finish: list[float]
    ) -> list[int]:
        if not timings:
            return []
        tail = max(range(len(finish)), key=lambda i: (finish[i], -i))
        path = [tail]
        cursor = tail
        while graph.nodes[cursor].deps:
            start = timings[cursor].start_seconds
            if start == 0.0:
                break
            # The dependency whose finish realised this node's start time.
            cursor = min(
                d for d in graph.nodes[cursor].deps if finish[d] == start
            )
            path.append(cursor)
        return list(reversed(path))

"""The stage scheduler: dispatch ready stages concurrently, charge the
critical path.

Execution model.  Stage-graph nodes are submitted to a thread pool as soon
as every dependency has finished (Kahn-style ready set).  Each node runs
under its own :class:`~repro.runtime.metering.StageMeter`, so its simulated
duration (network + compute + per-stage overhead) is measured privately
even while other nodes run on sibling threads; ledgered *bytes* still flow
to the global ledger and stay identical to a serial run.

Simulated time.  Real stage overlap on the host is incidental -- what the
paper's clock should report is the dependency-bound schedule: a node starts
when its slowest dependency finishes, and the run ends when the last node
does (max over concurrent chains, not the serial sum).  The event times are
computed from the measured per-node durations and the dependency structure
alone, assuming one stage per cluster dispatch slot, so the reported
seconds are deterministic -- independent of host thread count, pool width
or completion order.  The critical path (the chain realising the final
finish time) is committed to the global clock, split by cause.

Failure and retry.  A node whose attempt raises a *retryable* error (duck
typing: ``error.retryable`` is true -- set by the injected transient faults
of :mod:`repro.faults`) is re-run on the same thread after a capped
exponential backoff, up to ``max_attempts`` total tries; the backoff and
the failed attempts' metered cost are charged to the node's simulated
duration.  Genuine (non-retryable) errors fail fast.  The first final
failure stops new submissions; running nodes are drained, resources are
left to the executor's cleanup, and the failure is re-raised wrapped in a
:class:`~repro.errors.StageExecutionError` carrying the node id, stage,
step kinds and attempt count (the original exception is chained as
``__cause__``).

Speculation.  With ``speculation_multiplier`` N > 0, a node whose slowed
duration exceeds N x the median *clean* duration of its same-stage siblings is
re-simulated as if a speculative copy had been launched at that threshold
on a healthy worker: the node's effective duration becomes the minimum of
its slowed duration and ``threshold + clean duration`` (first finisher
wins; the loser's remaining time is not charged).  With no straggler
slowdown, slowed == clean and speculation never changes anything.
"""

from __future__ import annotations

import contextvars
import dataclasses
import statistics
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable

from repro.errors import StageExecutionError
from repro.rdd.clock import TimeBreakdown
from repro.runtime.graph import StageGraph, StageNode
from repro.runtime.metering import StageMeter
from repro.trace.emit import active_tracer

#: Upper bound on concurrently dispatched stages when the config does not
#: pin one.  Stage concurrency is about overlapping *simulated* stages, not
#: saturating host cores (block tasks already use the engine pools), so a
#: modest width is plenty.
DEFAULT_MAX_CONCURRENT_STAGES = 8


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """Simulated schedule entry for one stage-graph node."""

    node: int
    stage: int
    duration: TimeBreakdown  # this node's own metered cost
    start_seconds: float  # when its last dependency finished
    finish_seconds: float

    @property
    def duration_seconds(self) -> float:
        return self.duration.total_seconds


@dataclasses.dataclass
class NodeRun:
    """What physically happened while running one node (all attempts)."""

    meters: list[StageMeter]  # one per attempt, successful attempt last
    attempts: int
    backoff_seconds: float  # total simulated retry backoff


@dataclasses.dataclass
class SchedulerReport:
    """What one scheduled run measured."""

    timings: list[StageTiming]  # indexed by node
    critical_path: tuple[int, ...]  # node indices realising the makespan
    elapsed: TimeBreakdown  # summed along the critical path

    @property
    def makespan_seconds(self) -> float:
        return self.elapsed.total_seconds

    def serial_seconds(self) -> float:
        """What the old serial clock would have charged (sum of all nodes)."""
        return sum(t.duration_seconds for t in self.timings)


class StageScheduler:
    """Runs a :class:`StageGraph`'s nodes with bounded concurrency."""

    def __init__(
        self,
        max_concurrent: int | None = None,
        *,
        max_attempts: int = 1,
        backoff_base_sec: float = 1.0,
        backoff_cap_sec: float = 30.0,
        speculation_multiplier: float = 0.0,
        event_sink: Callable[[dict], None] | None = None,
    ) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if speculation_multiplier < 0:
            raise ValueError(
                f"speculation_multiplier must be >= 0, got {speculation_multiplier}"
            )
        self.max_concurrent = max_concurrent or DEFAULT_MAX_CONCURRENT_STAGES
        self.max_attempts = max_attempts
        self.backoff_base_sec = backoff_base_sec
        self.backoff_cap_sec = backoff_cap_sec
        self.speculation_multiplier = speculation_multiplier
        self._event_sink = event_sink
        self._event_lock = threading.Lock()

    def run(
        self,
        graph: StageGraph,
        run_node: Callable[[StageNode], StageMeter],
    ) -> SchedulerReport:
        """Execute every node (``run_node`` returns its meter); the first
        final failure is wrapped in :class:`StageExecutionError` and raised
        after in-flight nodes drain."""
        runs = self._dispatch(graph, run_node)
        return self._simulate(graph, runs)

    # -- physical dispatch ---------------------------------------------------

    def _dispatch(
        self,
        graph: StageGraph,
        run_node: Callable[[StageNode], StageMeter],
    ) -> list[NodeRun]:
        nodes = graph.nodes
        runs: list[NodeRun | None] = [None] * len(nodes)
        if not nodes:
            return []
        if self.max_concurrent == 1:
            # Serial dispatch in topological (node-index) order; the time
            # simulation below is identical either way.
            for node in nodes:
                try:
                    runs[node.index] = self._attempt(node, run_node)
                except BaseException as error:
                    raise self._wrap(error, graph) from error
            return runs  # type: ignore[return-value]

        waiting = {node.index: len(node.deps) for node in nodes}
        ready = sorted(i for i, n in waiting.items() if n == 0)
        for i in ready:
            del waiting[i]
        failure: BaseException | None = None

        def submit_attempt(pool: ThreadPoolExecutor, node: StageNode):
            # Each node runs under a fresh copy of the dispatching thread's
            # context, so caller-installed contextvars scopes (e.g. the
            # ledger's) reach stage threads; a fresh copy per node because
            # one Context object cannot be entered concurrently.
            context = contextvars.copy_context()
            return pool.submit(context.run, self._attempt, node, run_node)

        with ThreadPoolExecutor(
            max_workers=self.max_concurrent, thread_name_prefix="repro-stage"
        ) as pool:
            running = {submit_attempt(pool, nodes[i]): i for i in ready}
            while running:
                done, __ = wait(running, return_when=FIRST_COMPLETED)
                freed: list[int] = []
                for future in done:
                    index = running.pop(future)
                    error = future.exception()
                    if error is not None:
                        if failure is None:
                            failure = error
                        continue
                    runs[index] = future.result()
                    for dependent in nodes[index].dependents:
                        if dependent in waiting:
                            waiting[dependent] -= 1
                            if waiting[dependent] == 0:
                                freed.append(dependent)
                                del waiting[dependent]
                if failure is None:
                    for i in sorted(freed):
                        running[submit_attempt(pool, nodes[i])] = i
                # After a failure: submit nothing more, drain what runs.
        if failure is not None:
            raise self._wrap(failure, graph) from failure
        return runs  # type: ignore[return-value]

    def _attempt(
        self,
        node: StageNode,
        run_node: Callable[[StageNode], StageMeter],
    ) -> NodeRun:
        """Run one node with retry-on-retryable-fault and capped backoff."""
        failed_meters: list[StageMeter] = []
        backoff_total = 0.0
        attempt = 1
        while True:
            try:
                meter = run_node(node)
            except BaseException as error:
                failed = getattr(error, "stage_meter", None)
                if failed is not None:
                    failed_meters.append(failed)
                retryable = bool(getattr(error, "retryable", False))
                if not retryable or attempt >= self.max_attempts:
                    # Carry context for the wrapping at the dispatch level.
                    error._repro_node = node  # type: ignore[attr-defined]
                    error._repro_attempts = attempt  # type: ignore[attr-defined]
                    raise
                backoff = min(
                    self.backoff_base_sec * (2.0 ** (attempt - 1)),
                    self.backoff_cap_sec,
                )
                backoff_total += backoff
                self._emit(
                    {
                        "event": "retry",
                        "node": node.index,
                        "stage": node.stage,
                        "attempt": attempt,
                        "backoff_sec": backoff,
                        "error": type(error).__name__,
                        "detail": str(error),
                    }
                )
                attempt += 1
            else:
                return NodeRun(
                    meters=failed_meters + [meter],
                    attempts=attempt,
                    backoff_seconds=backoff_total,
                )

    def _wrap(self, error: BaseException, graph: StageGraph) -> StageExecutionError:
        node = getattr(error, "_repro_node", None)
        attempts = getattr(error, "_repro_attempts", 1)
        index = node.index if node is not None else None
        stage = node.stage if node is not None else None
        step_kinds: tuple[str, ...] = ()
        if node is not None and getattr(graph, "plan", None) is not None:
            step_kinds = tuple(
                sorted({type(graph.plan.steps[i]).__name__ for i in node.steps})
            )
        where = f"node {index} (stage {stage})" if node is not None else "a node"
        return StageExecutionError(
            f"stage-graph {where} failed after {attempts} attempt(s): {error}",
            node=index,
            stage=stage,
            step_kinds=step_kinds,
            attempts=attempts,
            cause=error,
        )

    def _emit(self, event: dict) -> None:
        tracer = active_tracer()
        if tracer is not None and event.get("event") in ("retry", "speculation"):
            attrs = {
                k: v for k, v in event.items() if k not in ("event", "node", "stage")
            }
            name = attrs.pop("error", None) or "speculative-copy"
            tracer.event(
                event["event"],
                name,
                stage=(event["node"], event["stage"]),
                **attrs,
            )
        if self._event_sink is None:
            return
        with self._event_lock:
            self._event_sink(event)

    # -- simulated schedule --------------------------------------------------

    def _simulate(self, graph: StageGraph, runs: list[NodeRun]) -> SchedulerReport:
        durations = [self._node_duration(run) for run in runs]
        if self.speculation_multiplier > 0:
            durations = self._speculate(graph, runs, durations)

        timings: list[StageTiming] = []
        finish = [0.0] * len(runs)
        for node in graph.nodes:  # indices are topological
            duration = durations[node.index]
            start = max((finish[dep] for dep in node.deps), default=0.0)
            finish[node.index] = start + duration.total_seconds
            timings.append(
                StageTiming(
                    node=node.index,
                    stage=node.stage,
                    duration=duration,
                    start_seconds=start,
                    finish_seconds=finish[node.index],
                )
            )

        critical = self._critical_path(graph, timings, finish)
        elapsed = TimeBreakdown()
        for index in critical:
            duration = timings[index].duration
            elapsed.network_seconds += duration.network_seconds
            elapsed.compute_seconds += duration.compute_seconds
            elapsed.overhead_seconds += duration.overhead_seconds
        return SchedulerReport(
            timings=timings, critical_path=tuple(critical), elapsed=elapsed
        )

    @staticmethod
    def _node_duration(run: NodeRun) -> TimeBreakdown:
        """Total simulated cost of one node: every attempt's metered time
        (each scaled by its straggler slowdown, if any) plus retry backoff
        booked as overhead."""
        network = compute = overhead = 0.0
        for meter in run.meters:
            n, c, o = meter.breakdown()
            factor = float(getattr(meter, "slowdown_factor", 1.0))
            network += n * factor
            compute += c * factor
            overhead += o * factor
        return TimeBreakdown(
            network_seconds=network,
            compute_seconds=compute,
            overhead_seconds=overhead + run.backoff_seconds,
        )

    def _speculate(
        self,
        graph: StageGraph,
        runs: list[NodeRun],
        durations: list[TimeBreakdown],
    ) -> list[TimeBreakdown]:
        """Re-simulate straggler nodes with a speculative healthy copy.

        A copy is launched once a node runs ``N x`` the median *clean*
        (unslowed) duration of its same-stage siblings; the copy needs the
        node's own clean duration, and the first finisher wins.  The median
        must be over clean durations: two stragglers in one stage would
        otherwise inflate each other's threshold and mask each other.
        Deterministic: pure arithmetic over the measured durations, no
        wall-clock involved.
        """
        by_stage: dict[int, list[int]] = {}
        for node in graph.nodes:
            by_stage.setdefault(node.stage, []).append(node.index)

        clean_durations = [
            sum(sum(meter.breakdown()) for meter in run.meters) + run.backoff_seconds
            for run in runs
        ]
        adjusted = list(durations)
        for node in graph.nodes:
            siblings = [i for i in by_stage[node.stage] if i != node.index]
            if not siblings:
                continue
            slowed = durations[node.index].total_seconds
            clean = clean_durations[node.index]
            if slowed <= clean:
                continue  # not a straggler
            threshold = self.speculation_multiplier * statistics.median(
                clean_durations[i] for i in siblings
            )
            effective = min(slowed, threshold + clean)
            if effective >= slowed:
                continue  # the copy would not have finished first
            scale = effective / slowed if slowed > 0 else 1.0
            old = durations[node.index]
            adjusted[node.index] = TimeBreakdown(
                network_seconds=old.network_seconds * scale,
                compute_seconds=old.compute_seconds * scale,
                overhead_seconds=old.overhead_seconds * scale,
            )
            self._emit(
                {
                    "event": "speculation",
                    "node": node.index,
                    "stage": node.stage,
                    "slowed_sec": slowed,
                    "effective_sec": effective,
                    "threshold_sec": threshold,
                }
            )
        return adjusted

    @staticmethod
    def _critical_path(
        graph: StageGraph, timings: list[StageTiming], finish: list[float]
    ) -> list[int]:
        if not timings:
            return []
        tail = max(range(len(finish)), key=lambda i: (finish[i], -i))
        path = [tail]
        cursor = tail
        while graph.nodes[cursor].deps:
            start = timings[cursor].start_seconds
            if start == 0.0:
                break
            # The dependency whose finish realised this node's start time.
            cursor = min(
                d for d in graph.nodes[cursor].deps if finish[d] == start
            )
            path.append(cursor)
        return list(reversed(path))

"""Segment-wise execution of staged (while-convergence) programs.

A :class:`~repro.frontend.staged.StagedProgram` cannot be planned as one
fixed plan -- its iteration count is data-dependent.  The session instead
*extends the plan dynamically*: the prologue runs once, then the loop body
(planned exactly once and re-used) runs segment after segment, each
segment's carried outputs wired into the next segment's loads, until the
driver-evaluated condition scalar flips.  Every segment is an ordinary
plan execution, so the whole static stack -- lint, verification,
peak-memory prediction, trace reconciliation, chaos recovery -- applies
per segment.

This module holds the result types and the pure wiring logic
(:func:`carried_inputs`, :func:`resolve_outputs`, :func:`merge_recovery`);
the execution driver itself lives in
:meth:`repro.session.DMacSession.run_staged`, next to ``run``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExecutionError
from repro.frontend.staged import StagedProgram
from repro.rdd.clock import TimeBreakdown
from repro.runtime.executor import ExecutionResult


@dataclasses.dataclass(frozen=True)
class SegmentRecord:
    """One executed segment: the prologue or one body iteration."""

    label: str  # "prologue" | "segment-1" | "segment-2" | ...
    result: ExecutionResult
    continued: bool  # the condition's verdict after this segment


@dataclasses.dataclass
class StagedResult:
    """Aggregate result of a staged run, shaped like an ExecutionResult.

    ``matrices``/``scalars`` are keyed by *user* variable names (the
    staged outputs), resolved to whichever segment last defined them.
    Cost metrics are summed over all segments; memory peaks are maxima.
    The per-segment breakdown (including each segment's tracer) stays
    available on ``segments``.
    """

    program: StagedProgram
    segments: list[SegmentRecord]
    matrices: dict[str, np.ndarray]
    scalars: dict[str, float]
    comm_bytes: int
    time: TimeBreakdown
    num_stages: int
    peak_memory_bytes: int
    wall_seconds: float
    predicted_peak_memory_bytes: int | None = None
    recovery: dict | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.time.total_seconds

    @property
    def num_segments(self) -> int:
        """Body iterations executed (the prologue is not counted)."""
        return len(self.segments) - 1

    @property
    def tracing(self) -> object | None:
        """The last segment's TraceCollector (per-segment ones are on
        ``segments[i].result.tracing``)."""
        return self.segments[-1].result.tracing if self.segments else None

    @property
    def cache(self) -> dict | None:
        """The last segment's block-cache statistics."""
        return self.segments[-1].result.cache if self.segments else None

    @property
    def elastic(self) -> dict | None:
        """Membership accounting aggregated over all segments (``None``
        off the elastic backend): worker/slot-seconds and rebalance bytes
        are summed, events concatenated, membership taken at the ends."""
        summaries = [
            record.result.elastic
            for record in self.segments
            if record.result.elastic is not None
        ]
        if not summaries:
            return None
        return {
            "slots": summaries[0]["slots"],
            "seed": summaries[0]["seed"],
            "initial_members": summaries[0]["initial_members"],
            "final_members": summaries[-1]["final_members"],
            "events": [event for s in summaries for event in s["events"]],
            "worker_seconds": sum(s["worker_seconds"] for s in summaries),
            "slot_seconds": sum(s["slot_seconds"] for s in summaries),
            "rebalance_bytes": sum(s["rebalance_bytes"] for s in summaries),
        }

    def describe(self) -> str:
        condition = self.program.condition.describe()
        lines = [
            f"staged run {self.program.name}: {self.num_segments} "
            f"segment(s) until not ({condition})"
        ]
        for record in self.segments:
            verdict = "continue" if record.continued else "stop"
            lines.append(
                f"  {record.label}: {record.result.num_stages} stages, "
                f"{record.result.comm_bytes} bytes -> {verdict}"
            )
        return "\n".join(lines)


def carried_inputs(
    staged: StagedProgram,
    inputs: dict[str, np.ndarray],
    prologue: ExecutionResult,
    previous: ExecutionResult | None,
) -> dict[str, np.ndarray]:
    """Bind the body program's loads for the next segment.

    The first segment reads runtime inputs and prologue outputs; later
    segments read the previous segment's carried outputs (loop-invariant
    inputs keep their first source forever).
    """
    bound: dict[str, np.ndarray] = {}
    for var in staged.carried:
        if previous is not None and var.loop_version is not None:
            bound[var.name] = previous.matrices[var.loop_version]
        elif var.first_kind == "input":
            if var.first_version not in inputs:
                raise ExecutionError(
                    f"no input array bound for load {var.first_version!r}"
                )
            bound[var.name] = np.asarray(inputs[var.first_version])
        else:
            bound[var.name] = prologue.matrices[var.first_version]
    return bound


def resolve_outputs(
    staged: StagedProgram,
    prologue: ExecutionResult,
    last: ExecutionResult | None,
) -> tuple[dict[str, np.ndarray], dict[str, float]]:
    """Resolve the user-facing outputs against the segments that ran."""
    matrices: dict[str, np.ndarray] = {}
    for out in staged.matrix_outputs:
        if last is not None and out.body_version is not None:
            matrices[out.name] = last.matrices[out.body_version]
        elif out.prologue_version is not None:
            matrices[out.name] = prologue.matrices[out.prologue_version]
        else:
            raise ExecutionError(
                f"output {out.name!r} is only defined inside the loop, "
                "and no segment ran (the condition was false immediately)"
            )
    scalars: dict[str, float] = {}
    for out in staged.scalar_outputs:
        if last is not None and out.body_version is not None:
            scalars[out.name] = last.scalars[out.body_version]
        elif out.prologue_version is not None:
            scalars[out.name] = prologue.scalars[out.prologue_version]
        else:
            raise ExecutionError(
                f"scalar output {out.name!r} is only defined inside the "
                "loop, and no segment ran (the condition was false "
                "immediately)"
            )
    # The final condition scalars: how converged the run ended up.
    final = last if last is not None else prologue
    for term in (staged.condition.lhs, staged.condition.rhs):
        if isinstance(term, str):
            scalars[term] = final.scalars[term]
    return matrices, scalars


def merge_recovery(records: list[SegmentRecord]) -> dict | None:
    """Fold per-segment recovery summaries: counters sum, events chain."""
    summaries = [r.result.recovery for r in records if r.result.recovery]
    if not summaries:
        return None
    merged: dict = {}
    for summary in summaries:
        for key, value in summary.items():
            if isinstance(value, list):
                merged.setdefault(key, []).extend(value)
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            else:  # pragma: no cover - no other field kinds today
                merged[key] = value
    return merged


def aggregate(
    staged: StagedProgram, records: list[SegmentRecord]
) -> StagedResult:
    """Fold segment results into one :class:`StagedResult`."""
    prologue = records[0].result
    last = records[-1].result if len(records) > 1 else None
    matrices, scalars = resolve_outputs(staged, prologue, last)
    time = TimeBreakdown(
        network_seconds=sum(r.result.time.network_seconds for r in records),
        compute_seconds=sum(r.result.time.compute_seconds for r in records),
        overhead_seconds=sum(r.result.time.overhead_seconds for r in records),
    )
    predictions = [
        r.result.predicted_peak_memory_bytes
        for r in records
        if r.result.predicted_peak_memory_bytes is not None
    ]
    return StagedResult(
        program=staged,
        segments=records,
        matrices=matrices,
        scalars=scalars,
        comm_bytes=sum(r.result.comm_bytes for r in records),
        time=time,
        num_stages=sum(r.result.num_stages for r in records),
        peak_memory_bytes=max(r.result.peak_memory_bytes for r in records),
        wall_seconds=sum(r.result.wall_seconds for r in records),
        predicted_peak_memory_bytes=max(predictions) if predictions else None,
        recovery=merge_recovery(records),
    )


__all__ = [
    "SegmentRecord",
    "StagedResult",
    "aggregate",
    "carried_inputs",
    "merge_recovery",
    "resolve_outputs",
]

"""Multi-tenant serving layer over the DMac execution engine.

``repro serve`` turns the single-program session API into a long-running
service: tenants share one simulated cluster under weighted fair (stride)
scheduling, every submission passes cost-model + verifier admission
control, structurally identical programs reuse cached plans, and every
byte/flop/simulated-second is accounted to the tenant that caused it.
Reports are byte-identical across same-seed runs.

Entry points: :class:`MatrixService` (+ :class:`ServiceClient`) in
process, ``repro serve`` / ``repro submit`` on the command line, and
:func:`run_batch` for scripted batches.
"""

from repro.serve.accounting import Accountant, TenantAccount
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    Decision,
    predict_flops,
    predict_runtime_seconds,
)
from repro.serve.batch import parse_batch, run_batch, synthetic_batch
from repro.serve.client import RemoteClient, ServiceClient
from repro.serve.daemon import handle_request, serve_forever
from repro.serve.job import JobRecord, JobSpec, TenantSpec
from repro.serve.plancache import CacheEntry, PlanCache
from repro.serve.report import REPORT_SCHEMA_VERSION, build_report, render_report
from repro.serve.scheduler import StrideScheduler
from repro.serve.service import MatrixService, ServiceConfig

__all__ = [
    "Accountant",
    "AdmissionController",
    "AdmissionPolicy",
    "CacheEntry",
    "Decision",
    "JobRecord",
    "JobSpec",
    "MatrixService",
    "PlanCache",
    "REPORT_SCHEMA_VERSION",
    "RemoteClient",
    "ServiceClient",
    "ServiceConfig",
    "StrideScheduler",
    "TenantAccount",
    "TenantSpec",
    "build_report",
    "handle_request",
    "parse_batch",
    "predict_flops",
    "predict_runtime_seconds",
    "render_report",
    "run_batch",
    "serve_forever",
    "synthetic_batch",
]

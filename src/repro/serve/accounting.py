"""Per-tenant resource accounting, aggregated from finished jobs.

Every number here comes from the metered substrate: bytes from the
communication ledger's ``tenant:<name>/job-<id>`` scopes, flops from the
per-step traces the service requests on every run, simulated seconds from
the cluster clock, cache hit rates from the tenant's BlockCache counters.
The accountant only *sums*; it never re-measures.
"""

from __future__ import annotations

import dataclasses

from repro.serve.job import JobRecord


@dataclasses.dataclass
class TenantAccount:
    """Running totals for one tenant."""

    tenant: str
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_rejected: int = 0
    jobs_failed: int = 0
    comm_bytes: int = 0
    flops: int = 0
    simulated_seconds: float = 0.0
    queue_seconds: float = 0.0
    #: High-water of the verifier's predicted peaks over completed jobs --
    #: deterministic, unlike the realised peak (which stays on the
    #: in-memory records; see JobRecord).
    predicted_peak_bytes: int = 0
    #: Realised high-water -- in-memory diagnostic, never serialised.
    peak_memory_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_json_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_rejected": self.jobs_rejected,
            "jobs_failed": self.jobs_failed,
            "comm_bytes": self.comm_bytes,
            "flops": self.flops,
            "simulated_seconds": self.simulated_seconds,
            "queue_seconds": self.queue_seconds,
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }


class Accountant:
    """Folds job outcomes into per-tenant accounts."""

    def __init__(self, tenants: tuple[str, ...]) -> None:
        self._accounts = {name: TenantAccount(name) for name in tenants}

    def account(self, tenant: str) -> TenantAccount:
        return self._accounts[tenant]

    def record_submission(self, record: JobRecord) -> None:
        self._accounts[record.tenant].jobs_submitted += 1

    def record_outcome(self, record: JobRecord) -> None:
        account = self._accounts[record.tenant]
        if record.state == "rejected":
            account.jobs_rejected += 1
            return
        if record.state == "failed":
            account.jobs_failed += 1
            return
        account.jobs_completed += 1
        account.comm_bytes += record.comm_bytes
        account.flops += record.flops
        account.simulated_seconds += record.simulated_seconds
        account.queue_seconds += record.queue_seconds or 0.0
        account.predicted_peak_bytes = max(
            account.predicted_peak_bytes, record.predicted_peak_bytes or 0
        )
        account.peak_memory_bytes = max(
            account.peak_memory_bytes, record.peak_memory_bytes
        )
        cache = record.block_cache or {}
        account.cache_hits += cache.get("hits", 0)
        account.cache_misses += cache.get("misses", 0)

    def to_json_dict(self) -> dict:
        return {
            name: account.to_json_dict()
            for name, account in sorted(self._accounts.items())
        }

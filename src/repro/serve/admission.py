"""Admission control: decide run / queue / reject before any execution.

Decisions are driven entirely by *static* predictions -- the cost model's
communication estimate (``plan.predicted_bytes``), a flops estimate from
the :class:`~repro.core.estimator.SizeEstimator`, and the verifier's sound
per-worker peak-memory bound
(:func:`repro.verify.memory.predict_peak_memory`) -- so a job that would
blow a tenant's memory quota is rejected *before* it runs, with a typed
error, instead of aborting non-deterministically mid-execution.

Check order (first violation wins):

1. tenant memory quota vs predicted peak  -> reject (TenantQuotaExceededError)
2. service per-job byte/flop ceilings     -> reject (JobTooLargeError)
3. tenant / service queue backlog caps    -> reject (QueueFullError)
4. otherwise: "run" if the cluster is idle, else "queue"
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.estimator import SizeEstimator
from repro.errors import (
    AdmissionError,
    JobTooLargeError,
    QueueFullError,
    TenantQuotaExceededError,
)
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    MatMulOp,
    MatrixProgram,
    RowAggOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.serve.job import TenantSpec
from repro.serve.plancache import CacheEntry


def predict_flops(program: MatrixProgram, estimation_mode: str = "worst") -> int:
    """Estimated floating-point work for one program execution.

    Follows the paper's cost-model conventions: a multiplication costs
    ``2 m k n`` scaled by the left operand's estimated sparsity (the
    engines skip zero rows), element-wise and unary operators cost one
    flop per output cell, aggregations one per input cell.  This is a
    planning-grade estimate for admission thresholds, not a promise about
    the meter's measured flops.
    """
    estimator = SizeEstimator(program, estimation_mode)
    total = 0
    for op in program.ops:
        if isinstance(op, MatMulOp):
            m, k = program.dims_of(op.left)
            _, n = program.dims_of(op.right)
            density = min(1.0, estimator.sparsity_of(op.left))
            total += int(2 * m * k * n * density)
        elif isinstance(op, CellwiseOp):
            rows, cols = program.dims_of(op.left)
            total += rows * cols
        elif isinstance(op, (ScalarMatrixOp, UnaryMatrixOp, RowAggOp, AggregateOp)):
            rows, cols = program.dims_of(op.operand)
            total += rows * cols
        # loads / randoms / scalar computes: negligible
    return total


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Service-wide admission ceilings (None disables a check)."""

    max_queued_jobs: Optional[int] = None  # across all tenants
    max_job_bytes: Optional[int] = None  # predicted communication
    max_job_flops: Optional[int] = None  # predicted compute


@dataclasses.dataclass(frozen=True)
class Decision:
    """The admission verdict for one submission."""

    action: str  # "run" | "queue" | "reject"
    reason: Optional[str] = None  # machine token, e.g. "memory-quota"
    detail: Optional[str] = None  # human sentence for reports/errors

    @property
    def admitted(self) -> bool:
        return self.action != "reject"


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` plus per-tenant quotas."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy

    def evaluate(
        self,
        tenant: TenantSpec,
        entry: CacheEntry,
        *,
        service_queue_depth: int,
        tenant_queue_depth: int,
        idle: bool,
    ) -> Decision:
        quota = tenant.memory_quota_bytes
        if quota is not None and entry.predicted_peak_bytes > quota:
            return Decision(
                "reject",
                TenantQuotaExceededError.reason,
                f"predicted peak memory {entry.predicted_peak_bytes} B exceeds "
                f"tenant {tenant.name!r} quota {quota} B",
            )
        ceiling = self.policy.max_job_bytes
        if ceiling is not None and entry.predicted_bytes > ceiling:
            return Decision(
                "reject",
                JobTooLargeError.reason,
                f"predicted communication {entry.predicted_bytes} B exceeds "
                f"the service per-job ceiling {ceiling} B",
            )
        ceiling = self.policy.max_job_flops
        if ceiling is not None and entry.predicted_flops > ceiling:
            return Decision(
                "reject",
                JobTooLargeError.reason,
                f"predicted compute {entry.predicted_flops} flops exceeds "
                f"the service per-job ceiling {ceiling} flops",
            )
        cap = tenant.max_queued_jobs
        if cap is not None and tenant_queue_depth >= cap:
            return Decision(
                "reject",
                QueueFullError.reason,
                f"tenant {tenant.name!r} already has {tenant_queue_depth} "
                f"queued jobs (cap {cap})",
            )
        cap = self.policy.max_queued_jobs
        if cap is not None and service_queue_depth >= cap:
            return Decision(
                "reject",
                QueueFullError.reason,
                f"service queue holds {service_queue_depth} jobs (cap {cap})",
            )
        return Decision("run" if idle else "queue")

    @staticmethod
    def error_for(decision: Decision, tenant: str) -> AdmissionError:
        """The typed exception a rejecting decision maps to."""
        classes = {
            TenantQuotaExceededError.reason: TenantQuotaExceededError,
            JobTooLargeError.reason: JobTooLargeError,
            QueueFullError.reason: QueueFullError,
        }
        cls = classes.get(decision.reason or "", AdmissionError)
        return cls(decision.detail or "job rejected", tenant=tenant)

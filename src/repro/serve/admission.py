"""Admission control: decide run / queue / reject before any execution.

Decisions are driven entirely by *static* predictions -- the cost model's
communication estimate (``plan.predicted_bytes``), a flops estimate from
the :class:`~repro.core.estimator.SizeEstimator`, and the verifier's sound
per-worker peak-memory bound
(:func:`repro.verify.memory.predict_peak_memory`) -- so a job that would
blow a tenant's memory quota is rejected *before* it runs, with a typed
error, instead of aborting non-deterministically mid-execution.

Check order (first violation wins):

1. tenant memory quota vs predicted peak  -> reject (TenantQuotaExceededError)
2. service per-job byte/flop ceilings     -> reject (JobTooLargeError)
3. tenant / service queue backlog caps    -> reject (QueueFullError)
4. predicted-runtime backlog cap          -> reject (BacklogExceededError)
5. otherwise: "run" if the cluster is idle, else "queue"

The queue-depth checks come in two flavours: the *count* caps (3) bound
how many jobs may wait, while ``max_backlog_seconds`` (4) bounds how much
*predicted work* may wait -- :func:`predict_runtime_seconds` turns the
cost model's byte/flop estimates into seconds via the cluster's simulated
clock rates, so ten tiny jobs and one huge job are told apart.  The same
per-job prediction drives the scheduler's optional
shortest-predicted-job-first order (``AdmissionPolicy.spjf``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import ClusterConfig
from repro.core.estimator import SizeEstimator
from repro.errors import (
    AdmissionError,
    BacklogExceededError,
    JobTooLargeError,
    QueueFullError,
    TenantQuotaExceededError,
)
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    MatMulOp,
    MatrixProgram,
    RowAggOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.serve.job import TenantSpec
from repro.serve.plancache import CacheEntry


def predict_flops(program: MatrixProgram, estimation_mode: str = "worst") -> int:
    """Estimated floating-point work for one program execution.

    Follows the paper's cost-model conventions: a multiplication costs
    ``2 m k n`` scaled by the left operand's estimated sparsity (the
    engines skip zero rows), element-wise and unary operators cost one
    flop per output cell, aggregations one per input cell.  This is a
    planning-grade estimate for admission thresholds, not a promise about
    the meter's measured flops.
    """
    estimator = SizeEstimator(program, estimation_mode)
    total = 0
    for op in program.ops:
        if isinstance(op, MatMulOp):
            m, k = program.dims_of(op.left)
            _, n = program.dims_of(op.right)
            density = min(1.0, estimator.sparsity_of(op.left))
            total += int(2 * m * k * n * density)
        elif isinstance(op, CellwiseOp):
            rows, cols = program.dims_of(op.left)
            total += rows * cols
        elif isinstance(op, (ScalarMatrixOp, UnaryMatrixOp, RowAggOp, AggregateOp)):
            rows, cols = program.dims_of(op.operand)
            total += rows * cols
        # loads / randoms / scalar computes: negligible
    return total


def predict_runtime_seconds(
    predicted_bytes: int, predicted_flops: int, cluster: ClusterConfig
) -> float:
    """Planning-grade runtime estimate for one job on a given cluster.

    Communication at the simulated network rate plus dense compute spread
    over every thread of every worker -- the same rates the
    :class:`~repro.config.ClockConfig` bills measured bytes/flops at, so
    the estimate and the eventual charge live on one scale.  Used for the
    admission backlog bound and shortest-predicted-job-first ordering;
    it is *not* a promise about the measured ``simulated_seconds``.
    """
    clock = cluster.clock
    network = predicted_bytes / clock.network_bytes_per_sec
    compute = predicted_flops / (
        clock.dense_flops_per_sec
        * cluster.threads_per_worker
        * cluster.num_workers
    )
    return network + compute


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Service-wide admission ceilings (None disables a check).

    ``max_backlog_seconds`` bounds the queue by *predicted runtime*
    rather than job count: a submission is rejected when the predicted
    runtimes already queued plus its own would exceed the cap.  ``spjf``
    additionally makes each tenant's queue dispatch shortest predicted
    job first (within a priority level), so a long job queues behind
    short ones instead of blocking them.
    """

    max_queued_jobs: Optional[int] = None  # across all tenants
    max_job_bytes: Optional[int] = None  # predicted communication
    max_job_flops: Optional[int] = None  # predicted compute
    max_backlog_seconds: Optional[float] = None  # predicted-runtime backlog
    spjf: bool = False  # shortest-predicted-job-first within a tenant


@dataclasses.dataclass(frozen=True)
class Decision:
    """The admission verdict for one submission."""

    action: str  # "run" | "queue" | "reject"
    reason: Optional[str] = None  # machine token, e.g. "memory-quota"
    detail: Optional[str] = None  # human sentence for reports/errors

    @property
    def admitted(self) -> bool:
        return self.action != "reject"


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` plus per-tenant quotas."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy

    def evaluate(
        self,
        tenant: TenantSpec,
        entry: CacheEntry,
        *,
        service_queue_depth: int,
        tenant_queue_depth: int,
        idle: bool,
        backlog_seconds: float = 0.0,
        predicted_seconds: Optional[float] = None,
    ) -> Decision:
        quota = tenant.memory_quota_bytes
        if quota is not None and entry.predicted_peak_bytes > quota:
            return Decision(
                "reject",
                TenantQuotaExceededError.reason,
                f"predicted peak memory {entry.predicted_peak_bytes} B exceeds "
                f"tenant {tenant.name!r} quota {quota} B",
            )
        ceiling = self.policy.max_job_bytes
        if ceiling is not None and entry.predicted_bytes > ceiling:
            return Decision(
                "reject",
                JobTooLargeError.reason,
                f"predicted communication {entry.predicted_bytes} B exceeds "
                f"the service per-job ceiling {ceiling} B",
            )
        ceiling = self.policy.max_job_flops
        if ceiling is not None and entry.predicted_flops > ceiling:
            return Decision(
                "reject",
                JobTooLargeError.reason,
                f"predicted compute {entry.predicted_flops} flops exceeds "
                f"the service per-job ceiling {ceiling} flops",
            )
        cap = tenant.max_queued_jobs
        if cap is not None and tenant_queue_depth >= cap:
            return Decision(
                "reject",
                QueueFullError.reason,
                f"tenant {tenant.name!r} already has {tenant_queue_depth} "
                f"queued jobs (cap {cap})",
            )
        cap = self.policy.max_queued_jobs
        if cap is not None and service_queue_depth >= cap:
            return Decision(
                "reject",
                QueueFullError.reason,
                f"service queue holds {service_queue_depth} jobs (cap {cap})",
            )
        horizon = self.policy.max_backlog_seconds
        if (
            horizon is not None
            and predicted_seconds is not None
            and backlog_seconds + predicted_seconds > horizon
        ):
            return Decision(
                "reject",
                BacklogExceededError.reason,
                f"queued work predicts {backlog_seconds:.3f} s; adding "
                f"{predicted_seconds:.3f} s would exceed the backlog "
                f"horizon {horizon:.3f} s",
            )
        return Decision("run" if idle else "queue")

    @staticmethod
    def error_for(decision: Decision, tenant: str) -> AdmissionError:
        """The typed exception a rejecting decision maps to."""
        classes = {
            TenantQuotaExceededError.reason: TenantQuotaExceededError,
            JobTooLargeError.reason: JobTooLargeError,
            QueueFullError.reason: QueueFullError,
            BacklogExceededError.reason: BacklogExceededError,
        }
        cls = classes.get(decision.reason or "", AdmissionError)
        return cls(decision.detail or "job rejected", tenant=tenant)

"""Batch scripts: declarative multi-tenant job batches.

A batch is a JSON document (``repro serve --script batch.json``)::

    {
      "seed": 7,
      "cluster": {"num_workers": 4},
      "policy": {"max_queued_jobs": 64},
      "plan_cache_entries": 128,
      "tenants": [
        {"name": "ana", "weight": 2.0, "memory_quota_bytes": 100000000},
        {"name": "bo"}
      ],
      "jobs": [
        {"tenant": "ana", "app": "pagerank", "params": {"scale": 0.002}},
        {"tenant": "bo", "app": "gnmf", "priority": 1}
      ]
    }

:func:`synthetic_batch` generates such documents deterministically from a
seed (the CI smoke job and the throughput benchmark both use it), and
:func:`run_batch` executes one end to end: submit everything, drain the
queue under stride scheduling, return the service and its report.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import ClusterConfig
from repro.errors import ServiceError
from repro.programs.registry import SERVICE_MIXES
from repro.serve.admission import AdmissionPolicy
from repro.serve.job import JobSpec, TenantSpec
from repro.serve.service import MatrixService, ServiceConfig

_CLUSTER_KEYS = frozenset(
    {
        "num_workers",
        "threads_per_worker",
        "block_size",
        "inplace",
        "memory_limit_bytes",
        "max_concurrent_stages",
        "cache_limit_bytes",
        "backend",
        "elastic",
        "elastic_seed",
    }
)


def _build(cls, data: dict, what: str):
    try:
        return cls(**data)
    except TypeError as exc:
        raise ServiceError(f"bad {what} in batch script: {exc}") from None


def parse_batch(data: dict) -> tuple[ServiceConfig, list[JobSpec]]:
    """Validate a batch document into a service config plus job specs."""
    if not isinstance(data, dict):
        raise ServiceError("batch script must be a JSON object")
    unknown = set(data) - {
        "seed",
        "cluster",
        "policy",
        "plan_cache_entries",
        "optimize",
        "tenants",
        "jobs",
    }
    if unknown:
        raise ServiceError(f"unknown batch script keys: {sorted(unknown)}")
    tenants = data.get("tenants")
    if not tenants:
        raise ServiceError("batch script needs a non-empty 'tenants' list")
    jobs = data.get("jobs")
    if not isinstance(jobs, list):
        raise ServiceError("batch script needs a 'jobs' list")
    cluster_data = dict(data.get("cluster") or {})
    bad = set(cluster_data) - _CLUSTER_KEYS
    if bad:
        raise ServiceError(f"unknown cluster keys in batch script: {sorted(bad)}")
    config = ServiceConfig(
        tenants=tuple(
            _build(TenantSpec, dict(t), "tenant") for t in tenants
        ),
        cluster=_build(ClusterConfig, cluster_data, "cluster"),
        policy=_build(AdmissionPolicy, dict(data.get("policy") or {}), "policy"),
        plan_cache_entries=int(data.get("plan_cache_entries", 128)),
        optimize=bool(data.get("optimize", False)),
        seed=int(data.get("seed", 0)),
    )
    specs = [_build(JobSpec, dict(job), "job") for job in jobs]
    return config, specs


def synthetic_batch(
    seed: int,
    *,
    num_tenants: int = 3,
    jobs_per_tenant: int = 4,
    mix: str = "paper-small",
    weights: tuple[float, ...] | None = None,
    plan_cache_entries: int = 128,
) -> dict:
    """A deterministic batch document: same seed, same bytes.

    Tenants are named ``tenant-a`` .. and submit ``jobs_per_tenant`` jobs
    each, apps drawn (seeded) from the registry's ``mix`` rotation with a
    seeded dataset-seed jitter so repeated apps still exercise distinct
    datasets -- except the cache-friendly mix, whose identical params make
    every repeat a plan-cache hit.
    """
    if mix not in SERVICE_MIXES:
        raise ServiceError(
            f"unknown service mix {mix!r} (registered: {sorted(SERVICE_MIXES)})"
        )
    apps = SERVICE_MIXES[mix]
    rng = np.random.default_rng(seed)
    names = [f"tenant-{chr(ord('a') + i)}" for i in range(num_tenants)]
    tenants = []
    for index, name in enumerate(names):
        weight = 1.0
        if weights is not None:
            weight = weights[index % len(weights)]
        tenants.append({"name": name, "weight": weight})
    jobs = []
    for name in names:
        for _ in range(jobs_per_tenant):
            app = apps[int(rng.integers(len(apps)))]
            params: dict = {"seed": int(rng.integers(1 << 16))}
            if mix == "cache-friendly":
                # Identical params: every repeat is a plan-cache hit.
                params = {}
            jobs.append(
                {
                    "tenant": name,
                    "app": app,
                    "params": params,
                    "priority": int(rng.integers(3)),
                }
            )
    return {
        "seed": seed,
        "plan_cache_entries": plan_cache_entries,
        "tenants": tenants,
        "jobs": jobs,
    }


def run_batch(
    config: ServiceConfig, specs: list[JobSpec]
) -> tuple[MatrixService, dict]:
    """Submit every job, drain the queue, return (service, report)."""
    service = MatrixService(config)
    for spec in specs:
        service.submit(spec)
    service.drain()
    return service, service.report()


def scaled_down(spec: JobSpec, scale: float) -> JobSpec:
    """A copy of a job spec with its dataset scale multiplied (helper for
    smoke tests that shrink a batch without changing its structure)."""
    params = dict(spec.params)
    params["scale"] = params.get("scale", 3e-3) * scale
    return dataclasses.replace(spec, params=params)

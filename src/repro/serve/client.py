"""Clients for the service: in-process and over the daemon socket.

:class:`ServiceClient` wraps a :class:`~repro.serve.service.MatrixService`
in the same process -- the embedding path for notebooks and tests, and
the only path that can submit *program objects* (functions decorated with
``@matrix_program``, compiled or not; arrays do not cross a wire).

:class:`RemoteClient` speaks the daemon's newline-JSON protocol
(:mod:`repro.serve.daemon`); it can only submit registry apps by name.
Both raise the typed :class:`~repro.errors.AdmissionError` subclasses on
rejection, so callers branch on exception type rather than parsing text.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    AdmissionError,
    JobTooLargeError,
    QueueFullError,
    ServiceError,
    TenantQuotaExceededError,
)
from repro.serve.job import JobRecord, JobSpec
from repro.serve.service import MatrixService

_ERRORS_BY_REASON = {
    cls.reason: cls
    for cls in (TenantQuotaExceededError, JobTooLargeError, QueueFullError)
}


class ServiceClient:
    """In-process client: submit programs or registry apps, run, report."""

    def __init__(self, service: MatrixService) -> None:
        self.service = service

    def submit(
        self,
        tenant: str,
        app: Optional[str] = None,
        *,
        program: object = None,
        inputs: Optional[dict] = None,
        params: Optional[dict] = None,
        priority: int = 0,
        label: Optional[str] = None,
    ) -> JobRecord:
        """Admit one job; raises the typed error if it is rejected."""
        record = self.service.submit(
            JobSpec(
                tenant=tenant,
                app=app,
                program=program,
                inputs=inputs,
                params=dict(params or {}),
                priority=priority,
                label=label,
            )
        )
        if record.state == "rejected":
            raise self.service.rejection_error(record)
        return record

    def run(self, tenant: str, app: Optional[str] = None, **kwargs) -> JobRecord:
        """Submit one job and drain the queue until it finishes."""
        record = self.submit(tenant, app, **kwargs)
        while record.state in ("queued", "running"):
            if self.service.step() is None:
                raise ServiceError(
                    f"job {record.job_id} is {record.state} but the queue "
                    "drained; service state is inconsistent"
                )
        return record

    def drain(self) -> list[JobRecord]:
        return self.service.drain()

    def report(self) -> dict:
        return self.service.report()


class RemoteClient:
    """Socket client for a running ``repro serve`` daemon."""

    def __init__(self, socket_path: str, timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    def _request(self, payload: dict) -> dict:
        from repro.serve.daemon import request

        response = request(self.socket_path, payload, timeout=self.timeout)
        if not response.get("ok"):
            raise ServiceError(
                f"daemon error ({response.get('reason')}): "
                f"{response.get('error')}"
            )
        return response

    def ping(self) -> dict:
        return self._request({"op": "ping"})

    def submit(
        self,
        tenant: str,
        app: str,
        *,
        params: Optional[dict] = None,
        priority: int = 0,
        label: Optional[str] = None,
    ) -> dict:
        """Submit a registry app; raises the typed error on rejection."""
        payload = {
            "op": "submit",
            "tenant": tenant,
            "app": app,
            "params": dict(params or {}),
            "priority": priority,
        }
        if label is not None:
            payload["label"] = label
        response = self._request(payload)
        if not response.get("accepted"):
            job = response.get("job") or {}
            cls = _ERRORS_BY_REASON.get(response.get("reason"), AdmissionError)
            raise cls(job.get("error") or "job rejected", tenant=tenant)
        return response["job"]

    def drain(self, max_jobs: Optional[int] = None) -> list[dict]:
        payload: dict = {"op": "drain"}
        if max_jobs is not None:
            payload["max_jobs"] = max_jobs
        return self._request(payload)["jobs"]

    def report(self) -> dict:
        return self._request({"op": "report"})["report"]

    def shutdown(self) -> None:
        self._request({"op": "shutdown"})

"""The ``repro serve`` daemon: newline-delimited JSON over a unix socket.

The wire protocol is one JSON object per line in each direction.
Requests carry ``{"op": ..., ...}``; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": ..., "reason": ...}``.  Operations:

========  =======================================================
op        behaviour
========  =======================================================
ping      liveness check; returns queue depth and service clock
submit    admit one job (registry apps only over the wire);
          returns the job record, ``accepted`` flag and reason
drain     run queued jobs (optional ``max_jobs``); returns the
          finished job records
report    the full deterministic service report
shutdown  stop the daemon after responding
========  =======================================================

Requests are handled strictly sequentially on one thread -- the service
is a simulation, so concurrency would only buy nondeterminism.  Typed
admission rejections are *successful* responses (``ok`` true,
``accepted`` false): rejecting a job is the service working as designed,
not a protocol failure.
"""

from __future__ import annotations

import json
import os
import socket

from repro.errors import ReproError, ServiceError
from repro.serve.job import JobSpec
from repro.serve.service import MatrixService

#: Hard cap on one request line; a batch of matrices never needs more.
MAX_REQUEST_BYTES = 1 << 20


def handle_request(service: MatrixService, request: dict) -> tuple[dict, bool]:
    """Apply one request to the service; returns (response, keep_running)."""
    op = request.get("op")
    if op == "ping":
        return (
            {
                "ok": True,
                "queued_jobs": service.scheduler.queue_depth(),
                "simulated_seconds": service.sim_now,
            },
            True,
        )
    if op == "submit":
        spec_data = {
            key: request[key]
            for key in ("tenant", "app", "params", "priority", "label")
            if key in request
        }
        try:
            spec = JobSpec(**spec_data)
        except TypeError as exc:
            raise ServiceError(f"bad submit request: {exc}") from None
        record = service.submit(spec)
        return (
            {
                "ok": True,
                "accepted": record.state != "rejected",
                "reason": record.reject_reason,
                "job": record.to_json_dict(),
            },
            True,
        )
    if op == "drain":
        finished = service.drain(max_jobs=request.get("max_jobs"))
        return (
            {"ok": True, "jobs": [record.to_json_dict() for record in finished]},
            True,
        )
    if op == "report":
        return {"ok": True, "report": service.report()}, True
    if op == "shutdown":
        return {"ok": True, "stopped": True}, False
    raise ServiceError(f"unknown op {op!r}")


def serve_forever(service: MatrixService, socket_path: str) -> None:
    """Accept connections until a ``shutdown`` request arrives.

    One connection may carry many newline-separated requests; the daemon
    answers each in order and keeps the socket open until the client
    closes it (or sends ``shutdown``).
    """
    if os.path.exists(socket_path):
        os.unlink(socket_path)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        server.bind(socket_path)
        server.listen(8)
        running = True
        while running:
            connection, _ = server.accept()
            with connection:
                reader = connection.makefile("rb")
                for line in reader:
                    if len(line) > MAX_REQUEST_BYTES:
                        response: dict = {
                            "ok": False,
                            "error": "request too large",
                            "reason": "protocol",
                        }
                        keep = True
                    else:
                        response, keep = _safe_handle(service, line)
                    connection.sendall(
                        json.dumps(response, sort_keys=True).encode() + b"\n"
                    )
                    if not keep:
                        running = False
                        break
    finally:
        server.close()
        if os.path.exists(socket_path):
            os.unlink(socket_path)


def _safe_handle(service: MatrixService, line: bytes) -> tuple[dict, bool]:
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"bad JSON: {exc}", "reason": "protocol"}, True
    try:
        return handle_request(service, request)
    except ReproError as exc:
        return (
            {
                "ok": False,
                "error": str(exc),
                "reason": getattr(exc, "reason", "error"),
            },
            True,
        )


def request(socket_path: str, payload: dict, timeout: float = 30.0) -> dict:
    """One request/response round trip against a running daemon."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(socket_path)
        client.sendall(json.dumps(payload, sort_keys=True).encode() + b"\n")
        reader = client.makefile("rb")
        line = reader.readline()
        if not line:
            raise ServiceError("daemon closed the connection without replying")
        return json.loads(line)
    finally:
        client.close()

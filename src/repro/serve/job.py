"""Tenants, job specifications, and job lifecycle records.

Everything the service layer reports is carried on these dataclasses.
``JobRecord`` JSON deliberately excludes every wall-clock quantity
(planning/execution wall seconds stay on the in-memory record for the
benchmarks): a service report must be byte-identical across same-seed
runs, and only simulated time is deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ServiceError

#: Job lifecycle states, in order of appearance.
JOB_STATES = ("queued", "running", "done", "rejected", "failed")


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant sharing the service's simulated cluster.

    ``weight`` drives the stride scheduler's share of simulated compute
    seconds; the quotas bound what a single job may predictably need
    (``memory_quota_bytes``, enforced at admission against the verifier's
    peak-memory bound) and what the tenant's BlockCache may keep resident
    (``cache_quota_bytes``, enforced at run time by LRU spill).
    """

    name: str
    weight: float = 1.0
    memory_quota_bytes: Optional[int] = None
    cache_quota_bytes: Optional[int] = None
    max_queued_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ServiceError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        for field in ("memory_quota_bytes", "cache_quota_bytes", "max_queued_jobs"):
            value = getattr(self, field)
            if value is not None and value < 1:
                raise ServiceError(
                    f"tenant {self.name!r}: {field} must be >= 1 or None, "
                    f"got {value}"
                )

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "memory_quota_bytes": self.memory_quota_bytes,
            "cache_quota_bytes": self.cache_quota_bytes,
            "max_queued_jobs": self.max_queued_jobs,
        }


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One submission: a registry workload or a pre-built program.

    Exactly one of ``app`` (a :mod:`repro.programs.registry` name, with
    ``params`` patching :class:`~repro.programs.registry.WorkloadParams`
    fields) or ``program`` (a ``MatrixProgram``/``StagedProgram``, e.g.
    from ``@matrix_program(...).compile()``, with ``inputs`` binding its
    loads) must be given.  ``priority`` orders jobs *within* a tenant
    (higher first, FIFO ties); fairness across tenants is the stride
    scheduler's job, so priority never lets one tenant starve another.
    """

    tenant: str
    app: Optional[str] = None
    program: Optional[object] = None
    inputs: Optional[dict] = None
    params: dict = dataclasses.field(default_factory=dict)
    priority: int = 0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.app is None) == (self.program is None):
            raise ServiceError(
                "a job names exactly one of app=<registry name> or "
                "program=<compiled program>"
            )

    @property
    def display_name(self) -> str:
        if self.label is not None:
            return self.label
        if self.app is not None:
            return self.app
        return getattr(self.program, "name", "program")


@dataclasses.dataclass
class JobRecord:
    """The full lifecycle of one submission, as the report sees it."""

    job_id: int
    tenant: str
    app: str
    priority: int
    state: str = "queued"
    decision: Optional[str] = None  # "run" | "queue" | "reject"
    reject_reason: Optional[str] = None
    error: Optional[str] = None

    # Admission-time predictions (cost model + verifier).
    predicted_bytes: Optional[int] = None
    predicted_flops: Optional[int] = None
    predicted_peak_bytes: Optional[int] = None
    predicted_seconds: Optional[float] = None  # admission runtime estimate

    # Plan-cache outcome for this submission.
    plan_cache: Optional[str] = None  # "hit" | "miss" | "bypass"
    plan_hashes: tuple[str, ...] = ()

    # Service-clock timestamps (simulated seconds since service start).
    submitted_sim_seconds: Optional[float] = None
    started_sim_seconds: Optional[float] = None
    finished_sim_seconds: Optional[float] = None

    # Measured execution cost.
    comm_bytes: int = 0
    flops: int = 0
    simulated_seconds: float = 0.0
    num_stages: int = 0
    segments: Optional[int] = None  # staged runs only
    block_cache: Optional[dict] = None

    # In-memory diagnostics -- NEVER serialised (non-deterministic).
    # Wall seconds obviously; the *realised* peak too, because it depends
    # on how concurrently-dispatched stage threads happened to overlap.
    # Reports publish the verifier's predicted peak, which is sound,
    # deterministic, and what admission actually decided on.
    peak_memory_bytes: int = 0
    plan_wall_seconds: float = 0.0
    run_wall_seconds: float = 0.0

    @property
    def queue_seconds(self) -> Optional[float]:
        """Simulated seconds spent waiting between submit and dispatch."""
        if self.submitted_sim_seconds is None or self.started_sim_seconds is None:
            return None
        return self.started_sim_seconds - self.submitted_sim_seconds

    @property
    def latency_seconds(self) -> Optional[float]:
        """Simulated submit-to-finish latency (queueing + execution)."""
        if self.submitted_sim_seconds is None or self.finished_sim_seconds is None:
            return None
        return self.finished_sim_seconds - self.submitted_sim_seconds

    def to_json_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "app": self.app,
            "priority": self.priority,
            "state": self.state,
            "decision": self.decision,
            "reject_reason": self.reject_reason,
            "error": self.error,
            "predicted_bytes": self.predicted_bytes,
            "predicted_flops": self.predicted_flops,
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "predicted_seconds": self.predicted_seconds,
            "plan_cache": self.plan_cache,
            "plan_hashes": list(self.plan_hashes),
            "submitted_sim_seconds": self.submitted_sim_seconds,
            "started_sim_seconds": self.started_sim_seconds,
            "finished_sim_seconds": self.finished_sim_seconds,
            "queue_seconds": self.queue_seconds,
            "latency_seconds": self.latency_seconds,
            "comm_bytes": self.comm_bytes,
            "flops": self.flops,
            "simulated_seconds": self.simulated_seconds,
            "num_stages": self.num_stages,
            "segments": self.segments,
            "block_cache": self.block_cache,
        }

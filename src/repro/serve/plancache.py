"""LRU plan cache keyed on structural program fingerprints.

Planning the paper's applications costs tens of milliseconds; hashing the
program costs microseconds (see :mod:`repro.planopt.structural`).  The
service therefore keys the cache on
:func:`~repro.planopt.structural.program_fingerprint` -- computed *before*
planning -- so a hit skips the planner entirely, and publishes the planned
plans' :func:`~repro.planopt.structural.plan_structural_hash` digests as
the entry's identity in reports.

Staged programs cache both segment plans (prologue + body) under one
entry.  Entries are immutable once inserted; plans are shared across
submissions, which is safe because execution never mutates a plan.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from typing import Optional

from repro.core.plan import Plan
from repro.frontend.staged import StagedProgram


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One cached planning outcome (all segment plans plus predictions)."""

    fingerprint: str
    plans: tuple[Plan, ...]  # (plan,) or (prologue, body)
    structural_hashes: tuple[str, ...]
    predicted_bytes: int
    predicted_flops: int
    predicted_peak_bytes: int
    #: Wall seconds the original planning took -- in-memory diagnostic for
    #: the throughput benchmark, never serialised into reports.
    plan_wall_seconds: float

    @property
    def staged(self) -> bool:
        return len(self.plans) == 2


class PlanCache:
    """Bounded LRU mapping program fingerprints to :class:`CacheEntry`.

    ``max_entries <= 0`` disables caching: every lookup is a *bypass*
    (counted separately from misses so reports distinguish "cache off"
    from "cold").
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self._entries: "collections.OrderedDict[str, CacheEntry]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, fingerprint: str) -> Optional[CacheEntry]:
        """A hit refreshes recency; a miss (or bypass) returns None."""
        if not self.enabled:
            self.bypasses += 1
            return None
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def insert(self, entry: CacheEntry) -> None:
        if not self.enabled:
            return
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
        }


def plan_for_cache(session, program) -> CacheEntry:
    """Plan ``program`` on ``session`` and package the result for caching.

    Returns an entry carrying every admission-relevant prediction so a
    later hit admits without re-running the planner or the verifier's
    peak-memory analysis.  (The fingerprint is filled by the caller, which
    computed it before deciding to plan.)
    """
    from repro.verify.memory import predict_peak_memory

    config = session.config
    started = time.perf_counter()
    if isinstance(program, StagedProgram):
        plans = (session.plan(program.prologue), session.plan(program.body))
    else:
        plans = (session.plan(program),)
    predictions = [
        predict_peak_memory(
            plan,
            num_workers=config.num_workers,
            threads_per_worker=config.threads_per_worker,
            block_size=config.block_size,
            inplace=config.inplace,
            max_concurrent_stages=config.max_concurrent_stages,
            estimation_mode=session.estimation_mode,
        )
        for plan in plans
    ]
    elapsed = time.perf_counter() - started
    from repro.serve.admission import predict_flops

    return CacheEntry(
        fingerprint="",
        plans=plans,
        structural_hashes=tuple(plan.structural_hash() for plan in plans),
        predicted_bytes=sum(plan.predicted_bytes for plan in plans),
        predicted_flops=sum(
            predict_flops(plan.program, session.estimation_mode) for plan in plans
        ),
        predicted_peak_bytes=max(p.peak_bytes for p in predictions),
        plan_wall_seconds=elapsed,
    )

"""Deterministic service reports.

A report is a plain dict rendered with ``json.dumps(sort_keys=True)``.
Byte-identical across same-seed runs is a hard requirement, so nothing
wall-clock, environment- or id()-derived may appear here; the service
keeps wall-clock diagnostics on the in-memory records only.
"""

from __future__ import annotations

import json

#: Bump when report structure changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def build_report(service) -> dict:
    """Assemble the full report dict for a :class:`MatrixService`."""
    config = service.config
    scheduler = service.scheduler
    jobs = [record.to_json_dict() for record in service.records]
    states: dict[str, int] = {}
    for record in service.records:
        states[record.state] = states.get(record.state, 0) + 1
    per_job_ledgers = {
        name: _fold_job_scopes(session.context.ledger.bytes_by_scope())
        for name, session in sorted(service.sessions.items())
    }
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "seed": config.seed,
        "cluster": {
            "num_workers": config.cluster.num_workers,
            "threads_per_worker": config.cluster.threads_per_worker,
            "block_size": config.cluster.block_size,
            "inplace": config.cluster.inplace,
        },
        "policy": {
            "max_queued_jobs": config.policy.max_queued_jobs,
            "max_job_bytes": config.policy.max_job_bytes,
            "max_job_flops": config.policy.max_job_flops,
        },
        "tenants": [tenant.to_json_dict() for tenant in config.tenants],
        "jobs": jobs,
        "job_states": states,
        "accounts": service.accountant.to_json_dict(),
        "fairness": {
            "charged_seconds": dict(sorted(scheduler.charged_seconds.items())),
            "shares": dict(sorted(scheduler.shares().items())),
            "entitled_shares": dict(sorted(scheduler.entitled_shares().items())),
        },
        "ledger_scopes": per_job_ledgers,
        "plan_cache": service.plan_cache.stats(),
        "simulated_seconds": service.sim_now,
        "queued_jobs": scheduler.queue_depth(),
    }


def _fold_job_scopes(by_scope: dict) -> dict:
    """Collapse ``tenant:<t>/job-<id>/stage-.../...`` ledger scopes to the
    per-job prefix; anything unscoped stays under its own label."""
    folded: dict[str, int] = {}
    for scope, nbytes in by_scope.items():
        parts = scope.split("/")
        key = "/".join(parts[:2]) if parts[0].startswith("tenant:") else scope
        folded[key] = folded.get(key, 0) + nbytes
    return dict(sorted(folded.items()))


def render_report(report: dict) -> str:
    """Canonical JSON text: sorted keys, two-space indent, newline-terminated."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"

"""Stride scheduling over per-tenant job queues.

Classic stride scheduling (Waldspurger & Weihl, OSDI '95) adapted to the
service's simulated clock: each tenant carries a *pass* value; the
scheduler always dispatches from the backlogged tenant with the smallest
pass (ties broken by tenant name, so dispatch order is deterministic), and
after the job runs, charges the tenant ``simulated_seconds / weight``.
Over a saturated horizon each tenant's share of simulated compute seconds
converges to ``weight / total_weight`` regardless of how bursty its
submissions are or how large its individual jobs run.

Within one tenant's queue, higher ``priority`` dispatches first and equal
priorities run FIFO -- priority is a *tenant-local* knob and cannot starve
other tenants, because cross-tenant ordering is decided purely by pass
values.  With ``spjf=True`` (set from
:attr:`~repro.serve.admission.AdmissionPolicy.spjf`) equal priorities
instead order by the admission controller's predicted runtime, shortest
first, so one long job queues behind the short ones it would otherwise
delay; ties still break FIFO.

A tenant that goes idle and returns would, with a stale small pass value,
be owed a huge catch-up burst; re-anchoring its pass at the current
minimum over backlogged tenants (the usual stride fix) keeps shares fair
*going forward* without retroactive credit.
"""

from __future__ import annotations

import collections
import itertools
from typing import Optional

from repro.errors import ServiceError
from repro.serve.job import JobRecord


class StrideScheduler:
    """Deterministic weighted fair queueing across tenants."""

    def __init__(self, weights: dict[str, float], spjf: bool = False) -> None:
        if not weights:
            raise ServiceError("stride scheduler needs at least one tenant")
        self._weights = dict(weights)
        self._spjf = spjf
        self._pass: dict[str, float] = {name: 0.0 for name in weights}
        self._queues: dict[str, collections.deque] = {
            name: collections.deque() for name in weights
        }
        #: Monotone submission counter: the FIFO tie-break within a tenant.
        self._arrivals = itertools.count()
        #: Simulated seconds actually charged to each tenant (for reports
        #: and the fairness acceptance check).
        self.charged_seconds: dict[str, float] = {name: 0.0 for name in weights}

    def enqueue(self, record: JobRecord) -> None:
        queue = self._queues.get(record.tenant)
        if queue is None:
            raise ServiceError(f"unknown tenant {record.tenant!r}")
        if not queue:
            # Re-anchor a returning tenant at the backlogged floor so idle
            # time is not banked as catch-up credit.
            backlogged = [
                self._pass[name]
                for name, other in self._queues.items()
                if other and name != record.tenant
            ]
            if backlogged:
                self._pass[record.tenant] = max(
                    self._pass[record.tenant], min(backlogged)
                )
        # Sorted insert by (-priority, cost, arrival): a deque stays cheap
        # at the service's queue depths and keeps pops O(1).  The cost key
        # is 0 unless SPJF is on, in which case it is the admission
        # controller's predicted runtime (shortest first).
        cost = 0.0
        if self._spjf and record.predicted_seconds is not None:
            cost = record.predicted_seconds
        item = (-record.priority, cost, next(self._arrivals), record)
        position = len(queue)
        for index, existing in enumerate(queue):
            if item[:3] < existing[:3]:
                position = index
                break
        queue.insert(position, item)

    def queue_depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            queue = self._queues.get(tenant)
            if queue is None:
                raise ServiceError(f"unknown tenant {tenant!r}")
            return len(queue)
        return sum(len(queue) for queue in self._queues.values())

    @property
    def idle(self) -> bool:
        return self.queue_depth() == 0

    def next_job(self) -> Optional[JobRecord]:
        """Pop the next job to dispatch, or None when every queue is empty."""
        backlogged = [name for name, queue in self._queues.items() if queue]
        if not backlogged:
            return None
        chosen = min(backlogged, key=lambda name: (self._pass[name], name))
        return self._queues[chosen].popleft()[-1]

    def charge(self, tenant: str, simulated_seconds: float) -> None:
        """Advance a tenant's pass by the job's weighted duration."""
        if tenant not in self._pass:
            raise ServiceError(f"unknown tenant {tenant!r}")
        self._pass[tenant] += simulated_seconds / self._weights[tenant]
        self.charged_seconds[tenant] += simulated_seconds

    def shares(self) -> dict[str, float]:
        """Each tenant's observed fraction of total charged seconds."""
        total = sum(self.charged_seconds.values())
        if total == 0:
            return {name: 0.0 for name in self.charged_seconds}
        return {
            name: seconds / total
            for name, seconds in self.charged_seconds.items()
        }

    def entitled_shares(self) -> dict[str, float]:
        """The weight-proportional shares fairness is measured against."""
        total = sum(self._weights.values())
        return {name: weight / total for name, weight in self._weights.items()}

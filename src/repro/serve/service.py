"""The multi-tenant matrix-computation service.

One :class:`MatrixService` owns a *shared simulated cluster template*:
every tenant gets its own :class:`~repro.session.DMacSession` (own
communication ledger, simulated clock, BlockCache with the tenant's cache
quota) built from the same :class:`~repro.config.ClusterConfig`, so runs
are isolated exactly like the benchmarks' per-system sessions, while the
service-level clock totals simulated seconds across tenants in dispatch
order.

Life of a job::

    submit --> fingerprint --> plan cache (hit | miss: plan + predict)
           --> admission (run | queue | reject, typed errors)
           --> stride-scheduler queue
    step/drain --> dispatch fairest tenant's job --> execute on the
           tenant's session under ledger scope "tenant:<t>/job-<id>"
           --> account bytes/flops/seconds/cache to the tenant

Everything is deterministic under a fixed seed: dispatch order is decided
by (pass value, tenant name), the service clock is simulated, and reports
never contain wall-clock readings.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from repro.config import ClusterConfig
from repro.errors import ServiceError
from repro.frontend.staged import StagedProgram
from repro.lang.program import MatrixProgram
from repro.programs.registry import WorkloadParams, build_workload
from repro.serve.accounting import Accountant
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    Decision,
    predict_runtime_seconds,
)
from repro.serve.job import JobRecord, JobSpec, TenantSpec
from repro.serve.plancache import CacheEntry, PlanCache, plan_for_cache
from repro.serve.scheduler import StrideScheduler
from repro.session import DMacSession


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Static description of one service instance."""

    tenants: tuple[TenantSpec, ...]
    cluster: ClusterConfig = dataclasses.field(default_factory=ClusterConfig)
    policy: AdmissionPolicy = dataclasses.field(default_factory=AdmissionPolicy)
    plan_cache_entries: int = 128
    optimize: bool = False
    estimation_mode: str = "worst"
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServiceError("a service needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate tenant names: {sorted(names)}")


@dataclasses.dataclass
class _PendingJob:
    """Submit-time context a queued job needs at dispatch."""

    record: JobRecord
    program: object  # MatrixProgram | StagedProgram
    inputs: dict
    entry: CacheEntry


class MatrixService:
    """Accepts, schedules and accounts jobs across tenants."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.tenants = {tenant.name: tenant for tenant in config.tenants}
        self.sessions: dict[str, DMacSession] = {
            tenant.name: DMacSession(
                self._tenant_cluster(tenant),
                estimation_mode=config.estimation_mode,
                optimize=config.optimize,
            )
            for tenant in config.tenants
        }
        self.plan_cache = PlanCache(config.plan_cache_entries)
        self.admission = AdmissionController(config.policy)
        self.scheduler = StrideScheduler(
            {tenant.name: tenant.weight for tenant in config.tenants},
            spjf=config.policy.spjf,
        )
        self.accountant = Accountant(tuple(sorted(self.tenants)))
        self.records: list[JobRecord] = []
        #: Service-level simulated clock: sum of dispatched job durations.
        self.sim_now = 0.0
        self._pending: dict[int, _PendingJob] = {}
        self._next_id = 1

    def _tenant_cluster(self, tenant: TenantSpec) -> ClusterConfig:
        if tenant.cache_quota_bytes is None:
            return self.config.cluster
        return dataclasses.replace(
            self.config.cluster, cache_limit_bytes=tenant.cache_quota_bytes
        )

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job: plan (or reuse the cached plan), predict, decide.

        Never raises for a *rejection* -- the returned record carries
        ``state="rejected"`` plus the machine reason; callers who want the
        typed exception can raise :meth:`rejection_error`.  Malformed
        submissions (unknown tenant/app, bad params) do raise.
        """
        tenant = self.tenants.get(spec.tenant)
        if tenant is None:
            raise ServiceError(
                f"unknown tenant {spec.tenant!r} "
                f"(registered: {sorted(self.tenants)})"
            )
        program, inputs = self._resolve(spec)
        record = JobRecord(
            job_id=self._next_id,
            tenant=spec.tenant,
            app=spec.display_name,
            priority=spec.priority,
        )
        self._next_id += 1
        self.records.append(record)
        self.accountant.record_submission(record)

        session = self.sessions[spec.tenant]
        entry = self._plan_entry(session, program, record)
        record.predicted_bytes = entry.predicted_bytes
        record.predicted_flops = entry.predicted_flops
        record.predicted_peak_bytes = entry.predicted_peak_bytes
        record.predicted_seconds = predict_runtime_seconds(
            entry.predicted_bytes, entry.predicted_flops, self.config.cluster
        )
        record.plan_hashes = entry.structural_hashes

        decision = self.admission.evaluate(
            tenant,
            entry,
            service_queue_depth=self.scheduler.queue_depth(),
            tenant_queue_depth=self.scheduler.queue_depth(spec.tenant),
            idle=self.scheduler.idle,
            backlog_seconds=self.backlog_seconds(),
            predicted_seconds=record.predicted_seconds,
        )
        record.decision = decision.action
        if not decision.admitted:
            record.state = "rejected"
            record.reject_reason = decision.reason
            record.error = decision.detail
            self.accountant.record_outcome(record)
            return record
        record.submitted_sim_seconds = self.sim_now
        self._pending[record.job_id] = _PendingJob(record, program, inputs, entry)
        self.scheduler.enqueue(record)
        return record

    def backlog_seconds(self) -> float:
        """Predicted runtime of everything currently queued (the quantity
        :attr:`AdmissionPolicy.max_backlog_seconds` bounds)."""
        return sum(
            pending.record.predicted_seconds or 0.0
            for pending in self._pending.values()
        )

    def rejection_error(self, record: JobRecord):
        """The typed :class:`~repro.errors.AdmissionError` for a rejected
        record (raise it, or branch on its ``reason``)."""
        if record.state != "rejected":
            raise ServiceError(f"job {record.job_id} was not rejected")
        return AdmissionController.error_for(
            Decision("reject", record.reject_reason, record.error), record.tenant
        )

    def _resolve(self, spec: JobSpec) -> tuple[object, dict]:
        """Turn a spec into (compiled program, input arrays)."""
        if spec.app is not None:
            try:
                params = WorkloadParams(**spec.params)
            except TypeError as exc:
                raise ServiceError(
                    f"bad workload params for {spec.app!r}: {exc}"
                ) from None
            workload = build_workload(spec.app, params)
            return workload.program, dict(workload.inputs)
        program = spec.program
        if not isinstance(program, (MatrixProgram, StagedProgram)):
            compile_fn = getattr(program, "compile", None)
            if compile_fn is None:
                raise ServiceError(
                    f"cannot serve {type(program).__name__!r}: submit a "
                    "MatrixProgram, a StagedProgram, or a frontend program "
                    "with .compile()"
                )
            program = compile_fn(**spec.params)
        return program, dict(spec.inputs or {})

    def _plan_entry(
        self, session: DMacSession, program, record: JobRecord
    ) -> CacheEntry:
        from repro.planopt.structural import program_fingerprint

        started = time.perf_counter()
        config = self.config.cluster
        fingerprint = program_fingerprint(
            program,
            num_workers=config.num_workers,
            threads_per_worker=config.threads_per_worker,
            block_size=config.block_size,
            inplace=config.inplace,
            max_concurrent_stages=config.max_concurrent_stages,
            optimize=self.config.optimize,
            estimation_mode=self.config.estimation_mode,
        )
        entry = self.plan_cache.lookup(fingerprint)
        if entry is not None:
            record.plan_cache = "hit"
        else:
            record.plan_cache = "miss" if self.plan_cache.enabled else "bypass"
            entry = dataclasses.replace(
                plan_for_cache(session, program), fingerprint=fingerprint
            )
            self.plan_cache.insert(entry)
        # Full plan-path cost of THIS submission: fingerprint + lookup on a
        # hit, fingerprint + planning + prediction on a miss.  In-memory
        # diagnostic for the throughput benchmark's 10x claim.
        record.plan_wall_seconds = time.perf_counter() - started
        return entry

    # -- dispatch ------------------------------------------------------------

    def step(self) -> Optional[JobRecord]:
        """Dispatch and execute the fairest queued job; None when idle."""
        record = self.scheduler.next_job()
        if record is None:
            return None
        pending = self._pending.pop(record.job_id)
        self._execute(pending)
        self.accountant.record_outcome(record)
        return record

    def drain(
        self,
        max_jobs: Optional[int] = None,
        horizon_seconds: Optional[float] = None,
    ) -> list[JobRecord]:
        """Run queued jobs until empty (or a job/limit horizon is hit).

        ``horizon_seconds`` stops *dispatching* once the service clock
        passes it -- the truncated-horizon mode the fairness tests measure
        shares on; jobs still queued stay queued.
        """
        finished: list[JobRecord] = []
        while max_jobs is None or len(finished) < max_jobs:
            if horizon_seconds is not None and self.sim_now >= horizon_seconds:
                break
            record = self.step()
            if record is None:
                break
            finished.append(record)
        return finished

    def _execute(self, pending: _PendingJob) -> None:
        record = pending.record
        session = self.sessions[record.tenant]
        record.state = "running"
        record.started_sim_seconds = self.sim_now
        scope = f"tenant:{record.tenant}/job-{record.job_id}"
        started = time.perf_counter()
        try:
            with session.context.ledger.scope(scope):
                if isinstance(pending.program, StagedProgram):
                    result = session.run_staged(
                        pending.program,
                        pending.inputs,
                        trace=True,
                        prologue_plan=pending.entry.plans[0],
                        body_plan=pending.entry.plans[1],
                    )
                    record.segments = result.num_segments
                else:
                    result = session.run(
                        pending.program,
                        pending.inputs,
                        plan=pending.entry.plans[0],
                        trace=True,
                    )
        except Exception as exc:  # noqa: BLE001 - one job must not kill the service
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
            record.finished_sim_seconds = self.sim_now
            record.run_wall_seconds = time.perf_counter() - started
            return
        record.run_wall_seconds = time.perf_counter() - started
        record.state = "done"
        record.comm_bytes = result.comm_bytes
        record.flops = _traced_flops(result)
        record.simulated_seconds = result.simulated_seconds
        record.num_stages = result.num_stages
        record.peak_memory_bytes = result.peak_memory_bytes
        record.block_cache = result.cache
        self.sim_now += result.simulated_seconds
        record.finished_sim_seconds = self.sim_now
        self.scheduler.charge(record.tenant, result.simulated_seconds)

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict:
        """The deterministic service report (see :mod:`repro.serve.report`)."""
        from repro.serve.report import build_report

        return build_report(self)


def _traced_flops(result) -> int:
    """Sum step-trace flops over a run (all segments for staged runs)."""
    if hasattr(result, "segments"):
        return sum(
            _traced_flops(segment.result) for segment in result.segments
        )
    return sum(record.flops for record in result.trace or ())

"""The user-facing entry point: build a program, run it under DMac.

Typical use::

    from repro import ClusterConfig, DMacSession, ProgramBuilder

    pb = ProgramBuilder()
    V = pb.load("V", (1000, 800), sparsity=0.01)
    W = pb.random("W", (1000, 20))
    H = pb.random("H", (20, 800))
    for _ in range(5):
        H = pb.assign("H", H * (W.T @ V) / (W.T @ W @ H))
        W = pb.assign("W", W * (V @ H.T) / (W @ H @ H.T))
    pb.output(W); pb.output(H)

    session = DMacSession(ClusterConfig(num_workers=4))
    result = session.run(pb.build(), inputs={"V": v_array})
    print(result.comm_bytes, result.simulated_seconds)
"""

from __future__ import annotations

import dataclasses
import sys

import numpy as np

from repro.baselines.systemml import SystemMLSExecutor
from repro.config import ClusterConfig
from repro.core.executor import ExecutionResult, PlanExecutor
from repro.core.plan import Plan
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError, LintError, PlanError, VerificationError
from repro.frontend.staged import StagedProgram
from repro.lang.program import MatrixProgram
from repro.rdd.context import ClusterContext

#: Session lint modes: "off" skips analysis, "warn" prints findings to
#: stderr, "error" additionally refuses to execute plans with error-severity
#: findings (raising :class:`repro.errors.LintError`).
LINT_MODES = ("off", "warn", "error")

#: Session verify modes: "off" skips static verification, "warn" prints the
#: hazard report to stderr, "error" additionally refuses to execute plans
#: with hazards (raising :class:`repro.errors.VerificationError`).  This is
#: independent of translation validation, which the optimizer always runs.
VERIFY_MODES = ("off", "warn", "error")


class DMacSession:
    """Owns a simulated cluster and plans/executes matrix programs on it.

    Metrics (communication ledger, simulated clock, per-worker memory
    peaks) accumulate across runs on the same session; every
    :class:`ExecutionResult` reports its own deltas.  Use a fresh session
    per benchmarked system for clean peaks.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        pull_up_broadcast: bool = True,
        re_assignment: bool = True,
        estimation_mode: str = "worst",
        lint: str = "off",
        verify: str = "off",
        optimize: bool = False,
        trace: bool = False,
    ) -> None:
        if lint not in LINT_MODES:
            raise PlanError(
                f"unknown lint mode {lint!r} (choose from {LINT_MODES})"
            )
        if verify not in VERIFY_MODES:
            raise PlanError(
                f"unknown verify mode {verify!r} (choose from {VERIFY_MODES})"
            )
        self.config = config or ClusterConfig()
        if self.config.backend == "elastic":
            from repro.elastic import ElasticClusterContext, ElasticPool

            pool = ElasticPool(
                self.config.elastic or "",
                initial=self.config.num_workers,
                seed=self.config.elastic_seed,
            )
            # The static slot topology is the pool's peak membership, so
            # planner, verifier and lint all size against the slot count.
            self.config = dataclasses.replace(
                self.config, num_workers=pool.slots
            )
            self.context: ClusterContext = ElasticClusterContext(
                self.config, pool
            )
        else:
            self.context = ClusterContext(self.config)
        self.pull_up_broadcast = pull_up_broadcast
        self.re_assignment = re_assignment
        self.estimation_mode = estimation_mode
        self.lint = lint
        self.verify = verify
        self.optimize = optimize
        #: With ``trace=True`` every run records a full structured trace
        #: (``result.tracing`` is its :class:`~repro.trace.TraceCollector`).
        self.trace = trace

    def plan(self, program: MatrixProgram) -> Plan:
        """Generate and stage-schedule the DMac plan for a program.

        With ``optimize=True`` the plan additionally goes through the
        :mod:`repro.planopt` pass pipeline (CSE, repartition coalescing,
        dead-step elimination, loop-invariant hoisting) before scheduling;
        applied rewrites are recorded in ``plan.rewrites``.
        """
        planner = DMacPlanner(
            program,
            self.config.num_workers,
            pull_up_broadcast=self.pull_up_broadcast,
            re_assignment=self.re_assignment,
            estimation_mode=self.estimation_mode,
        )
        plan = schedule_stages(planner.plan())
        if self.optimize:
            from repro.planopt import optimize_plan

            plan = optimize_plan(
                plan,
                num_workers=self.config.num_workers,
                estimation_mode=self.estimation_mode,
            )
        return plan

    def stage_graph(self, program: MatrixProgram, plan: Plan | None = None):
        """The :class:`~repro.runtime.graph.StageGraph` the runtime would
        schedule for a program (plans it first unless one is supplied)."""
        from repro.runtime.graph import StageGraph

        return StageGraph.from_plan(plan or self.plan(program))

    def run(
        self,
        program: MatrixProgram | StagedProgram,
        inputs: dict[str, np.ndarray] | None = None,
        plan: Plan | None = None,
        trace: bool = False,
        chaos=None,
        tracer=None,
    ) -> ExecutionResult:
        """Plan (unless a plan is supplied) and execute under DMac.

        With ``lint="warn"`` or ``lint="error"``, the plan is statically
        analysed first; error mode refuses to execute a plan carrying
        error-severity findings.  ``verify="warn"``/``"error"`` likewise
        runs the :mod:`repro.verify` suite (hazard detection, certificate
        audit, peak-memory prediction) before execution; error mode
        refuses plans with ordering hazards.

        ``chaos`` installs a :class:`~repro.faults.ChaosEngine` for the
        run: its faults fire at their seeded points, the runtime recovers
        (retries, lineage recomputation, checkpoints), and the result's
        ``recovery`` field reports what that cost.

        ``tracer`` installs a :class:`~repro.trace.TraceCollector` for the
        run; a session constructed with ``trace=True`` creates one per run
        automatically.  Either way the collector comes back on
        ``result.tracing``.

        A :class:`~repro.frontend.staged.StagedProgram` (a frontend
        ``while``-convergence program) is dispatched to
        :meth:`run_staged`; its result quacks like an
        :class:`ExecutionResult` for the common fields.
        """
        if isinstance(program, StagedProgram):
            if plan is not None:
                raise PlanError(
                    "staged programs plan their own segments; "
                    "run() cannot take a pre-built plan for one"
                )
            if tracer is not None:
                raise PlanError(
                    "staged programs collect one tracer per segment; "
                    "construct the session with trace=True instead of "
                    "passing a tracer"
                )
            return self.run_staged(  # type: ignore[return-value]
                program, inputs, trace=trace, chaos=chaos
            )
        plan = plan or self.plan(program)
        if self.lint != "off":
            self._lint(plan)
        if self.verify != "off":
            self._verify(plan)
        if tracer is None and self.trace:
            from repro.trace import TraceCollector

            tracer = TraceCollector()
        executor = PlanExecutor(self.context, self.config.block_size)
        return executor.execute(plan, inputs, trace=trace, chaos=chaos, tracer=tracer)

    def run_staged(
        self,
        staged: StagedProgram,
        inputs: dict[str, np.ndarray] | None = None,
        trace: bool = False,
        chaos=None,
        prologue_plan: Plan | None = None,
        body_plan: Plan | None = None,
    ):
        """Execute a while-convergence program by dynamic plan extension.

        The prologue runs first; then the loop body -- planned exactly
        once, the plan re-used -- runs segment after segment, each
        segment's carried outputs bound to the next segment's loads, until
        the driver evaluates the condition scalars (``_while_lhs`` /
        ``_while_rhs``) to false or ``staged.max_segments`` is hit.  Every
        segment goes through the session's full static stack: lint and
        verify modes fire per segment, ``trace=True`` sessions collect a
        fresh reconciled :class:`~repro.trace.TraceCollector` per segment,
        and one ``chaos`` engine spans the whole run (its faults land in
        whichever segment reaches the seeded points).

        ``prologue_plan``/``body_plan`` inject pre-built segment plans
        (e.g. from the :mod:`repro.serve` plan cache) so repeated staged
        submissions skip planning; omitted segments are planned here.

        Returns a :class:`~repro.runtime.segments.StagedResult`.
        """
        from repro.runtime.segments import SegmentRecord, aggregate, carried_inputs

        inputs = dict(inputs or {})
        prologue_plan = prologue_plan or self.plan(staged.prologue)
        body_plan = body_plan or self.plan(staged.body)
        prologue_result = self.run(
            staged.prologue, inputs, plan=prologue_plan, trace=trace, chaos=chaos
        )
        keep_going = staged.condition.evaluate(prologue_result.scalars)
        records = [SegmentRecord("prologue", prologue_result, keep_going)]
        previous: ExecutionResult | None = None
        while keep_going:
            if len(records) - 1 >= staged.max_segments:
                raise ExecutionError(
                    f"staged program {staged.name!r} did not converge within "
                    f"{staged.max_segments} segments "
                    f"(while {staged.condition.describe()})"
                )
            bound = carried_inputs(staged, inputs, prologue_result, previous)
            segment_result = self.run(
                staged.body, bound, plan=body_plan, trace=trace, chaos=chaos
            )
            keep_going = staged.condition.evaluate(segment_result.scalars)
            records.append(
                SegmentRecord(f"segment-{len(records)}", segment_result, keep_going)
            )
            previous = segment_result
        return aggregate(staged, records)

    def _lint(self, plan: Plan) -> None:
        from repro.lint import LintContext, lint_plan

        report = lint_plan(
            plan, LintContext.from_config(self.config, self.estimation_mode)
        )
        if not report.diagnostics:
            return
        if self.lint == "error" and report.has_errors:
            raise LintError(
                "plan failed static analysis:\n" + report.format_human()
            )
        print(report.format_human(), file=sys.stderr)

    def _verify(self, plan: Plan) -> None:
        from repro.verify import verify_plan

        report = verify_plan(
            plan,
            num_workers=self.config.num_workers,
            threads_per_worker=self.config.threads_per_worker,
            block_size=self.config.block_size,
            inplace=self.config.inplace,
            max_concurrent_stages=self.config.max_concurrent_stages,
            estimation_mode=self.estimation_mode,
        )
        if not report.has_errors:
            return
        if self.verify == "error":
            raise VerificationError(
                "plan failed static verification:\n" + report.format_human()
            )
        print(report.format_human(), file=sys.stderr)

    def run_systemml(
        self,
        program: MatrixProgram,
        inputs: dict[str, np.ndarray] | None = None,
    ) -> ExecutionResult:
        """Execute the same program under the SystemML-S baseline, on this
        session's cluster (same engines, same metered substrate)."""
        if self.config.backend == "elastic":
            raise ExecutionError(
                "the SystemML-S baseline runs on the static backend; "
                "compare against a session with backend='simulated'"
            )
        executor = SystemMLSExecutor(self.context, self.config.block_size)
        return executor.execute(program, inputs)

"""repro.trace -- structured tracing + metrics for simulated executions.

The tracer records what an execution *did* -- spans (plan -> stage -> step
-> block-task) and point events (transfers, cache transitions, faults,
retries) -- on both the wall clock and the simulated clock, aggregates
them into a metrics registry, exports Chrome trace-event JSON (Perfetto)
and a terminal timeline, and cross-checks its own sums against the
CommunicationLedger and SimulatedClock (see :mod:`repro.trace.reconcile`).

Tracing is strictly opt-in: with no tracer installed every emit site is a
single global read that finds ``None`` (see :mod:`repro.trace.emit`).
"""

from repro.trace.collector import MetricsRegistry, TraceCollector
from repro.trace.emit import (
    active_tracer,
    current_stage,
    install_tracer,
    stage_scope,
)
from repro.trace.export import format_summary, to_chrome_trace, to_json_dict
from repro.trace.model import EVENT_KINDS, SPAN_KINDS, PointEvent, Span
from repro.trace.reconcile import assert_reconciled, reconcile

__all__ = [
    "EVENT_KINDS",
    "SPAN_KINDS",
    "MetricsRegistry",
    "PointEvent",
    "Span",
    "TraceCollector",
    "active_tracer",
    "assert_reconciled",
    "current_stage",
    "format_summary",
    "install_tracer",
    "reconcile",
    "stage_scope",
    "to_chrome_trace",
    "to_json_dict",
]

"""The TraceCollector: spans and events in, metrics and exports out.

One collector instance traces exactly one execution (the executor installs
it via :func:`repro.trace.emit.install_tracer` for the duration of the
run).  It is thread-safe -- spans and events arrive concurrently from the
stage scheduler's pool and from every engine's block-task pool -- and it
never *orders* anything at collection time: canonical, host-independent
ordering is applied on read (:meth:`spans`, :meth:`events`), which is what
keeps every export of a seeded run byte-identical.

After the scheduler finishes, the executor calls :meth:`apply_schedule` to
place the stage and step spans on the simulated timeline (the same
:class:`~repro.runtime.scheduler.StageTiming` numbers the clock charges)
and :meth:`attach_ledger_window` / :meth:`attach_clock_delta` to stamp the
raw material the reconciliation pass audits.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from typing import Iterator

from repro.trace.model import PointEvent, Span

#: The innermost open span of the current thread/context (parent linkage).
_CURRENT_SPAN: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_trace_current_span", default=None
)


class MetricsRegistry:
    """Counters, gauges and histograms aggregated from one trace.

    Plain dictionaries with sorted JSON rendering; values are aggregated
    from canonically ordered spans/events so identical seeded runs yield
    identical registries.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}

    def count(self, name: str, value: int | float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.setdefault(
            name, {"count": 0, "sum": 0.0, "min": None, "max": None}
        )
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = value if hist["min"] is None else min(hist["min"], value)
        hist["max"] = value if hist["max"] is None else max(hist["max"], value)

    def to_json_dict(self) -> dict:
        histograms = {}
        for name, hist in sorted(self.histograms.items()):
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            histograms[name] = {**hist, "mean": mean}
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": histograms,
        }


class TraceCollector:
    """Collects one execution's spans, events and reconciliation inputs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._events: list[PointEvent] = []
        self._next_id = 0
        self._node_attempts: dict[int, int] = {}
        #: Reconciliation inputs stamped by the executor after the run.
        self.meta: dict = {}

    # -- recording (any thread) ----------------------------------------------

    def begin_span(self, kind: str, name: str, **attrs) -> Span:
        """Open a span; the innermost open span of this context becomes its
        parent.  Stage spans are numbered with a per-node attempt count."""
        parent = _CURRENT_SPAN.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            if kind == "stage" and "node" in attrs:
                attempt = self._node_attempts.get(attrs["node"], 0) + 1
                self._node_attempts[attrs["node"]] = attempt
                attrs = {**attrs, "attempt": attempt}
            span = Span(
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                kind=kind,
                name=name,
                wall_start=time.perf_counter(),
                attrs=attrs,
            )
            self._spans.append(span)
        span._token = _CURRENT_SPAN.set(span)  # type: ignore[attr-defined]
        return span

    def end_span(self, span: Span, **attrs) -> None:
        """Close a span (must be balanced with :meth:`begin_span` in the
        same context, which every instrumented site guarantees)."""
        span.wall_end = time.perf_counter()
        if attrs:
            with self._lock:
                span.attrs.update(attrs)
        token = getattr(span, "_token", None)
        if token is not None:
            _CURRENT_SPAN.reset(token)
            del span._token  # type: ignore[attr-defined]

    @contextlib.contextmanager
    def span(self, kind: str, name: str, **attrs) -> Iterator[Span]:
        opened = self.begin_span(kind, name, **attrs)
        try:
            yield opened
        finally:
            self.end_span(opened)

    def event(
        self,
        kind: str,
        name: str,
        stage: tuple[int, int] | None = None,
        **attrs,
    ) -> None:
        """Record a point event (``stage`` is the emitting site's
        stage-graph position, usually :func:`repro.trace.emit.current_stage`)."""
        record = PointEvent(
            kind=kind,
            name=name,
            wall_time=time.perf_counter(),
            stage=stage,
            attrs=attrs,
        )
        with self._lock:
            self._events.append(record)

    # -- post-run placement (executor) ---------------------------------------

    def apply_schedule(self, timings, critical_path: tuple[int, ...]) -> None:
        """Place stage and step spans on the simulated timeline.

        ``timings`` is the scheduler report's per-node ``StageTiming`` list.
        Only each node's *final* attempt is placed (the scheduler folds
        failed attempts' cost into the node's duration); earlier attempts
        keep ``sim_start is None`` and stay off deterministic exports.
        """
        by_node = {timing.node: timing for timing in timings}
        with self._lock:
            final_attempt = dict(self._node_attempts)
            placed: dict[int, Span] = {}
            for span in self._spans:
                if span.kind != "stage":
                    continue
                node = span.attrs.get("node")
                timing = by_node.get(node)
                if timing is None or span.attrs.get("attempt") != final_attempt.get(node):
                    continue
                span.sim_start = timing.start_seconds
                span.sim_end = timing.finish_seconds
                span.attrs.update(
                    network_seconds=timing.duration.network_seconds,
                    compute_seconds=timing.duration.compute_seconds,
                    overhead_seconds=timing.duration.overhead_seconds,
                    on_critical_path=timing.node in critical_path,
                )
                placed[node] = span
            for span in self._spans:
                if span.kind != "step":
                    continue
                stage_span = placed.get(span.attrs.get("node"))
                if stage_span is None or span.parent_id != stage_span.span_id:
                    continue  # a failed attempt's step: leave off the timeline
                offset = span.attrs.get("sim_offset", 0.0)
                duration = span.attrs.get("sim_duration", 0.0)
                span.sim_start = stage_span.sim_start + offset
                span.sim_end = span.sim_start + duration
            for span in self._spans:
                if span.kind == "plan":
                    span.sim_start = 0.0
                    span.sim_end = max(
                        (t.finish_seconds for t in timings), default=0.0
                    )
        self.meta["critical_path"] = tuple(critical_path)

    def attach_ledger_window(self, records: list) -> None:
        """The ledger's ``TransferRecord`` list for exactly this run."""
        self.meta["ledger_records"] = list(records)

    def attach_clock_delta(self, network: float, compute: float, overhead: float) -> None:
        """How much this run advanced the global simulated clock."""
        self.meta["clock_delta"] = (network, compute, overhead)

    def attach_elapsed(self, breakdown) -> None:
        """The scheduler's committed critical-path breakdown."""
        self.meta["elapsed"] = (
            breakdown.network_seconds,
            breakdown.compute_seconds,
            breakdown.overhead_seconds,
        )

    # -- reading (canonical order) -------------------------------------------

    def spans(self, kind: str | None = None) -> list[Span]:
        with self._lock:
            spans = list(self._spans)
        if kind is not None:
            spans = [span for span in spans if span.kind == kind]
        return sorted(spans, key=Span.sort_key)

    def events(self, kind: str | None = None) -> list[PointEvent]:
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        return sorted(events, key=PointEvent.sort_key)

    def final_stage_spans(self) -> list[Span]:
        """Each node's placed (final-attempt) stage span, by node index."""
        spans = [s for s in self.spans("stage") if s.sim_start is not None]
        return sorted(spans, key=lambda s: s.attrs["node"])

    # -- metrics ---------------------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """Aggregate the trace into a metrics registry (deterministic for
        seeded runs: aggregation walks canonically ordered spans/events)."""
        registry = MetricsRegistry()
        for event in self.events("transfer"):
            nbytes = event.attrs.get("nbytes", 0)
            registry.count("bytes.total", nbytes)
            registry.count(f"bytes.kind.{event.name}", nbytes)
            link = event.attrs.get("link")
            if link is not None:
                registry.count(f"bytes.link.{link[0]}->{link[1]}", nbytes)
            else:
                registry.count("bytes.unattributed", nbytes)
            registry.count("transfers", 1)
            registry.observe("transfer_bytes", nbytes)
        cache_counts = {"pin": 0, "hit": 0, "spill": 0, "refill": 0}
        for event in self.events("cache"):
            cache_counts[event.name] = cache_counts.get(event.name, 0) + 1
            registry.count(f"cache.{event.name}", 1)
        lookups = cache_counts["hit"] + cache_counts["refill"]
        if lookups:
            registry.gauge("cache.hit_rate", cache_counts["hit"] / lookups)
        for kind, counter in (
            ("fault", "faults.injected"),
            ("retry", "retries"),
            ("speculation", "speculations"),
            ("recovery", "recovery.cones"),
        ):
            events = self.events(kind)
            if events:
                registry.count(counter, len(events))
        for span in self.final_stage_spans():
            registry.observe("stage.sim_seconds", span.sim_seconds)
            registry.count(f"stage.sim_seconds.stage-{span.attrs['stage']}", span.sim_seconds)
        for span in self.spans("step"):
            if span.sim_start is None:
                continue
            registry.observe("step.sim_seconds", span.attrs.get("sim_duration", 0.0))
            registry.observe("step.bytes", span.attrs.get("bytes", 0))
            registry.observe("step.flops", span.attrs.get("flops", 0))
        block_tasks = self.spans("block-task")
        if block_tasks:
            registry.count("block_tasks", len(block_tasks))
        return registry

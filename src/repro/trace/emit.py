"""The emit API: how the rest of the system reports to an active tracer.

Design constraints, in order:

1. **Zero cost when off.**  Every instrumented site (the ledger's
   ``record``, the scheduler's retry loop, the engines' task pools) guards
   its emission with ``tracer = active_tracer(); if tracer is None: ...``.
   With no tracer installed that is a single module-global read -- the
   same discipline the chaos hooks follow, and what keeps a tracing-off
   run byte-identical (and benchmark-identical) to a build without this
   package (see ``benchmarks/bench_trace_overhead.py``).

2. **Visible from every thread.**  One execution spans the scheduler's
   stage pool and each engine's block-task pool.  The *tracer* is
   process-global (installed around one execution, exactly like
   ``Backend.install_chaos``); the *position* within the execution --
   which stage-graph node this thread is working for -- is a
   :mod:`contextvars` variable, installed per node attempt and propagated
   into engine pool threads by :meth:`repro.localexec.engine.LocalEngine._run`'s
   context copy.

3. **No upward imports.**  Like :mod:`repro.runtime.metering`, this module
   imports nothing from :mod:`repro`: it sits below the ledger, the clock
   and the engines in the import graph so any layer may report to it.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator

#: The process-wide tracer of the currently executing traced run (if any).
#: A plain global, not a context variable: spans and events arrive from
#: scheduler pool threads and engine pool threads alike, and all of them
#: must see the same collector.
_TRACER = None

#: ``(node index, stage number)`` of the stage-graph node this thread is
#: currently executing for, or ``None`` outside any node (driver code).
_STAGE: contextvars.ContextVar[tuple[int, int] | None] = contextvars.ContextVar(
    "repro_trace_stage", default=None
)


def active_tracer():
    """The installed tracer, or ``None`` when tracing is off."""
    return _TRACER


@contextlib.contextmanager
def install_tracer(tracer) -> Iterator[None]:
    """Install ``tracer`` as the process-wide tracer for the block.

    Nesting is rejected: one traced execution at a time (sessions run
    executions sequentially; the clean/faulted pair of a chaos run uses
    two sessions back to back, never concurrently).
    """
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError("a tracer is already installed")
    _TRACER = tracer
    try:
        yield
    finally:
        _TRACER = None


def current_stage() -> tuple[int, int] | None:
    """``(node, stage)`` of the executing stage-graph node, if any."""
    return _STAGE.get()


@contextlib.contextmanager
def stage_scope(node: int, stage: int) -> Iterator[None]:
    """Mark this thread (and contexts copied from it) as executing one
    stage-graph node, so point events can be attributed to it."""
    token = _STAGE.set((node, stage))
    try:
        yield
    finally:
        _STAGE.reset(token)

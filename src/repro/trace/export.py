"""Exports: Chrome trace-event JSON, a structured JSON document, and a
terminal timeline.

The Chrome export (``--format chrome``) is loadable in Perfetto /
``chrome://tracing`` and is **deterministic**: it is rendered exclusively
from simulated-clock timestamps and canonically ordered spans/events, so
the same app + seed + faults spec produces byte-identical output no matter
how the host's threads interleaved.  Wall-clock numbers never appear in
it; they only show up in the summary view, clearly labelled.
"""

from __future__ import annotations

import json

from repro.trace.collector import TraceCollector

#: Simulated seconds -> Chrome trace microseconds.
_US = 1_000_000


def _span_args(span) -> dict:
    args = {}
    for key in sorted(span.attrs):
        value = span.attrs[key]
        if isinstance(value, tuple):
            value = list(value)
        args[key] = value
    return args


def to_chrome_trace(collector: TraceCollector) -> str:
    """Render the trace as a Chrome trace-event JSON string.

    Tracks (``tid``) are stage-graph node indices; the plan span rides on
    track -1 so Perfetto shows the full makespan above the per-node lanes.
    Point events appear as instants pinned to the simulated start of the
    stage they are attributed to (driver-side events sit at t=0).
    """
    events: list[dict] = []
    stage_starts: dict[int, float] = {}
    for span in collector.spans():
        if span.sim_start is None or span.sim_end is None:
            continue  # failed attempts / block-tasks live on wall clock only
        if span.kind == "stage":
            stage_starts[span.attrs["node"]] = span.sim_start
        tid = -1 if span.kind == "plan" else span.attrs.get("node", -1)
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "name": f"{span.kind}:{span.name}",
                "cat": span.kind,
                "ts": span.sim_start * _US,
                "dur": span.sim_seconds * _US,
                "args": _span_args(span),
            }
        )
    for event in collector.events():
        node = event.stage[0] if event.stage is not None else -1
        ts = stage_starts.get(node, 0.0) * _US
        attrs = {}
        for key in sorted(event.attrs):
            value = event.attrs[key]
            if isinstance(value, tuple):
                value = list(value)
            attrs[key] = value
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": node,
                "name": f"{event.kind}:{event.name}",
                "cat": event.kind,
                "ts": ts,
                "s": "t",
                "args": attrs,
            }
        )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "metrics": collector.metrics().to_json_dict(),
        },
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def to_json_dict(collector: TraceCollector) -> dict:
    """The full structured trace document (``--format json``)."""
    spans = []
    for span in collector.spans():
        spans.append(
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "kind": span.kind,
                "name": span.name,
                "sim_start": span.sim_start,
                "sim_end": span.sim_end,
                "sim_seconds": span.sim_seconds,
                "attrs": _span_args(span),
            }
        )
    events = []
    for event in collector.events():
        events.append(
            {
                "kind": event.kind,
                "name": event.name,
                "stage": list(event.stage) if event.stage is not None else None,
                "attrs": {key: event.attrs[key] for key in sorted(event.attrs)},
            }
        )
    plan_spans = collector.spans("plan")
    wall_seconds = sum(span.wall_seconds for span in plan_spans)
    return {
        "spans": spans,
        "events": events,
        "metrics": collector.metrics().to_json_dict(),
        "critical_path": list(collector.meta.get("critical_path", ())),
        "wall_seconds": wall_seconds,
    }


def _bar(start: float, end: float, makespan: float, width: int = 40) -> str:
    if makespan <= 0:
        return " " * width
    left = int(round(start / makespan * width))
    right = max(left + 1, int(round(end / makespan * width)))
    right = min(right, width)
    return " " * left + "#" * (right - left) + " " * (width - right)


def format_summary(collector: TraceCollector) -> str:
    """A terminal timeline of the simulated schedule plus headline metrics."""
    lines: list[str] = []
    stages = collector.final_stage_spans()
    makespan = max((span.sim_end for span in stages), default=0.0)
    lines.append(f"simulated timeline ({makespan:.6f} s makespan)")
    for span in stages:
        marker = "*" if span.attrs.get("on_critical_path") else " "
        lines.append(
            f"  node {span.attrs['node']:>3} stage {span.attrs['stage']:>3} {marker} "
            f"|{_bar(span.sim_start, span.sim_end, makespan)}| "
            f"{span.sim_seconds:.6f} s"
        )
    lines.append("  (* = on the critical path)")
    metrics = collector.metrics().to_json_dict()
    lines.append("metrics")
    for name, value in metrics["counters"].items():
        lines.append(f"  {name:<40} {value}")
    for name, value in metrics["gauges"].items():
        lines.append(f"  {name:<40} {value:.4f}")
    for name, hist in metrics["histograms"].items():
        lines.append(
            f"  {name:<40} n={hist['count']} sum={hist['sum']:.6g} "
            f"min={hist['min']:.6g} max={hist['max']:.6g} mean={hist['mean']:.6g}"
        )
    return "\n".join(lines)

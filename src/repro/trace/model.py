"""The span/event model: what a traced execution is made of.

A **span** is an interval with two clocks.  Wall clock timestamps
(``perf_counter`` seconds) describe what the host physically did and are
never exported to deterministic formats; *simulated* clock timestamps
describe where the interval sits on the cluster's dependency-bound
schedule and are assigned after the run from the scheduler's
:class:`~repro.runtime.scheduler.StageTiming` (the same numbers the
simulated clock charges), which is what makes a Chrome export of the same
seeded run byte-identical.

The span hierarchy mirrors the execution model::

    plan                      one per traced execution
    +- stage                  one per stage-graph node *attempt*
       +- step                one per plan step executed in the node
          +- block-task       one per engine pool task (wall clock only)

**Point events** are instants: a metered transfer, a cache transition, an
injected fault, a retry.  They carry whatever attributes their reporting
site knows (bytes, link, ledger scope, stage-graph node) -- the
reconciliation pass in :mod:`repro.trace.reconcile` cross-checks those
attributions against the ledger's own books.
"""

from __future__ import annotations

import dataclasses

#: Span kinds, outermost first.
SPAN_KINDS = ("plan", "stage", "step", "block-task")

#: Point-event kinds.
EVENT_KINDS = (
    "transfer",  # one CommunicationLedger record (shuffle or broadcast)
    "cache",  # BlockCache transition: pin / hit / spill / refill
    "fault",  # ChaosEngine injection: crash / flaky / lostblock / straggler
    "recovery",  # lineage recovery cone replay
    "retry",  # scheduler re-ran a node after a retryable failure
    "speculation",  # a speculative copy beat a straggler
)


@dataclasses.dataclass
class Span:
    """One interval of a traced execution."""

    span_id: int
    parent_id: int | None
    kind: str  # one of SPAN_KINDS
    name: str
    wall_start: float  # perf_counter seconds (host-dependent; never exported)
    wall_end: float | None = None
    sim_start: float | None = None  # simulated seconds (assigned post-run)
    sim_end: float | None = None
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_seconds(self) -> float:
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    def sort_key(self) -> tuple:
        """Canonical, host-schedule-independent ordering key.

        Wall times are deliberately excluded: two runs of the same seeded
        execution must sort their spans identically even though their
        threads interleaved differently.
        """
        return (
            self.sim_start if self.sim_start is not None else float("inf"),
            SPAN_KINDS.index(self.kind) if self.kind in SPAN_KINDS else len(SPAN_KINDS),
            self.attrs.get("node", -1),
            self.attrs.get("attempt", 0),
            self.attrs.get("plan_index", -1),
            self.name,
        )


@dataclasses.dataclass(frozen=True)
class PointEvent:
    """One instant of a traced execution."""

    kind: str  # one of EVENT_KINDS
    name: str  # e.g. "shuffle", "spill", "crash"
    wall_time: float
    #: (stage-graph node, stage number) the emitting thread was executing
    #: for, or ``None`` for driver-side events.
    stage: tuple[int, int] | None = None
    attrs: dict = dataclasses.field(default_factory=dict)

    def sort_key(self) -> tuple:
        """Canonical ordering key (wall-clock independent)."""
        return (
            EVENT_KINDS.index(self.kind) if self.kind in EVENT_KINDS else len(EVENT_KINDS),
            self.name,
            self.stage if self.stage is not None else (-1, -1),
            sorted(
                (key, repr(value)) for key, value in self.attrs.items()
            ),
        )

"""The reconciliation pass: the trace must agree with the books, exactly.

A traced run double-enters every cost.  Bytes are entered once by the
:class:`~repro.rdd.ledger.CommunicationLedger` (the system of record) and
once as trace ``transfer`` events; simulated seconds are entered once by
the scheduler/clock and once as placed stage spans.  This module asserts
the two sets of books agree **exactly** -- integer equality for bytes, and
float equality (not tolerance) for seconds, because the stage spans carry
the very same ``StageTiming`` components the scheduler summed, added here
in the same critical-path order.

This is what makes the tracer a standing correctness audit of the
metering layer: a transfer recorded under the wrong stage scope (the
pre-fix ``threading.local`` ledger bug), or dropped from a per-link sum
(the pre-fix ``bytes_by_link`` broadcast bug), fails a check below.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import TraceReconciliationError
from repro.trace.collector import TraceCollector


def _stage_of_scope(scope: str) -> int | None:
    """The stage number a ledger scope attributes to (``"stage-3/..."``
    -> 3), or ``None`` for driver-side / special scopes."""
    if not scope.startswith("stage-"):
        return None
    head = scope.split("/", 1)[0]
    try:
        return int(head[len("stage-") :])
    except ValueError:
        return None


def _check(name: str, expected, actual) -> dict:
    return {"name": name, "ok": expected == actual, "expected": expected, "actual": actual}


def reconcile(collector: TraceCollector) -> dict:
    """Cross-check the trace against the ledger window and the clock.

    Returns ``{"ok": bool, "checks": [...]}``; every check lists what the
    ledger/clock said (``expected``) and what the trace summed (``actual``).
    """
    checks: list[dict] = []
    records = collector.meta.get("ledger_records", [])
    transfers = collector.events("transfer")

    # -- bytes: totals, by kind, by link, by scope ---------------------------
    checks.append(
        _check(
            "bytes.total",
            sum(r.nbytes for r in records),
            sum(e.attrs.get("nbytes", 0) for e in transfers),
        )
    )
    by_kind: dict[str, int] = defaultdict(int)
    by_link: dict = defaultdict(int)
    by_scope: dict[str, int] = defaultdict(int)
    for record in records:
        by_kind[record.kind] += record.nbytes
        by_link[record.link] += record.nbytes
        by_scope[record.scope] += record.nbytes
    traced_kind: dict[str, int] = defaultdict(int)
    traced_link: dict = defaultdict(int)
    traced_scope: dict[str, int] = defaultdict(int)
    for event in transfers:
        nbytes = event.attrs.get("nbytes", 0)
        traced_kind[event.name] += nbytes
        traced_link[event.attrs.get("link")] += nbytes
        traced_scope[event.attrs.get("scope", "")] += nbytes

    def _linkname(link) -> str:
        return "unattributed" if link is None else f"{link[0]}->{link[1]}"

    checks.append(_check("bytes.by_kind", dict(by_kind), dict(traced_kind)))
    checks.append(
        _check(
            "bytes.by_link",
            {_linkname(k): v for k, v in sorted(by_link.items(), key=lambda i: _linkname(i[0]))},
            {_linkname(k): v for k, v in sorted(traced_link.items(), key=lambda i: _linkname(i[0]))},
        )
    )
    checks.append(
        _check(
            "bytes.by_scope",
            dict(sorted(by_scope.items())),
            dict(sorted(traced_scope.items())),
        )
    )

    # -- stage attribution: each transfer's thread-context stage must agree
    # with its ledger scope.  This is the check the threading.local scope
    # stack failed: pool threads recorded under an empty scope while their
    # submitting stage's context said otherwise.
    misattributed = []
    for event in transfers:
        scope = event.attrs.get("scope", "")
        scoped_stage = _stage_of_scope(scope)
        context_stage = event.stage[1] if event.stage is not None else None
        if scoped_stage != context_stage:
            misattributed.append(
                {"scope": scope, "context_stage": context_stage, "nbytes": event.attrs.get("nbytes", 0)}
            )
    checks.append(_check("bytes.stage_attribution", [], misattributed))

    # -- seconds: critical-path stage spans vs the scheduler's elapsed -------
    elapsed = collector.meta.get("elapsed")
    if elapsed is not None:
        critical_path = collector.meta.get("critical_path", ())
        spans_by_node = {s.attrs["node"]: s for s in collector.final_stage_spans()}
        network = compute = overhead = 0.0
        # Same components, same order, same float additions as the
        # scheduler's critical-path sum: equality is exact, not approximate.
        for node in critical_path:
            span = spans_by_node.get(node)
            if span is None:
                network = compute = overhead = float("nan")
                break
            network += span.attrs["network_seconds"]
            compute += span.attrs["compute_seconds"]
            overhead += span.attrs["overhead_seconds"]
        checks.append(
            _check("seconds.critical_path", tuple(elapsed), (network, compute, overhead))
        )
    clock_delta = collector.meta.get("clock_delta")
    if clock_delta is not None and elapsed is not None:
        checks.append(_check("seconds.clock_delta", tuple(clock_delta), tuple(elapsed)))

    return {"ok": all(c["ok"] for c in checks), "checks": checks}


def assert_reconciled(collector: TraceCollector) -> dict:
    """Run :func:`reconcile`; raise on any mismatch, return the report."""
    report = reconcile(collector)
    if not report["ok"]:
        failed = [c for c in report["checks"] if not c["ok"]]
        detail = "; ".join(
            f"{c['name']}: expected {c['expected']!r}, trace summed {c['actual']!r}"
            for c in failed
        )
        raise TraceReconciliationError(
            f"trace does not reconcile with the metering layer: {detail}"
        )
    return report

"""repro.verify -- static verification of DMac plans.

A worklist fixpoint dataflow framework over the plan IR (shape, NNZ
intervals with widening, layouts, liveness; transfer functions derived
from the operator registry) with three clients:

* **translation validation** (:mod:`repro.verify.certify`) -- certify
  every optimizer rewrite equivalence-preserving, or hard-fail
  optimization with :class:`~repro.errors.TranslationValidationError`;
* **hazard detection** (:mod:`repro.verify.hazards`) -- happens-before
  over the stage graph vs the plan's publish/consume events, surfacing
  read-before-publish and conflicting double-publish defects (the lint's
  DM3xx rules);
* **memory prediction** (:mod:`repro.verify.memory`) -- a sound
  per-worker peak bound mirroring the engines' tracker charges, exposed
  on ``ExecutionResult.predicted_peak_memory_bytes`` and behind DM206.

Entry points: :func:`verify_plan` for everything at once,
``repro verify <app>`` on the command line, ``DMacSession(verify=...)``
in a session.
"""

from repro.verify.analysis import PlanAnalysis, analyse_plan, base_name
from repro.verify.certify import (
    Certificate,
    ValueConflict,
    ValueSummary,
    certify,
    value_summary,
)
from repro.verify.engine import FixpointResult, solve
from repro.verify.hazards import (
    DOUBLE_PUBLISH,
    READ_BEFORE_PUBLISH,
    Hazard,
    ancestor_masks,
    find_hazards,
    happens_before,
)
from repro.verify.lattice import (
    TOP,
    FlatLattice,
    Interval,
    IntervalLattice,
    Lattice,
    PowersetLattice,
)
from repro.verify.memory import (
    MemoryPrediction,
    StepFootprint,
    predict_peak_memory,
)
from repro.verify.report import VerificationReport, verify_plan

__all__ = [
    "Certificate",
    "DOUBLE_PUBLISH",
    "FixpointResult",
    "FlatLattice",
    "Hazard",
    "Interval",
    "IntervalLattice",
    "Lattice",
    "MemoryPrediction",
    "PlanAnalysis",
    "PowersetLattice",
    "READ_BEFORE_PUBLISH",
    "StepFootprint",
    "TOP",
    "ValueConflict",
    "ValueSummary",
    "VerificationReport",
    "analyse_plan",
    "ancestor_masks",
    "base_name",
    "certify",
    "find_hazards",
    "happens_before",
    "predict_peak_memory",
    "solve",
    "value_summary",
    "verify_plan",
]

"""Concrete dataflow analyses over the plan IR.

Transfer functions are *derived from the operator registry*
(:mod:`repro.runtime.registry`): the shape analysis calls each spec's own
``shape_rule``, and the NNZ analysis dispatches on ``spec.name`` with a
conservative default for any spec the table below does not know.  Register
a new operator and every analysis here immediately handles it -- precisely
for the known families, soundly (full range / TOP) for the rest.

Four analyses ship:

* **shape** (forward, flat lattice): ``(rows, cols)`` per matrix instance.
* **layouts** (forward, powerset): which partition schemes each logical
  ``(name, transposed)`` version is materialised under.
* **NNZ** (forward, intervals with widening): non-zero count ranges per
  *logical base name*.  Summarising SSA versions into one cell makes
  loop-carried updates (PageRank's rank, GNMF's factors) feed back into
  themselves -- a genuine cycle the widening operator resolves in a
  bounded number of passes.
* **liveness** (backward, powerset): instances still needed after each
  step; one reverse sweep suffices on the acyclic per-instance plan.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.core.plan import MatrixInstance, Plan, Step
from repro.errors import PlanError
from repro.matrix.schemes import Scheme
from repro.runtime.registry import OPERATORS
from repro.verify.engine import FixpointResult, solve
from repro.verify.lattice import (
    TOP,
    FlatLattice,
    Interval,
    IntervalLattice,
    PowersetLattice,
)

Shape = Tuple[int, int]
#: Version key for the layout analysis: (logical name, transposed).
VersionKey = Tuple[str, bool]


def base_name(name: str) -> str:
    """Strip the SSA version suffix: ``"W@2" -> "W"``."""
    return name.split("@", 1)[0]


def _spec_name(step: Step) -> Optional[str]:
    spec = OPERATORS.get(type(step))
    return spec.name if spec is not None else None


# ---------------------------------------------------------------------------
# Shape analysis (forward, flat).
# ---------------------------------------------------------------------------


def solve_shapes(plan: Plan) -> FixpointResult[MatrixInstance, object]:
    """Instance -> ``(rows, cols)`` | TOP, via the registry's shape rules."""

    def transfer(
        index: int, step: Step, env: Mapping[MatrixInstance, object]
    ) -> Mapping[MatrixInstance, object]:
        output = step.output_instance()
        if output is None:
            return {}
        spec = OPERATORS.get(type(step))
        if spec is None:  # unregistered operator: soundly unknown
            return {output: TOP}
        concrete: Dict[MatrixInstance, Shape] = {
            k: v  # shape rules index into pairs; feed them only real facts
            for k, v in env.items()
            if isinstance(v, tuple)
        }
        try:
            shape = spec.shape_rule(step, concrete)
        except PlanError:
            return {output: TOP}
        return {} if shape is None else {output: shape}

    def reads(index: int, step: Step) -> Iterable[MatrixInstance]:
        return step.inputs()

    return solve(plan.steps, FlatLattice(), transfer, reads)


# ---------------------------------------------------------------------------
# Layout analysis (forward, powerset).
# ---------------------------------------------------------------------------


def solve_layouts(plan: Plan) -> FixpointResult[VersionKey, FrozenSet[Scheme]]:
    """``(name, transposed)`` -> the set of schemes it is materialised under."""

    def transfer(
        index: int, step: Step, env: Mapping[VersionKey, FrozenSet[Scheme]]
    ) -> Mapping[VersionKey, FrozenSet[Scheme]]:
        output = step.output_instance()
        if output is None:
            return {}
        return {(output.name, output.transposed): frozenset({output.scheme})}

    def reads(index: int, step: Step) -> Iterable[VersionKey]:
        return ()  # definitions only; one pass over the steps suffices

    return solve(plan.steps, PowersetLattice(), transfer, reads)


# ---------------------------------------------------------------------------
# NNZ analysis (forward, intervals, widening).
# ---------------------------------------------------------------------------

#: spec.name -> interval transfer.  Each rule receives the step, a lookup
#: of its inputs' intervals (by base name), and the output's cell count.
NnzRule = Callable[[Step, Callable[[str], Interval], int], Interval]


def _hi(interval: Interval, cells: int) -> int:
    return cells if interval.hi is None else min(interval.hi, cells)


def _nnz_source(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    op = getattr(step, "op")
    sparsity = getattr(op, "sparsity", None)
    if sparsity is not None:  # load: declared density is exact
        nnz = min(cells, int(round(cells * float(sparsity))))
        return Interval(nnz, nnz)
    value = getattr(op, "value", None)
    if value == 0:  # full(0)
        return Interval(0, 0)
    return Interval(cells, cells)  # random / nonzero constant: dense


def _nnz_extended(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    source = getattr(step, "source")
    return of(base_name(source.name)).clamp(0, cells)


def _nnz_matmul(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    return Interval(0, cells)


def _nnz_cellwise(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    left = of(base_name(getattr(step, "left").name))
    right = of(base_name(getattr(step, "right").name))
    op = getattr(step, "op").op
    if op == "multiply":  # zeros annihilate
        return Interval(0, min(_hi(left, cells), _hi(right, cells)))
    if op == "divide":  # result support is within the numerator's
        return Interval(0, _hi(left, cells))
    return Interval(0, min(cells, _hi(left, cells) + _hi(right, cells)))


def _nnz_scalar_matrix(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    source = of(base_name(getattr(step, "source").name))
    op = getattr(step, "op")
    scalar = op.scalar
    if op.op in ("multiply", "divide") and (
        not isinstance(scalar, (int, float)) or scalar != 0
    ):
        return Interval(0, _hi(source, cells))  # support preserved or shrunk
    return Interval(0, cells)  # add/sub (or zero scalar) may densify


def _nnz_unary(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    source = of(base_name(getattr(step, "source").name))
    func = getattr(step, "op").func
    if func in ("abs", "sign", "sqrt", "square", "relu"):  # f(0) == 0
        return Interval(0, _hi(source, cells))
    return Interval(0, cells)  # exp, sigmoid, ... map zeros elsewhere


def _nnz_row_agg(step: Step, of: Callable[[str], Interval], cells: int) -> Interval:
    return Interval(0, cells)


NNZ_RULES: Dict[str, NnzRule] = {
    "source": _nnz_source,
    "extended": _nnz_extended,
    "matmul": _nnz_matmul,
    "cellwise": _nnz_cellwise,
    "scalar-matrix": _nnz_scalar_matrix,
    "unary": _nnz_unary,
    "row-agg": _nnz_row_agg,
}


def solve_nnz(plan: Plan, *, widen_after: int = 3) -> FixpointResult[str, Optional[Interval]]:
    """Base name -> NNZ interval, widened over loop-carried versions."""
    cells_of: Dict[str, int] = {}
    for name, (rows, cols) in plan.program.dims.items():
        key = base_name(name)
        cells_of[key] = max(cells_of.get(key, 0), rows * cols)

    def cells(key: str) -> int:
        return cells_of.get(key, 0)

    def transfer(
        index: int, step: Step, env: Mapping[str, Optional[Interval]]
    ) -> Mapping[str, Optional[Interval]]:
        output = step.output_instance()
        if output is None:
            return {}
        key = base_name(output.name)
        out_cells = cells(key)

        def of(name: str) -> Interval:
            found = env.get(name)
            return found if found is not None else Interval(0, cells(name))

        spec_name = _spec_name(step)
        rule = NNZ_RULES.get(spec_name) if spec_name is not None else None
        if rule is None:  # unregistered operator: full structural range
            return {key: Interval(0, out_cells)}
        return {key: rule(step, of, out_cells).clamp(0, out_cells)}

    def reads(index: int, step: Step) -> Iterable[str]:
        return [base_name(i.name) for i in step.inputs()]

    return solve(plan.steps, IntervalLattice(), transfer, reads, widen_after=widen_after)


# ---------------------------------------------------------------------------
# Liveness (backward, powerset).
# ---------------------------------------------------------------------------


def solve_liveness(plan: Plan) -> Tuple[FrozenSet[MatrixInstance], ...]:
    """``live_after[i]``: instances some step after ``i`` (or a program
    output materialisation) still reads.  One reverse sweep -- the
    per-instance dependency graph is acyclic by construction."""
    live: set[MatrixInstance] = set(plan.outputs.values())
    live_after: list[FrozenSet[MatrixInstance]] = [frozenset()] * len(plan.steps)
    for index in range(len(plan.steps) - 1, -1, -1):
        step = plan.steps[index]
        live_after[index] = frozenset(live)
        output = step.output_instance()
        if output is not None:
            live.discard(output)
        live.update(step.inputs())
    return tuple(live_after)


# ---------------------------------------------------------------------------
# The aggregate.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PlanAnalysis:
    """Stable facts for one plan, as computed by the fixpoint engine."""

    shapes: Mapping[MatrixInstance, object]  # (rows, cols) | TOP
    layouts: Mapping[VersionKey, FrozenSet[Scheme]]
    nnz: Mapping[str, Optional[Interval]]
    live_after: Tuple[FrozenSet[MatrixInstance], ...]
    iterations: int  # total engine pops across the fixpoint analyses
    widened: FrozenSet[str]  # base names whose NNZ needed widening

    def shape_of(self, instance: MatrixInstance) -> Optional[Shape]:
        fact = self.shapes.get(instance)
        return fact if isinstance(fact, tuple) else None

    def nnz_of(self, name: str) -> Optional[Interval]:
        return self.nnz.get(base_name(name))


def analyse_plan(plan: Plan, *, widen_after: int = 3) -> PlanAnalysis:
    """Run all four analyses to fixpoint and bundle the stable facts."""
    shapes = solve_shapes(plan)
    layouts = solve_layouts(plan)
    nnz = solve_nnz(plan, widen_after=widen_after)
    live_after = solve_liveness(plan)
    return PlanAnalysis(
        shapes=shapes.values,
        layouts=layouts.values,
        nnz=nnz.values,
        live_after=live_after,
        iterations=shapes.iterations + layouts.iterations + nnz.iterations,
        widened=nnz.widened,
    )

"""Translation validation for :mod:`repro.planopt` rewrites.

The optimizer's passes re-bind *where* matrices live -- merge duplicate
subtrees, flip matmul strategies, re-route repartition chains, pin
loop-invariants -- but must never change *what* is computed.  This module
certifies exactly that, statically, by reducing both the pre- and
post-rewrite plan to **symbolic value keys**: every logical matrix name is
assigned a structural term built from the compute steps that define it
(``("@", read(A), read(B))`` for a multiply, ...), with extended operators
(partition / broadcast / extract / transpose) contributing only layout --
a transpose wraps the term in a self-cancelling ``("T", .)`` marker.

Two plans are certified equivalent when, for every program output (matrix
and scalar), the value keys agree, the dataflow stays well-ordered, no
name acquires conflicting definitions, and the fixpoint shape facts of the
outputs survive.  Scheme/strategy choices are deliberately *absent* from
the keys: they are the degrees of freedom the optimizer is allowed to
exercise.  Operand order is deliberately *present*, even for commutative
operators: no current pass reorders operands, so a swapped ``divide`` (the
classic broken-rewrite bug) fails certification immediately.

Certification is intentionally conservative -- a sound rewrite expressed
through terms this analysis cannot equate would be rejected, never the
reverse.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    FusedCellwiseStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    ScalarComputeStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)
from repro.errors import TranslationValidationError
from repro.lang.program import FullOp, LoadOp, RandomOp
from repro.lang.expr import (
    AggExpr,
    ScalarBinaryExpr,
    ScalarConst,
    ScalarExpr,
    ScalarRefExpr,
    ScalarUnaryExpr,
)
from repro.verify.analysis import PlanAnalysis, analyse_plan

#: A symbolic value: an interned :class:`Term` or an atomic string/number.
ValueKey = object


class Term:
    """A hash-consed symbolic value node: ``head`` plus interned children.

    Terms are only created through :func:`term`, which interns them so that
    structural equality coincides with object identity.  That makes ``==``
    on two value keys O(1) regardless of expression depth.  Naive nested
    tuples fail here: an unrolled power iteration (SVD's Lanczos chain)
    duplicates each previous term in the next one, so the *tree* a key
    denotes grows exponentially with plan depth even though the DAG is
    linear -- and comparing the before/after plans of a rewrite, which
    share no tuple objects, walks that whole tree.
    """

    __slots__ = ("head", "args")

    def __init__(self, head: object, args: Tuple[object, ...]) -> None:
        self.head = head
        self.args = args

    def _format(self, depth: int) -> str:
        if depth <= 0:
            return "..."
        parts = [repr(self.head)] + [
            arg._format(depth - 1) if isinstance(arg, Term) else repr(arg)
            for arg in self.args
        ]
        return "(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:
        return self._format(4)


#: Intern table.  Children are already interned when a term is built, so the
#: key hashes atoms by value and Terms by identity -- O(arity) per node.
_INTERNED: Dict[Tuple[object, ...], Term] = {}


def term(head: object, *args: object) -> Term:
    """Build (or reuse) the unique interned term ``head(*args)``."""
    key = (head, *args)
    interned = _INTERNED.get(key)
    if interned is None:
        interned = _INTERNED[key] = Term(head, key[1:])
    return interned

#: The obligations :func:`certify` discharges, in the order checked.
OBLIGATIONS: Tuple[str, ...] = (
    "outputs-preserved",
    "dataflow-well-ordered",
    "no-conflicting-redefinition",
    "value-equivalence",
    "scalar-equivalence",
    "shape-agreement",
    "pins-produced",
    "fusion-chain-equivalence",
)


def _t(key: ValueKey) -> ValueKey:
    """Transpose marker with ``T(T(x)) = x`` normalisation."""
    if isinstance(key, Term) and key.head == "T":
        return key.args[0]
    return term("T", key)


@dataclasses.dataclass(frozen=True)
class ValueConflict:
    """A logical name redefined to a *different* symbolic value."""

    name: str
    step: int  # plan index of the conflicting definition
    existing: ValueKey
    conflicting: ValueKey


@dataclasses.dataclass(frozen=True)
class ValueSummary:
    """Per-plan symbolic values: logical name -> term, plus anomalies."""

    matrices: Dict[str, ValueKey]
    scalars: Dict[str, ValueKey]
    conflicts: Tuple[ValueConflict, ...]
    #: (step index, instance) pairs consumed at an index no producer precedes.
    order_violations: Tuple[Tuple[int, str], ...]
    #: instance names consumed but never produced by any step.
    dangling: Tuple[str, ...]


def _canon_expr(expr: ScalarExpr, scalars: Dict[str, ValueKey]) -> ValueKey:
    if isinstance(expr, ScalarConst):
        return term("const", expr.value)
    if isinstance(expr, ScalarRefExpr):
        return scalars.get(expr.name, term("free-scalar", expr.name))
    if isinstance(expr, ScalarBinaryExpr):
        return term(
            expr.op,
            _canon_expr(expr.left, scalars),
            _canon_expr(expr.right, scalars),
        )
    if isinstance(expr, ScalarUnaryExpr):
        return term(expr.op, _canon_expr(expr.child, scalars))
    if isinstance(expr, AggExpr):  # normally lowered before planning
        return term("agg", expr.kind, repr(expr.child))
    return term("opaque", repr(expr))


def value_summary(plan: Plan) -> ValueSummary:
    """Symbolically evaluate a plan's dataflow into per-name value keys."""
    matrices: Dict[str, ValueKey] = {}
    scalars: Dict[str, ValueKey] = {}
    conflicts: List[ValueConflict] = []
    order_violations: List[Tuple[int, str]] = []
    produced_at: Dict[MatrixInstance, int] = {}
    scalar_at: Dict[str, int] = {}
    ever_produced = {
        i for step in plan.steps if (i := step.output_instance()) is not None
    }
    scalar_ever = {
        s for step in plan.steps if (s := step.scalar_output()) is not None
    }
    dangling: List[str] = []

    def read(instance: MatrixInstance) -> ValueKey:
        base = matrices.get(instance.name, term("free", instance.name))
        return _t(base) if instance.transposed else base

    def scalar_term(scalar: object) -> ValueKey:
        if isinstance(scalar, str):
            return scalars.get(scalar, term("free-scalar", scalar))
        return term("const", scalar)

    def define(index: int, instance: MatrixInstance, physical: ValueKey) -> None:
        value = _t(physical) if instance.transposed else physical
        existing = matrices.get(instance.name)
        if existing is None:
            matrices[instance.name] = value
        elif existing != value:
            conflicts.append(
                ValueConflict(instance.name, index, existing, value)
            )

    for index, step in enumerate(plan.steps):
        for instance in step.inputs():
            first = produced_at.get(instance)
            if first is None:
                if instance in ever_produced:
                    order_violations.append((index, str(instance)))
                else:
                    dangling.append(str(instance))
        for name in step.scalar_inputs():
            if name not in scalar_at and name in scalar_ever:
                order_violations.append((index, f"scalar {name}"))

        physical: Optional[ValueKey] = None
        if isinstance(step, SourceStep):
            op = step.op
            if isinstance(op, LoadOp):
                physical = term("load", op.output)
            elif isinstance(op, RandomOp):
                physical = term("random", op.rows, op.cols, op.seed)
            elif isinstance(op, FullOp):
                physical = term("full", op.rows, op.cols, op.value)
        elif isinstance(step, ExtendedStep):
            physical = read(step.source)
            if step.kind == "transpose":
                physical = _t(physical)
        elif isinstance(step, MatMulStep):
            physical = term("@", read(step.left), read(step.right))
        elif isinstance(step, CellwiseStep):
            physical = term("cw", step.op.op, read(step.left), read(step.right))
        elif isinstance(step, FusedCellwiseStep):
            # Replay the fused chain symbolically: the fused step's value is
            # *defined* as the composition of its original cellwise steps, so
            # fusing provably cannot invent a new value.  Intermediates live
            # only in this local environment -- like the kernel, nothing is
            # published.
            local: Dict[MatrixInstance, ValueKey] = {}
            for inner in step.chain:
                local[inner.output] = term(
                    "cw",
                    inner.op.op,
                    local.get(inner.left, read(inner.left)),
                    local.get(inner.right, read(inner.right)),
                )
            physical = local[step.chain[-1].output]
        elif isinstance(step, ScalarMatrixStep):
            physical = term(
                "sm", step.op.op, scalar_term(step.op.scalar), read(step.source)
            )
        elif isinstance(step, UnaryStep):
            physical = term("un", step.op.func, read(step.source))
        elif isinstance(step, RowAggStep):
            physical = term("ragg", step.op.kind, read(step.source))
        elif isinstance(step, AggregateStep):
            scalars.setdefault(
                step.op.output, term("agg", step.op.kind, read(step.source))
            )
            scalar_at.setdefault(step.op.output, index)
        elif isinstance(step, ScalarComputeStep):
            scalars.setdefault(step.op.output, _canon_expr(step.op.expr, scalars))
            scalar_at.setdefault(step.op.output, index)
        else:  # unknown step kind: opaque but deterministic
            physical = term("opaque", str(step))

        output = step.output_instance()
        if output is not None and physical is not None:
            define(index, output, physical)
            produced_at.setdefault(output, index)

    return ValueSummary(
        matrices=matrices,
        scalars=scalars,
        conflicts=tuple(conflicts),
        order_violations=tuple(order_violations),
        dangling=tuple(sorted(set(dangling))),
    )


@dataclasses.dataclass(frozen=True)
class Certificate:
    """A discharged equivalence proof for one optimizer pass (or pipeline)."""

    pass_name: str
    rewrites: int  # AppliedRewrite count the certificate covers
    obligations: Tuple[str, ...]  # every obligation checked -- all held
    outputs: int  # matrix outputs proven equivalent
    scalars: int  # scalar outputs proven equivalent

    def format_human(self) -> str:
        return (
            f"[certified] {self.pass_name}: {self.rewrites} rewrite(s), "
            f"{self.outputs} output(s) + {self.scalars} scalar(s) "
            f"equivalent under {len(self.obligations)} obligations"
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "rewrites": self.rewrites,
            "obligations": list(self.obligations),
            "outputs": self.outputs,
            "scalars": self.scalars,
        }


def certify(
    before: Plan,
    after: Plan,
    *,
    pass_name: str,
    rewrites: int = 0,
    analysis_before: Optional[PlanAnalysis] = None,
    analysis_after: Optional[PlanAnalysis] = None,
) -> Certificate:
    """Prove ``after`` computes what ``before`` computes, or raise.

    Raises :class:`~repro.errors.TranslationValidationError` naming every
    failed obligation; returns the :class:`Certificate` when all hold.
    """
    failures: List[str] = []
    summary_before = value_summary(before)
    summary_after = value_summary(after)

    if set(after.outputs) != set(before.outputs):
        failures.append(
            "outputs-preserved: output set changed "
            f"{sorted(before.outputs)} -> {sorted(after.outputs)}"
        )

    if summary_after.order_violations:
        index, subject = summary_after.order_violations[0]
        failures.append(
            f"dataflow-well-ordered: step {index} consumes {subject} "
            "before any producer has run"
        )
    introduced = set(summary_after.dangling) - set(summary_before.dangling)
    if introduced:
        failures.append(
            f"dataflow-well-ordered: rewrite introduced dangling inputs {sorted(introduced)}"
        )

    before_conflicts = {c.name for c in summary_before.conflicts}
    new_conflicts = [
        c for c in summary_after.conflicts if c.name not in before_conflicts
    ]
    if new_conflicts:
        conflict = new_conflicts[0]
        failures.append(
            f"no-conflicting-redefinition: step {conflict.step} redefines "
            f"{conflict.name!r} to a different value"
        )

    proven_outputs = 0
    for name in sorted(set(before.outputs) & set(after.outputs)):
        key_before = summary_before.matrices.get(before.outputs[name].name)
        key_after = summary_after.matrices.get(after.outputs[name].name)
        if key_before is None or key_after is None:
            failures.append(
                f"value-equivalence: output {name!r} has no symbolic value "
                f"({'before' if key_before is None else 'after'} the rewrite)"
            )
        elif key_before != key_after:
            failures.append(
                f"value-equivalence: output {name!r} changed value: "
                f"{key_before!r} -> {key_after!r}"
            )
        else:
            proven_outputs += 1

    proven_scalars = 0
    for name in before.program.scalar_outputs:
        key_before = summary_before.scalars.get(name)
        key_after = summary_after.scalars.get(name)
        if key_before != key_after:
            failures.append(
                f"scalar-equivalence: scalar output {name!r} changed value: "
                f"{key_before!r} -> {key_after!r}"
            )
        elif key_before is not None:
            proven_scalars += 1

    analysis_before = analysis_before or analyse_plan(before)
    analysis_after = analysis_after or analyse_plan(after)
    for name in sorted(set(before.outputs) & set(after.outputs)):
        inst_before, inst_after = before.outputs[name], after.outputs[name]
        shape_before = analysis_before.shape_of(inst_before)
        shape_after = analysis_after.shape_of(inst_after)
        if shape_before is not None and inst_before.transposed:
            shape_before = (shape_before[1], shape_before[0])
        if shape_after is not None and inst_after.transposed:
            shape_after = (shape_after[1], shape_after[0])
        if shape_before != shape_after:
            failures.append(
                f"shape-agreement: output {name!r} shape fact changed: "
                f"{shape_before} -> {shape_after}"
            )

    for step in after.steps:
        if not isinstance(step, FusedCellwiseStep):
            continue
        name = step.output.name
        key_before = summary_before.matrices.get(name)
        key_after = summary_after.matrices.get(name)
        if key_before is None or key_before != key_after:
            failures.append(
                f"fusion-chain-equivalence: fused step for {step.output} does "
                "not replay to the pre-rewrite value of its chain"
            )

    produced = {
        instance
        for step in after.steps
        if (instance := step.output_instance()) is not None
    }
    for pin in after.cache_pins:
        if pin not in produced:
            failures.append(
                f"pins-produced: cache pin {pin} has no producer step"
            )

    if failures:
        raise TranslationValidationError(
            f"rewrite by pass {pass_name!r} failed certification:\n  "
            + "\n  ".join(failures),
            pass_name=pass_name,
            obligations=tuple(failures),
        )
    return Certificate(
        pass_name=pass_name,
        rewrites=rewrites,
        obligations=OBLIGATIONS,
        outputs=proven_outputs,
        scalars=proven_scalars,
    )

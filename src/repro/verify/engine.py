"""Generic worklist fixpoint engine over the plan IR.

The engine knows nothing about matrices: a *problem* is a list of plan
steps, a lattice, and two callbacks -- ``reads(index, step)`` naming the
abstract cells a step consumes and ``transfer(index, step, env)`` mapping
the current environment to the cells it (re)defines.  The engine chaotically
iterates transfer functions until the environment stops changing, re-queuing
exactly the consumers of every changed cell.

Plans are DAGs step-by-step, but analyses may *summarise* SSA versions into
one cell per logical matrix (the NNZ analysis does, so loop-carried updates
feed back into their own inputs); that introduces genuine cycles, which is
why the engine applies the lattice's widening operator to any cell updated
more than ``widen_after`` times.  With widening every lattice here has
finite ascending chains, so termination is structural; a defensive pop
budget turns a broken transfer function into a hard error instead of a
hang.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Dict, FrozenSet, Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

from repro.core.plan import Step
from repro.errors import VerificationError
from repro.verify.lattice import Lattice

K = TypeVar("K", bound=Hashable)
T = TypeVar("T")

#: A transfer function: (step index, step, environment) -> cells it defines.
Transfer = Callable[[int, Step, Mapping[K, T]], Mapping[K, T]]
#: The read set of a step: which cells re-queue it when they change.
Reads = Callable[[int, Step], Iterable[K]]


@dataclasses.dataclass(frozen=True)
class FixpointResult(Generic[K, T]):
    """The stable environment plus convergence metadata."""

    values: Dict[K, T]
    iterations: int  # total worklist pops until stabilisation
    widened: FrozenSet[K]  # cells the engine had to widen

    def get(self, key: K, default: T) -> T:
        return self.values.get(key, default)


def solve(
    steps: Sequence[Step],
    lattice: Lattice[T],
    transfer: Transfer[K, T],
    reads: Reads[K],
    *,
    widen_after: int = 3,
) -> FixpointResult[K, T]:
    """Run the worklist to a fixpoint and return the stable environment.

    ``widen_after`` bounds how often a cell may change before updates to it
    are widened; raise it for precision on deeply unrolled programs, lower
    it for speed.  Raises :class:`~repro.errors.VerificationError` if the
    environment fails to stabilise within the defensive pop budget (only
    possible for a non-monotone transfer function).
    """
    consumers: Dict[K, list[int]] = {}
    for index, step in enumerate(steps):
        for key in reads(index, step):
            consumers.setdefault(key, []).append(index)

    env: Dict[K, T] = {}
    updates: Dict[K, int] = {}
    widened: set[K] = set()
    queued = [True] * len(steps)
    worklist: deque[int] = deque(range(len(steps)))
    budget = max(64, len(steps) * (widen_after + 4) * 8)
    pops = 0

    while worklist:
        pops += 1
        if pops > budget:
            raise VerificationError(
                f"fixpoint failed to converge after {pops - 1} iterations "
                f"over {len(steps)} steps (non-monotone transfer function?)"
            )
        index = worklist.popleft()
        queued[index] = False
        step = steps[index]
        for key, value in transfer(index, step, env).items():
            current = env.get(key, lattice.bottom())
            joined = lattice.join(current, value)
            count = updates.get(key, 0)
            if count >= widen_after:
                accelerated = lattice.widen(current, joined)
                if accelerated != joined:
                    widened.add(key)
                joined = accelerated
            if joined == current and key in env:
                continue
            env[key] = joined
            updates[key] = count + 1
            for consumer in consumers.get(key, ()):
                if not queued[consumer]:
                    queued[consumer] = True
                    worklist.append(consumer)

    return FixpointResult(values=env, iterations=pops, widened=frozenset(widened))

"""Static happens-before hazard detection over the stage graph.

The runtime's :class:`~repro.runtime.resources.ResourceManager` gives every
block instance publish/consume/release semantics: a kernel *publishes* its
output once, *consumes* its inputs, and the manager releases an instance
when its refcount drains.  Those events are implicit in the plan -- each
step's output is its publish, its inputs its consumes -- so the full event
schedule can be checked **before** execution against the ordering the
:class:`~repro.runtime.graph.StageGraph` actually guarantees:

* within a node, steps run serially in ascending plan order;
* across nodes, only the transitive closure of the node ``deps`` edges
  orders anything.  Two nodes without a path between them may run
  concurrently on pool threads.

A *read-before-publish* hazard is a step consuming an instance (or driver
scalar) that some step produces -- but no producer is ordered before the
consumer.  This is exactly the PR-5 bug class: a missing ordering edge let
a pool thread touch state before its producer's publish was visible.  A
*double-publish* hazard is two steps publishing conflicting values for the
same logical matrix -- the runtime would raise ``produced twice`` at
whichever publish loses the race.  Re-publications of the *same* symbolic
value (a duplicated broadcast, a transpose round-trip) are redundancy, not
a race for the value, and are left to the DM2xx inefficiency rules.

Inputs with no producer anywhere in the plan are skipped here: dangling
dataflow is DM107's finding, not an ordering defect.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.plan import MatrixInstance
from repro.runtime.graph import StageGraph
from repro.verify.certify import value_summary

#: Hazard kinds reported by :func:`find_hazards`.
READ_BEFORE_PUBLISH = "read-before-publish"
DOUBLE_PUBLISH = "double-publish"


@dataclasses.dataclass(frozen=True)
class Hazard:
    """One ordering defect on the publish/consume event schedule."""

    kind: str  # READ_BEFORE_PUBLISH | DOUBLE_PUBLISH
    step: int  # plan index of the defective consumer/publisher
    subject: str  # the instance or scalar at risk
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] step {self.step}: {self.subject} -- {self.detail}"


def ancestor_masks(graph: StageGraph) -> List[int]:
    """Bitmask of transitive ancestor node indices, per node.

    Node indices are a valid topological order (a :class:`StageGraph`
    construction invariant), so one forward sweep suffices.
    """
    masks = [0] * len(graph.nodes)
    for node in graph.nodes:
        mask = 0
        for dep in node.deps:
            mask |= masks[dep] | (1 << dep)
        masks[node.index] = mask
    return masks


def happens_before(
    graph: StageGraph, producer: int, consumer: int, masks: List[int]
) -> bool:
    """Does the scheduler guarantee step ``producer`` completes -- publish
    visible -- before step ``consumer`` starts?"""
    node_p = graph.node_of_step.get(producer)
    node_c = graph.node_of_step.get(consumer)
    if node_p is None or node_c is None:
        return False
    if node_p == node_c:  # same island: serial, ascending plan order
        return producer < consumer
    return bool(masks[node_c] & (1 << node_p))


def find_hazards(graph: StageGraph) -> List[Hazard]:
    """All read-before-publish and double-publish hazards in the graph."""
    plan = graph.plan
    masks = ancestor_masks(graph)
    publishers: Dict[MatrixInstance, List[int]] = {}
    scalar_publishers: Dict[str, List[int]] = {}
    for index, step in enumerate(plan.steps):
        output = step.output_instance()
        if output is not None:
            publishers.setdefault(output, []).append(index)
        scalar = step.scalar_output()
        if scalar is not None:
            scalar_publishers.setdefault(scalar, []).append(index)

    hazards: List[Hazard] = []

    def check_read(consumer: int, producers: List[int], subject: str) -> None:
        if any(happens_before(graph, p, consumer, masks) for p in producers):
            return
        hazards.append(
            Hazard(
                kind=READ_BEFORE_PUBLISH,
                step=consumer,
                subject=subject,
                detail=(
                    f"produced at step(s) {producers} but no ordering edge "
                    f"reaches step {consumer}; a pool thread may read the "
                    "instance before its publish is visible"
                ),
            )
        )

    for index, step in enumerate(plan.steps):
        for instance in step.inputs():
            producers = publishers.get(instance)
            if producers:  # unproduced inputs are DM107's finding
                check_read(index, producers, str(instance))
        for name in step.scalar_inputs():
            producers = scalar_publishers.get(name)
            if producers:  # program-level scalars need no step
                check_read(index, producers, f"scalar {name!r}")

    # Double publish: conflicting symbolic values for one logical name.
    # value_summary keeps the first definition and records every later,
    # *different* one -- identical re-publications (duplicated broadcast,
    # transpose round-trip) produce no conflict and stay DM2xx redundancy.
    summary = value_summary(plan)
    for conflict in summary.conflicts:
        others: Tuple[int, ...] = tuple(
            i
            for instance, steps in publishers.items()
            if instance.name == conflict.name
            for i in steps
            if i != conflict.step
        )
        hazards.append(
            Hazard(
                kind=DOUBLE_PUBLISH,
                step=conflict.step,
                subject=conflict.name,
                detail=(
                    f"also published by step(s) {list(others)} with a "
                    "different symbolic value; whichever publish loses the "
                    "race determines the result"
                ),
            )
        )
    return hazards

"""Abstract domains for the :mod:`repro.verify` fixpoint engine.

Every analysis in the framework runs over one of four lattices:

* :class:`FlatLattice` -- ``bottom < {concrete facts} < top``; used for
  shapes (a ``(rows, cols)`` pair) and partition schemes, where two
  disagreeing facts mean the analysis genuinely does not know.
* :class:`IntervalLattice` -- integer ``[lo, hi]`` ranges with *widening*:
  NNZ counts of loop-carried matrices grow each iteration, and after
  ``widen_after`` observations the engine jumps the unstable bound to the
  extreme so iterative programs (PageRank, GNMF updates) converge in a
  bounded number of passes instead of one per unrolled iteration.
* :class:`PowersetLattice` -- finite sets under union; used for
  block-instance liveness.

All three expose the same four-method surface (:meth:`Lattice.bottom`,
:meth:`Lattice.join`, :meth:`Lattice.leq`, :meth:`Lattice.widen`) so the
worklist engine is generic over the domain.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import FrozenSet, Generic, Hashable, Optional, TypeVar

T = TypeVar("T")
E = TypeVar("E", bound=Hashable)


class _Top:
    """Singleton 'unknown' element shared by the flat lattices."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


#: The top element: the analysis has seen conflicting facts.
TOP = _Top()


class Lattice(Generic[T], abc.ABC):
    """A join-semilattice with an explicit widening operator."""

    @abc.abstractmethod
    def bottom(self) -> T:
        """The least element (no information yet)."""

    @abc.abstractmethod
    def join(self, a: T, b: T) -> T:
        """Least upper bound of two elements."""

    def leq(self, a: T, b: T) -> bool:
        """Partial order: ``a <= b`` iff joining adds nothing to ``b``."""
        return bool(self.join(a, b) == b)

    def widen(self, old: T, new: T) -> T:
        """Accelerated join; defaults to plain join for finite domains."""
        return self.join(old, new)


class FlatLattice(Lattice[object]):
    """``None`` (bottom) < any concrete value < :data:`TOP`."""

    def bottom(self) -> object:
        return None

    def join(self, a: object, b: object) -> object:
        if a is None:
            return b
        if b is None:
            return a
        if a is TOP or b is TOP:
            return TOP
        return a if a == b else TOP


@dataclasses.dataclass(frozen=True)
class Interval:
    """Integer range ``[lo, hi]``; ``hi=None`` means unbounded above."""

    lo: int
    hi: Optional[int]

    def clamp(self, lo: int, hi: int) -> "Interval":
        """Intersect with ``[lo, hi]`` (e.g. ``[0, rows*cols]`` for NNZ)."""
        new_lo = max(self.lo, lo)
        new_hi = hi if self.hi is None else min(self.hi, hi)
        return Interval(min(new_lo, new_hi), new_hi)

    def __str__(self) -> str:
        upper = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {upper}]"


class IntervalLattice(Lattice[Optional[Interval]]):
    """Intervals ordered by inclusion; bottom is ``None`` (no range yet).

    :meth:`widen` is the classic jump-to-extreme operator: a lower bound
    still sinking goes to 0, an upper bound still climbing goes to
    unbounded.  Consumers clamp the result back to the structural range
    (``[0, rows*cols]``) which stays sound and keeps the bound useful.
    """

    def bottom(self) -> Optional[Interval]:
        return None

    def join(self, a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
        if a is None:
            return b
        if b is None:
            return a
        hi: Optional[int] = None
        if a.hi is not None and b.hi is not None:
            hi = max(a.hi, b.hi)
        return Interval(min(a.lo, b.lo), hi)

    def widen(self, old: Optional[Interval], new: Optional[Interval]) -> Optional[Interval]:
        joined = self.join(old, new)
        if old is None or joined is None or joined == old:
            return joined
        lo = old.lo if joined.lo >= old.lo else 0
        grew_hi = old.hi is not None and (joined.hi is None or joined.hi > old.hi)
        hi = None if grew_hi else joined.hi
        return Interval(lo, hi)


class PowersetLattice(Lattice[FrozenSet[E]]):
    """Finite sets under union (block-instance liveness)."""

    def bottom(self) -> FrozenSet[E]:
        return frozenset()

    def join(self, a: FrozenSet[E], b: FrozenSet[E]) -> FrozenSet[E]:
        return a | b

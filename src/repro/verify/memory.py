"""Static per-worker peak-memory prediction.

Mirrors, ahead of execution, exactly what the local engines' memory
trackers charge at run time:

* **Transients** -- only the three charging kernel families register block
  grids with a worker's tracker for the duration of the operation: matmul
  (both operand grids + the result, plus accumulation partials), cellwise
  (both operands + result) and scalar-matrix (operand + result, with the
  zero-fill densification ``add``/``subtract`` performs on sparse
  operands).  Sources, extended operators, unary maps, row/col aggregations
  and driver aggregates move or create blocks without tracker charges, so
  they predict zero -- matching the meter, not an idealised cost model.
* **Pins** -- every ``plan.cache_pins`` instance is charged to the
  BlockCache when its producer publishes and stays resident until the run
  ends, so the prediction walks the plan with a liveness-style prefix: a
  transient-heavy step *before* a pin's producer never pays for that pin.

Sizes follow the paper's Equation-2 model at the estimator's worst-case
sparsity: blocks store sparse only below
:data:`~repro.blocks.conversion.DEFAULT_SPARSE_THRESHOLD` (8 bytes per
non-zero, so at most ``2.4`` bytes per element) and dense at 4 bytes per
element above it, so the per-matrix bound takes the sparse model below the
threshold and ``max(dense, sparse-at-threshold)`` above -- never the
8-bytes-per-element sparse formula at a density the engine would refuse to
store sparse.  Per-worker shares assume Equation 2's
uniform distribution of non-zeros over blocks (the paper's own modelling
assumption): a BROADCAST replica charges its full size, a 1-D layout
``ceil(block_rows / K)`` block rows (resp. columns).

Under concurrent scheduling up to ``C`` stage-graph nodes run at once, so
the concurrent bound adds the ``C`` largest per-node transients -- a
superset of any antichain the scheduler can actually dispatch -- on top of
the full pin set.  With ``max_concurrent_stages=1`` the serial bound
applies and is tight enough to validate against observed tracker peaks.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.blocks.conversion import DEFAULT_SPARSE_THRESHOLD
from repro.blocks.memory import (
    choose_block_size,
    dense_block_model_bytes,
    matrix_model_bytes,
)
from repro.core.estimator import SizeEstimator
from repro.core.plan import (
    CellwiseStep,
    FusedCellwiseStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    ScalarMatrixStep,
    Step,
)
from repro.errors import PlanError
from repro.matrix.schemes import Scheme
from repro.runtime.graph import StageGraph
from repro.verify.analysis import PlanAnalysis, analyse_plan


@dataclasses.dataclass(frozen=True)
class StepFootprint:
    """One step's predicted tracker charge while it runs."""

    index: int
    step: str
    transient_bytes: int
    pinned_bytes: int  # pin prefix resident when this step runs


@dataclasses.dataclass(frozen=True)
class MemoryPrediction:
    """A sound per-worker high-water-mark bound for one plan."""

    peak_bytes: int  # the bound for the requested concurrency
    serial_peak_bytes: int  # max over steps of pins-so-far + transient
    concurrent_peak_bytes: int  # all pins + top-C node transients
    pinned_bytes: int  # full cache-pin working set per worker
    transient_peak_bytes: int  # largest single-step transient
    live_peak_bytes: int  # liveness high water of all resident instances
    block_size: int
    concurrency: int
    footprints: Tuple[StepFootprint, ...]

    def to_json_dict(self) -> Dict[str, object]:
        heaviest = sorted(
            self.footprints, key=lambda f: -f.transient_bytes
        )[:8]
        return {
            "peak_bytes": self.peak_bytes,
            "serial_peak_bytes": self.serial_peak_bytes,
            "concurrent_peak_bytes": self.concurrent_peak_bytes,
            "pinned_bytes": self.pinned_bytes,
            "transient_peak_bytes": self.transient_peak_bytes,
            "live_peak_bytes": self.live_peak_bytes,
            "block_size": self.block_size,
            "concurrency": self.concurrency,
            "heaviest_steps": [
                {
                    "plan_index": f.index,
                    "step": f.step,
                    "transient_bytes": f.transient_bytes,
                    "pinned_bytes": f.pinned_bytes,
                }
                for f in heaviest
                if f.transient_bytes
            ],
        }


def _model_bytes(rows: int, cols: int, sparsity: float, block_size: int) -> int:
    """Equation-2 bound for one whole matrix under auto storage choice.

    The engine picks storage per block by *actual* density against
    ``DEFAULT_SPARSE_THRESHOLD``; the estimator only over-approximates
    density.  Below the threshold every block stays sparse and the sparse
    formula is monotone in density, so it bounds the charge.  At or above,
    a block is either dense (4 bytes/element) or sparse at a density
    *under* the threshold (at most ``4N + 2.4MN`` per block), so the bound
    is ``max(dense, sparse-at-threshold)`` -- not the sparse formula at the
    estimated density, which would double-count dense matrices at 8
    bytes/element."""
    if rows <= 0 or cols <= 0:
        return 0
    if sparsity < DEFAULT_SPARSE_THRESHOLD:
        return matrix_model_bytes(rows, cols, sparsity, block_size, sparse=True)
    dense = matrix_model_bytes(rows, cols, sparsity, block_size, sparse=False)
    sparse_cap = matrix_model_bytes(
        rows, cols, DEFAULT_SPARSE_THRESHOLD, block_size, sparse=True
    )
    return max(dense, sparse_cap)


def _share_bytes(
    rows: int,
    cols: int,
    sparsity: float,
    scheme: Scheme,
    block_size: int,
    num_workers: int,
) -> int:
    """Per-worker share of a matrix under its scheme (Equation-2 model)."""
    total = _model_bytes(rows, cols, sparsity, block_size)
    if rows <= 0 or cols <= 0 or num_workers <= 1:
        return total
    if scheme is Scheme.ROW:
        block_rows = math.ceil(rows / block_size)
        owned = min(rows, math.ceil(block_rows / num_workers) * block_size)
        return min(total, _model_bytes(owned, cols, sparsity, block_size))
    if scheme is Scheme.COL:
        block_cols = math.ceil(cols / block_size)
        owned = min(cols, math.ceil(block_cols / num_workers) * block_size)
        return min(total, _model_bytes(rows, owned, sparsity, block_size))
    return total  # BROADCAST (or unknown): a full replica everywhere


class _Sizer:
    """Caches per-instance share computations for one prediction run."""

    def __init__(
        self,
        plan: Plan,
        analysis: PlanAnalysis,
        block_size: int,
        num_workers: int,
        estimation_mode: str,
    ) -> None:
        self._plan = plan
        self._analysis = analysis
        self._block_size = block_size
        self._num_workers = num_workers
        self._estimator = SizeEstimator(plan.program, estimation_mode)
        self._cache: Dict[Tuple[MatrixInstance, bool], int] = {}

    def shape(self, instance: MatrixInstance) -> Tuple[int, int]:
        fact = self._analysis.shape_of(instance)
        if fact is not None:
            return fact
        declared = self._plan.program.dims.get(instance.name)
        if declared is None:
            return (0, 0)
        rows, cols = declared
        return (cols, rows) if instance.transposed else (rows, cols)

    def sparsity(self, instance: MatrixInstance) -> float:
        try:
            return self._estimator.sparsity(instance.name)
        except PlanError:
            return 1.0  # unknown matrix: assume dense

    def share(self, instance: MatrixInstance, *, dense: bool = False) -> int:
        key = (instance, dense)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rows, cols = self.shape(instance)
        sparsity = 1.0 if dense else self.sparsity(instance)
        nbytes = _share_bytes(
            rows, cols, sparsity, instance.scheme,
            self._block_size, self._num_workers,
        )
        self._cache[key] = nbytes
        return nbytes

    def full(self, instance: MatrixInstance, *, dense: bool = False) -> int:
        rows, cols = self.shape(instance)
        sparsity = 1.0 if dense else self.sparsity(instance)
        return _model_bytes(rows, cols, sparsity, self._block_size)


def _scalar_matrix_densifies(step: ScalarMatrixStep) -> bool:
    """Does ``add``/``subtract`` zero-fill sparse operands?  A scalar read
    from the driver at run time is conservatively assumed non-zero."""
    if step.op.op not in ("add", "subtract"):
        return False
    scalar = step.op.scalar
    return isinstance(scalar, str) or scalar != 0


def _transient_bytes(
    step: Step,
    sizer: _Sizer,
    block_size: int,
    threads_per_worker: int,
    inplace: bool,
    strassen: bool = False,
    strassen_min_size: int = 128,
) -> int:
    """Tracker bytes this step holds on one worker while it runs."""
    if isinstance(step, MatMulStep):
        operands = sizer.share(step.left) + sizer.share(step.right)
        if step.strategy == "cpmm":
            # Every worker materialises a full dense partial of C before
            # the aggregation shuffle merges strips on the consumers.
            result = sizer.full(step.output, dense=True)
        else:
            result = sizer.share(step.output, dense=True)
        inner = sizer.shape(step.left)[1]
        inner_blocks = max(1, math.ceil(inner / block_size))
        # Every partial is one dense result block held for one inner fold,
        # so all of them together weigh ``result * inner_blocks``; the
        # In-Place engine keeps at most one in flight per pool thread.
        all_partials = result * inner_blocks
        if inplace:
            in_flight = threads_per_worker * dense_block_model_bytes(
                block_size, block_size
            )
            partials = min(in_flight, all_partials)
        else:  # the Buffer strategy holds every partial until the merge
            partials = all_partials
        extra = 0
        if strassen:
            # Strassen's recursion holds padded operand copies plus seven
            # half-size products per in-flight block product -- physical
            # temporaries beyond the tracker's model, charged here so the
            # admission bound stays sound when the kernel is enabled.
            from repro.core.strategies import choose_local_matmul

            chosen = choose_local_matmul(
                block_size,
                block_size,
                block_size,
                strassen=True,
                crossover=strassen_min_size,
            )
            if chosen.name == "strassen":
                extra = threads_per_worker * chosen.temp_bytes
        return operands + result + partials + extra
    if isinstance(step, CellwiseStep):
        return (
            sizer.share(step.left)
            + sizer.share(step.right)
            + sizer.share(step.output)
        )
    if isinstance(step, FusedCellwiseStep):
        # The fused kernel registers every external operand grid and the
        # final result; chain intermediates are per-block temporaries that
        # never reach the tracker.
        return sum(
            sizer.share(instance) for instance in step.inputs()
        ) + sizer.share(step.output)
    if isinstance(step, ScalarMatrixStep):
        if _scalar_matrix_densifies(step):
            # Zero-fill: the registered operand grid carries its sparse
            # blocks plus explicit dense zero blocks for absent keys.
            operand = sizer.share(step.source) + sizer.share(step.source, dense=True)
            return operand + sizer.share(step.output, dense=True)
        return sizer.share(step.source) + sizer.share(step.output)
    # Sources, extended operators, unary maps, row/col aggregations and
    # driver aggregates never register grids with the trackers.
    return 0


def predict_peak_memory(
    plan: Plan,
    *,
    num_workers: int,
    threads_per_worker: int = 8,
    block_size: Optional[int] = None,
    inplace: bool = True,
    max_concurrent_stages: Optional[int] = None,
    estimation_mode: str = "worst",
    analysis: Optional[PlanAnalysis] = None,
    graph: Optional[StageGraph] = None,
    strassen: bool = False,
    strassen_min_size: int = 128,
) -> MemoryPrediction:
    """Predict the per-worker tracker high-water mark for a plan.

    Defaults mirror the executor: automatic Equation-3 block size, the
    In-Place accumulation engine, and the scheduler's default stage
    concurrency.  Pass ``max_concurrent_stages=1`` for the serial bound.
    """
    analysis = analysis or analyse_plan(plan)
    graph = graph or StageGraph.from_plan(plan)
    if block_size is None:
        rows, cols = max(
            plan.program.dims.values(), key=lambda shape: shape[0] * shape[1]
        )
        block_size = choose_block_size(rows, cols, num_workers, threads_per_worker)
    sizer = _Sizer(plan, analysis, block_size, num_workers, estimation_mode)

    transients = [
        _transient_bytes(
            step, sizer, block_size, threads_per_worker, inplace,
            strassen=strassen, strassen_min_size=strassen_min_size,
        )
        for step in plan.steps
    ]

    # Pins charge at their producer's publish and stay resident to the end.
    producer_of: Dict[MatrixInstance, int] = {}
    for index, step in enumerate(plan.steps):
        output = step.output_instance()
        if output is not None:
            producer_of.setdefault(output, index)
    admitted_at: Dict[int, int] = {}
    for pin in plan.cache_pins:
        index = producer_of.get(pin, 0)
        admitted_at[index] = admitted_at.get(index, 0) + sizer.share(pin)
    pin_prefix: List[int] = []
    running = 0
    for index in range(len(plan.steps)):
        running += admitted_at.get(index, 0)
        pin_prefix.append(running)
    pinned_total = running

    footprints = tuple(
        StepFootprint(
            index=index,
            step=str(step),
            transient_bytes=transients[index],
            pinned_bytes=pin_prefix[index],
        )
        for index, step in enumerate(plan.steps)
    )
    serial_peak = max(
        (pin_prefix[i] + transients[i] for i in range(len(plan.steps))),
        default=0,
    )
    serial_peak = max(serial_peak, pinned_total)
    transient_peak = max(transients, default=0)

    node_transients = sorted(
        (
            max((transients[i] for i in node.steps), default=0)
            for node in graph.nodes
        ),
        reverse=True,
    )
    from repro.runtime.scheduler import DEFAULT_MAX_CONCURRENT_STAGES

    concurrency = max(
        1, min(max_concurrent_stages or DEFAULT_MAX_CONCURRENT_STAGES,
               max(1, len(graph.nodes))),
    )
    concurrent_peak = pinned_total + sum(node_transients[:concurrency])

    # Liveness high water: every produced instance resident at some step,
    # under refcounting -- an *informational* floor-style curve; tracker
    # charges are the two bounds above.
    share_cache: Dict[MatrixInstance, int] = {}

    def resident(instance: MatrixInstance) -> int:
        found = share_cache.get(instance)
        if found is None:
            found = sizer.share(instance)
            share_cache[instance] = found
        return found

    live_peak = 0
    for live in analysis.live_after:
        live_peak = max(live_peak, sum(resident(i) for i in live))

    return MemoryPrediction(
        peak_bytes=serial_peak if concurrency == 1 else concurrent_peak,
        serial_peak_bytes=serial_peak,
        concurrent_peak_bytes=concurrent_peak,
        pinned_bytes=pinned_total,
        transient_peak_bytes=transient_peak,
        live_peak_bytes=live_peak,
        block_size=block_size,
        concurrency=concurrency,
        footprints=footprints,
    )

"""The aggregate verification entry point: one call, every client.

:func:`verify_plan` runs the fixpoint analyses once and feeds all three
framework clients from the shared facts: the hazard detector, the memory
predictor, and the translation-validation audit trail the optimizer left
on ``plan.certificates``.  The result renders to the CLI's human listing
or ``--format json`` document.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

from repro.core.plan import Plan
from repro.runtime.graph import StageGraph
from repro.verify.analysis import PlanAnalysis, analyse_plan
from repro.verify.certify import Certificate
from repro.verify.hazards import Hazard, find_hazards
from repro.verify.memory import MemoryPrediction, predict_peak_memory


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """Everything static verification can say about one plan."""

    target: str
    num_steps: int
    num_nodes: int
    hazards: Tuple[Hazard, ...]
    certificates: Tuple[Certificate, ...]
    memory: MemoryPrediction
    iterations: int  # fixpoint engine pops across all analyses
    widened: Tuple[str, ...]  # base names that needed interval widening

    @property
    def has_errors(self) -> bool:
        """Hazards are errors; certification failures raise before a
        report exists, so they never appear here."""
        return bool(self.hazards)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "num_steps": self.num_steps,
            "num_nodes": self.num_nodes,
            "ok": not self.has_errors,
            "hazards": [
                {
                    "kind": h.kind,
                    "step": h.step,
                    "subject": h.subject,
                    "detail": h.detail,
                }
                for h in self.hazards
            ],
            "certificates": [c.to_json_dict() for c in self.certificates],
            "memory": self.memory.to_json_dict(),
            "fixpoint": {
                "iterations": self.iterations,
                "widened": list(self.widened),
            },
        }

    def to_json_string(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2)

    def format_human(self) -> str:
        lines = [
            f"verify {self.target}: {self.num_steps} steps, "
            f"{self.num_nodes} stage-graph nodes, "
            f"{self.iterations} fixpoint iterations"
            + (f" (widened: {', '.join(self.widened)})" if self.widened else "")
        ]
        if self.certificates:
            for certificate in self.certificates:
                lines.append(certificate.format_human())
        else:
            lines.append("[certified] no optimizer rewrites to validate")
        memory = self.memory
        lines.append(
            f"[memory] predicted per-worker peak "
            f"{memory.peak_bytes / 1e6:.2f} MB "
            f"(pins {memory.pinned_bytes / 1e6:.2f} MB + transients; "
            f"serial bound {memory.serial_peak_bytes / 1e6:.2f} MB, "
            f"concurrency {memory.concurrency})"
        )
        if self.hazards:
            for hazard in self.hazards:
                lines.append(f"error: {hazard}")
            lines.append(f"{len(self.hazards)} hazard(s) found")
        else:
            lines.append("[hazards] happens-before covers every publish/consume pair")
        return "\n".join(lines)


def verify_plan(
    plan: Plan,
    *,
    num_workers: int,
    threads_per_worker: int = 8,
    block_size: Optional[int] = None,
    inplace: bool = True,
    max_concurrent_stages: Optional[int] = None,
    estimation_mode: str = "worst",
    target: str = "plan",
    analysis: Optional[PlanAnalysis] = None,
) -> VerificationReport:
    """Run the full static verification suite over one (staged) plan."""
    analysis = analysis or analyse_plan(plan)
    graph = StageGraph.from_plan(plan)
    hazards = tuple(find_hazards(graph))
    memory = predict_peak_memory(
        plan,
        num_workers=num_workers,
        threads_per_worker=threads_per_worker,
        block_size=block_size,
        inplace=inplace,
        max_concurrent_stages=max_concurrent_stages,
        estimation_mode=estimation_mode,
        analysis=analysis,
        graph=graph,
    )
    certificates = tuple(
        c for c in plan.certificates if isinstance(c, Certificate)
    )
    return VerificationReport(
        target=target,
        num_steps=len(plan.steps),
        num_nodes=len(graph.nodes),
        hazards=hazards,
        certificates=certificates,
        memory=memory,
        iterations=analysis.iterations,
        widened=tuple(sorted(analysis.widened)),
    )

"""Tests for the R/local, ScaLAPACK and SciDB comparators."""

import numpy as np
import pytest

from repro.baselines.rlocal import run_local
from repro.baselines.scalapack import process_grid, run_scalapack_matmul
from repro.baselines.scidb import run_scidb_matmul
from repro.errors import ExecutionError, ShapeError
from repro.lang.program import ProgramBuilder
from tests.conftest import random_sparse


class TestLocalBaseline:
    def test_runs_gnmf(self, rng):
        from repro.datasets import sparse_random
        from repro.programs import build_gnmf_program

        program = build_gnmf_program((40, 30), 0.2, factors=4, iterations=2)
        data = sparse_random(40, 30, 0.2, seed=1, ensure_coverage=True)
        result = run_local(program, {"V": data})
        w = result.matrices[program.bindings["W"]]
        h = result.matrices[program.bindings["H"]]
        # multiplicative updates keep factors non-negative
        assert (w >= 0).all() and (h >= 0).all()

    def test_transposed_operands(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (6, 4))
        pb.output(pb.assign("B", a.T @ a))
        array = rng.random((6, 4))
        result = run_local(pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["B"], array.T @ array)

    def test_scalar_flow(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        s = pb.scalar("s", (a * a).sum())
        pb.scalar_output(s)
        pb.output(pb.assign("B", a * (s / 2.0)))
        array = rng.random((4, 4))
        result = run_local(pb.build(), {"A": array})
        assert result.scalars["s"] == pytest.approx((array * array).sum())

    def test_flops_counted(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 10))
        pb.output(pb.assign("B", a @ a))
        result = run_local(pb.build(), {"A": rng.random((10, 10))})
        assert result.flops == 2 * 10 * 10 * 10
        assert result.simulated_seconds > 0

    def test_sparse_flop_discount(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (20, 20), sparsity=0.1)
        pb.output(pb.assign("B", a @ a))
        sparse = random_sparse(rng, 20, 20, 0.1)
        dense = rng.random((20, 20))
        sparse_flops = run_local(pb.build(), {"A": sparse}).flops
        dense_flops = run_local(pb.build(), {"A": dense}).flops
        assert sparse_flops < dense_flops

    def test_missing_input(self):
        pb = ProgramBuilder()
        pb.output(pb.load("A", (4, 4)))
        with pytest.raises(ExecutionError):
            run_local(pb.build(), {})


class TestScaLAPACK:
    def test_product_correct(self, rng):
        a, b = rng.random((20, 16)), rng.random((16, 12))
        result = run_scalapack_matmul(a, b, num_processes=8)
        np.testing.assert_allclose(result.product, a @ b)

    def test_dense_insensitive_to_sparsity(self, rng):
        """The Table 4 effect: sparse costs the same as dense."""
        dense = rng.random((64, 64))
        sparse = random_sparse(rng, 64, 64, 0.01)
        t_dense = run_scalapack_matmul(dense, dense, 8).simulated_seconds
        t_sparse = run_scalapack_matmul(sparse, sparse, 8).simulated_seconds
        assert t_sparse == pytest.approx(t_dense, rel=0.01)

    def test_process_grid_near_square(self):
        assert process_grid(64) == (8, 8)
        assert process_grid(8) == (2, 4)
        assert process_grid(7) == (1, 7)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            run_scalapack_matmul(rng.random((4, 5)), rng.random((4, 5)), 4)

    def test_more_processes_less_compute_time(self, rng):
        # Large enough that compute dominates the panel traffic.
        a = rng.random((512, 512))
        few = run_scalapack_matmul(a, a, 4).simulated_seconds
        many = run_scalapack_matmul(a, a, 64).simulated_seconds
        assert many < few


class TestSciDB:
    def test_product_correct(self, rng):
        a, b = rng.random((16, 12)), rng.random((12, 8))
        result = run_scidb_matmul(a, b, 8)
        np.testing.assert_allclose(result.product, a @ b)

    def test_slower_than_scalapack(self, rng):
        """Section 6.6: SciDB pays redistribution plus system overhead."""
        a = rng.random((64, 64))
        core = run_scalapack_matmul(a, a, 8).simulated_seconds
        scidb = run_scidb_matmul(a, a, 8).simulated_seconds
        assert scidb > 3 * core

    def test_overhead_factor_scales(self, rng):
        a = rng.random((32, 32))
        low = run_scidb_matmul(a, a, 8, system_overhead=1.0).simulated_seconds
        high = run_scidb_matmul(a, a, 8, system_overhead=9.0).simulated_seconds
        assert high > low

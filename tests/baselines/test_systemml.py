"""Tests for the SystemML-S baseline executor."""

import numpy as np
import pytest

from repro.baselines.systemml import SystemMLSExecutor
from repro.config import ClusterConfig
from repro.core.estimator import SizeEstimator
from repro.errors import ExecutionError
from repro.lang.program import MatMulOp, ProgramBuilder
from repro.rdd.context import ClusterContext


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1, block_size=8))


class TestStrategyChoice:
    def test_costs_are_dependency_blind(self, ctx):
        """Even a perfectly-laid-out input is charged a repartition."""
        pb = ProgramBuilder()
        a = pb.load("A", (100, 100), sparsity=1.0)
        b = pb.load("B", (100, 4), sparsity=1.0)
        pb.output(pb.assign("C", a @ b))
        program = pb.build()
        executor = SystemMLSExecutor(ctx, 8)
        op = next(op for op in program.ops if isinstance(op, MatMulOp))
        strategy = executor.choose_strategy(op, SizeEstimator(program))
        # RMM2 broadcasts the small B: N|B| + |A| beats broadcasting A.
        assert strategy.name == "rmm2"

    def test_prefers_cheapest_broadcast_side(self, ctx):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 100), sparsity=1.0)
        b = pb.load("B", (100, 100), sparsity=1.0)
        pb.output(pb.assign("C", a @ b))
        program = pb.build()
        op = next(op for op in program.ops if isinstance(op, MatMulOp))
        strategy = SystemMLSExecutor(ctx, 8).choose_strategy(op, SizeEstimator(program))
        assert strategy.name == "rmm1"  # broadcast the small A


class TestExecution:
    def test_correctness_gnmf(self, ctx):
        from repro.baselines.rlocal import run_local
        from repro.datasets import sparse_random
        from repro.programs import build_gnmf_program

        program = build_gnmf_program((48, 32), 0.2, factors=4, iterations=2)
        data = sparse_random(48, 32, 0.2, seed=1, ensure_coverage=True)
        result = SystemMLSExecutor(ctx, 8).execute(program, {"V": data})
        reference = run_local(program, {"V": data})
        for name in program.outputs:
            np.testing.assert_allclose(
                result.matrices[name], reference.matrices[name], atol=1e-8
            )

    def test_every_use_pays_even_when_aligned(self, ctx, rng):
        """The defining SystemML-S behaviour: a matrix already in the right
        scheme is still repartitioned (hash-partitioned cache)."""
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        b = pb.load("B", (32, 32))
        c = pb.assign("C", a + b)
        pb.output(pb.assign("D", c + a))  # same schemes again
        result = SystemMLSExecutor(ctx, 8).execute(
            pb.build(), {"A": rng.random((32, 32)), "B": rng.random((32, 32))}
        )
        # DMac's plan for this program is completely communication-free.
        assert result.comm_bytes > 0

    def test_transposed_use_also_pays(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        b = pb.load("B", (32, 32))
        pb.output(pb.assign("C", a.T + b))
        result = SystemMLSExecutor(ctx, 8).execute(
            pb.build(), {"A": rng.random((32, 32)), "B": rng.random((32, 32))}
        )
        assert result.comm_bytes > 0

    def test_repeated_broadcasts_not_cached(self, ctx, rng):
        """Section 6.4 (CF): 'SystemML-S needs to broadcast matrix R twice'."""
        pb = ProgramBuilder()
        r = pb.load("R", (8, 64))
        x = pb.assign("X", r @ r.T)  # small result
        pb.output(pb.assign("Y", x @ r))
        result = SystemMLSExecutor(ctx, 8).execute(pb.build(), {"R": rng.random((8, 64))})
        broadcasts = result.comm_bytes
        assert broadcasts > 0

    def test_scalars_supported(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        s = pb.scalar("s", a.sum())
        pb.scalar_output(s)
        pb.output(pb.assign("B", a * s))
        array = rng.random((8, 8))
        result = SystemMLSExecutor(ctx, 8).execute(pb.build(), {"A": array})
        assert result.scalars["s"] == pytest.approx(array.sum())

    def test_missing_input_rejected(self, ctx):
        pb = ProgramBuilder()
        pb.output(pb.load("A", (4, 4)))
        with pytest.raises(ExecutionError):
            SystemMLSExecutor(ctx, 8).execute(pb.build(), {})

    def test_oblivious_repartition_from_broadcast_copy(self, ctx, rng):
        """After a broadcast, a later 1-D requirement still re-shuffles from
        one canonical replica (no double counting of replicas)."""
        pb = ProgramBuilder()
        small = pb.load("S", (4, 32))
        big = pb.load("B", (32, 32))
        x = pb.assign("X", small @ big)  # rmm1 broadcasts S
        pb.output(pb.assign("Y", x + x))
        result = SystemMLSExecutor(ctx, 8).execute(
            pb.build(), {"S": rng.random((4, 32)), "B": rng.random((32, 32))}
        )
        np.testing.assert_allclose(
            result.matrices["Y"],
            2 * (np.asarray(result.matrices["Y"]) / 2),
        )

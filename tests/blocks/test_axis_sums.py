"""Dedicated tests for the per-axis block sum kernels (the CSC column-sum
uses ``np.add.reduceat``, whose empty-column behaviour needs pinning)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.blocks.dense import DenseBlock
from repro.blocks.ops import block_col_sums, block_row_sums
from repro.blocks.sparse import CSCBlock
from tests.conftest import random_sparse


class TestDense:
    def test_row_sums(self, rng):
        array = rng.random((7, 5))
        np.testing.assert_allclose(
            block_row_sums(DenseBlock(array)).data, array.sum(1, keepdims=True)
        )

    def test_col_sums(self, rng):
        array = rng.random((7, 5))
        np.testing.assert_allclose(
            block_col_sums(DenseBlock(array)).data, array.sum(0, keepdims=True)
        )


class TestSparseEdgeCases:
    def test_empty_block(self):
        block = CSCBlock.empty(4, 6)
        assert np.all(block_row_sums(block).data == 0)
        assert np.all(block_col_sums(block).data == 0)

    def test_single_empty_column_between_full_ones(self):
        array = np.array([[1.0, 0.0, 2.0], [3.0, 0.0, 4.0]])
        block = CSCBlock.from_dense(array)
        np.testing.assert_array_equal(
            block_col_sums(block).data, np.array([[4.0, 0.0, 6.0]])
        )

    def test_leading_and_trailing_empty_columns(self):
        array = np.array([[0.0, 5.0, 0.0]])
        block = CSCBlock.from_dense(array)
        np.testing.assert_array_equal(
            block_col_sums(block).data, np.array([[0.0, 5.0, 0.0]])
        )

    def test_all_mass_in_last_column(self):
        array = np.zeros((3, 4))
        array[:, 3] = [1.0, 2.0, 3.0]
        block = CSCBlock.from_dense(array)
        np.testing.assert_array_equal(
            block_col_sums(block).data, np.array([[0.0, 0.0, 0.0, 6.0]])
        )

    def test_duplicate_rows_in_column_accumulate(self):
        block = CSCBlock.from_coo(
            np.array([0, 2, 1]), np.array([1, 1, 1]), np.array([1.0, 2.0, 4.0]), (3, 2)
        )
        np.testing.assert_array_equal(block_col_sums(block).data, np.array([[0.0, 7.0]]))
        np.testing.assert_array_equal(
            block_row_sums(block).data, np.array([[1.0], [4.0], [2.0]])
        )

    def test_negative_values(self, rng):
        array = random_sparse(rng, 6, 6, 0.4) - 0.3
        array[np.abs(array) < 1e-9] = 0.0
        block = CSCBlock.from_dense(array)
        np.testing.assert_allclose(
            block_row_sums(block).data, array.sum(1, keepdims=True), atol=1e-12
        )
        np.testing.assert_allclose(
            block_col_sums(block).data, array.sum(0, keepdims=True), atol=1e-12
        )


@given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 100), st.integers(0, 6))
def test_property_matches_numpy(rows, cols, seed, density_tenths):
    rng = np.random.default_rng(seed)
    array = rng.random((rows, cols))
    array[rng.random((rows, cols)) > density_tenths / 10] = 0.0
    for block in (DenseBlock(array), CSCBlock.from_dense(array)):
        np.testing.assert_allclose(
            block_row_sums(block).data, array.sum(1, keepdims=True), atol=1e-12
        )
        np.testing.assert_allclose(
            block_col_sums(block).data, array.sum(0, keepdims=True), atol=1e-12
        )

"""Tests for matrix <-> block-grid conversion."""

import numpy as np
import pytest

from repro.blocks import conversion
from repro.blocks.dense import DenseBlock
from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError
from tests.conftest import random_sparse


class TestGridGeometry:
    def test_grid_shape_exact(self):
        assert conversion.grid_shape(12, 8, 4) == (3, 2)

    def test_grid_shape_ragged(self):
        assert conversion.grid_shape(13, 9, 4) == (4, 3)

    def test_grid_shape_block_larger_than_matrix(self):
        assert conversion.grid_shape(3, 3, 10) == (1, 1)

    def test_block_extent(self):
        assert conversion.block_extent(0, 10, 4) == (0, 4)
        assert conversion.block_extent(2, 10, 4) == (8, 10)

    def test_block_extent_out_of_range(self):
        with pytest.raises(BlockError):
            conversion.block_extent(3, 10, 4)

    def test_grid_shape_rejects_bad_block_size(self):
        with pytest.raises(BlockError):
            conversion.grid_shape(10, 10, 0)


class TestSplitAssemble:
    def test_roundtrip(self, rng):
        array = rng.random((13, 9))
        grid = conversion.split(array, 4)
        np.testing.assert_array_equal(conversion.assemble(grid, (13, 9), 4), array)

    def test_roundtrip_sparse(self, rng):
        array = random_sparse(rng, 17, 11, 0.1)
        grid = conversion.split(array, 5, storage="sparse")
        assert all(isinstance(b, CSCBlock) for b in grid.values())
        np.testing.assert_array_equal(conversion.assemble(grid, (17, 11), 5), array)

    def test_storage_dense_forced(self, rng):
        grid = conversion.split(random_sparse(rng, 8, 8, 0.05), 4, storage="dense")
        assert all(isinstance(b, DenseBlock) for b in grid.values())

    def test_storage_auto_mixed(self, rng):
        array = np.zeros((8, 8))
        array[:4, :4] = rng.random((4, 4))  # one dense corner
        grid = conversion.split(array, 4, storage="auto")
        assert isinstance(grid[(0, 0)], DenseBlock)
        assert isinstance(grid[(1, 1)], CSCBlock)

    def test_unknown_storage(self, rng):
        with pytest.raises(BlockError):
            conversion.split(rng.random((4, 4)), 2, storage="compressed")

    def test_rejects_1d(self):
        with pytest.raises(BlockError):
            conversion.split(np.arange(4), 2)

    def test_assemble_missing_blocks_are_zero(self, rng):
        array = rng.random((8, 8))
        grid = conversion.split(array, 4)
        del grid[(1, 1)]
        out = conversion.assemble(grid, (8, 8), 4)
        assert np.all(out[4:, 4:] == 0)
        np.testing.assert_array_equal(out[:4, :4], array[:4, :4])

    def test_assemble_rejects_bad_index(self, rng):
        grid = {(5, 5): DenseBlock(rng.random((4, 4)))}
        with pytest.raises(BlockError):
            conversion.assemble(grid, (8, 8), 4)

    def test_assemble_rejects_bad_shape(self, rng):
        grid = {(0, 0): DenseBlock(rng.random((3, 3)))}
        with pytest.raises(BlockError):
            conversion.assemble(grid, (8, 8), 4)

    def test_edge_blocks_are_smaller(self, rng):
        grid = conversion.split(rng.random((10, 7)), 4)
        assert grid[(2, 1)].shape == (2, 3)

    def test_grid_model_nbytes(self, rng):
        grid = conversion.split(rng.random((8, 8)), 4, storage="dense")
        assert conversion.grid_model_nbytes(grid) == 4 * 8 * 8

"""Unit tests for DenseBlock."""

import numpy as np
import pytest

from repro.blocks.dense import DenseBlock
from repro.errors import BlockError


class TestConstruction:
    def test_wraps_float64_contiguous(self):
        block = DenseBlock(np.arange(6, dtype=np.int32).reshape(2, 3))
        assert block.data.dtype == np.float64
        assert block.data.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(BlockError):
            DenseBlock(np.arange(4))

    def test_rejects_3d(self):
        with pytest.raises(BlockError):
            DenseBlock(np.zeros((2, 2, 2)))

    def test_zeros(self):
        block = DenseBlock.zeros(3, 4)
        assert block.shape == (3, 4)
        assert block.nnz == 0

    def test_full(self):
        block = DenseBlock.full(2, 2, 7.5)
        assert np.all(block.data == 7.5)

    def test_random_uses_rng(self, rng):
        a = DenseBlock.random(3, 3, np.random.default_rng(1))
        b = DenseBlock.random(3, 3, np.random.default_rng(1))
        assert a == b


class TestMetadata:
    def test_nnz_counts_nonzeros(self):
        block = DenseBlock(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert block.nnz == 2

    def test_sparsity(self):
        block = DenseBlock(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert block.sparsity == pytest.approx(0.5)

    def test_sparsity_empty_dimension(self):
        assert DenseBlock(np.zeros((0, 5))).sparsity == 0.0

    def test_model_nbytes_is_4mn(self):
        assert DenseBlock.zeros(10, 20).model_nbytes == 4 * 10 * 20

    def test_actual_nbytes_is_8mn(self):
        assert DenseBlock.zeros(10, 20).actual_nbytes == 8 * 10 * 20


class TestOperations:
    def test_to_numpy_is_copy(self):
        block = DenseBlock.zeros(2, 2)
        out = block.to_numpy()
        out[0, 0] = 5.0
        assert block.data[0, 0] == 0.0

    def test_copy_is_independent(self):
        block = DenseBlock.zeros(2, 2)
        clone = block.copy()
        clone.data[0, 0] = 1.0
        assert block.data[0, 0] == 0.0

    def test_transpose(self, rng):
        array = rng.random((3, 5))
        assert np.array_equal(DenseBlock(array).transpose().data, array.T)

    def test_transpose_is_contiguous(self, rng):
        transposed = DenseBlock(rng.random((3, 5))).transpose()
        assert transposed.data.flags["C_CONTIGUOUS"]

    def test_equality(self, rng):
        array = rng.random((2, 3))
        assert DenseBlock(array) == DenseBlock(array.copy())
        assert DenseBlock(array) != DenseBlock(array + 1)

    def test_equality_different_type(self):
        assert DenseBlock.zeros(1, 1).__eq__(42) is NotImplemented

    def test_is_sparse_flag(self):
        assert DenseBlock.zeros(1, 1).is_sparse is False

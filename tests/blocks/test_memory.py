"""Tests for the memory model (Equation 2) and block-size rule (Equation 3)."""

import math

import pytest

from repro.blocks import memory
from repro.errors import BlockError


class TestBlockFormulas:
    def test_sparse_block_bytes(self):
        # Mem(b) = 4n + 8mns
        assert memory.sparse_block_model_bytes(100, 50, 0.1) == 4 * 50 + 8 * 100 * 50 * 0.1

    def test_dense_block_bytes(self):
        assert memory.dense_block_model_bytes(100, 50) == 4 * 100 * 50


class TestEquation2:
    def test_sparse_matrix_bytes(self):
        # Mem(A) = 4N(M/m) + 8MNS
        got = memory.matrix_model_bytes(1000, 500, 0.01, block_size=100)
        assert got == 4 * 500 * 10 + 8 * 1000 * 500 * 0.01

    def test_dense_matrix_insensitive_to_blocking(self):
        a = memory.matrix_model_bytes(1000, 500, 1.0, block_size=10, sparse=False)
        b = memory.matrix_model_bytes(1000, 500, 1.0, block_size=500, sparse=False)
        assert a == b == 4 * 1000 * 500

    def test_larger_blocks_use_less_sparse_memory(self):
        small = memory.matrix_model_bytes(10_000, 10_000, 0.001, block_size=100)
        large = memory.matrix_model_bytes(10_000, 10_000, 0.001, block_size=1000)
        assert large < small

    def test_index_overhead_dominates_for_tiny_blocks(self):
        # Paper Figure 8b: ~19 GB at 10k blocks vs ~6 GB ideal for LiveJournal.
        nodes, edges = 4_847_571, 68_993_773
        sparsity = edges / (nodes * nodes)
        tiny = memory.matrix_model_bytes(nodes, nodes, sparsity, block_size=10_000)
        ideal = 8 * edges + 4 * nodes
        assert tiny > 2.5 * ideal

    def test_rejects_bad_block_size(self):
        with pytest.raises(BlockError):
            memory.matrix_model_bytes(10, 10, 0.5, block_size=0)


class TestEquation3:
    def test_upper_bound_formula(self):
        # m <= sqrt(MN / LK)
        bound = memory.max_block_size(4_847_571, 4_847_571, workers=4, local_parallelism=8)
        assert bound == int(math.sqrt(4_847_571**2 / 32))

    def test_paper_livejournal_threshold(self):
        # Paper Section 6.3: threshold ~856k for LiveJournal on 4 nodes x 8 threads.
        bound = memory.max_block_size(4_847_571, 4_847_571, 4, 8)
        assert 800_000 < bound < 900_000

    def test_paper_socpokec_threshold(self):
        # ~289k for soc-pokec.
        bound = memory.max_block_size(1_632_803, 1_632_803, 4, 8)
        assert 250_000 < bound < 320_000

    def test_paper_citpatents_threshold(self):
        # ~667k for cit-Patents.
        bound = memory.max_block_size(3_774_768, 3_774_768, 4, 8)
        assert 620_000 < bound < 700_000

    def test_more_workers_means_smaller_blocks(self):
        four = memory.max_block_size(10_000, 10_000, 4, 8)
        twenty = memory.max_block_size(10_000, 10_000, 20, 8)
        assert twenty < four

    def test_rejects_bad_inputs(self):
        with pytest.raises(BlockError):
            memory.max_block_size(0, 10, 4, 8)
        with pytest.raises(BlockError):
            memory.max_block_size(10, 10, 0, 8)


class TestChooseBlockSize:
    def test_sits_under_the_bound(self):
        bound = memory.max_block_size(100_000, 100_000, 4, 8)
        chosen = memory.choose_block_size(100_000, 100_000, 4, 8)
        assert 0 < chosen <= bound

    def test_near_the_bound(self):
        bound = memory.max_block_size(100_000, 100_000, 4, 8)
        chosen = memory.choose_block_size(100_000, 100_000, 4, 8)
        assert chosen >= 0.8 * bound

    def test_capped_by_matrix_size(self):
        assert memory.choose_block_size(10, 10, 1, 1) <= 10

    def test_never_below_one(self):
        assert memory.choose_block_size(2, 2, 64, 64) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(BlockError):
            memory.choose_block_size(10, 10, 1, 1, fraction_of_bound=0.0)

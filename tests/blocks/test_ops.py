"""Unit tests for the block compute kernels."""

import numpy as np
import pytest

from repro.blocks import ops
from repro.blocks.dense import DenseBlock
from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError, ShapeError
from tests.conftest import random_sparse


def as_blocks(array: np.ndarray):
    """Both storage formats for the same logical matrix."""
    return DenseBlock(array), CSCBlock.from_dense(array)


class TestMatmul:
    @pytest.mark.parametrize("left_sparse", [False, True])
    @pytest.mark.parametrize("right_sparse", [False, True])
    def test_all_format_combinations(self, rng, left_sparse, right_sparse):
        a = random_sparse(rng, 7, 5, 0.4)
        b = random_sparse(rng, 5, 6, 0.4)
        left = CSCBlock.from_dense(a) if left_sparse else DenseBlock(a)
        right = CSCBlock.from_dense(b) if right_sparse else DenseBlock(b)
        result = ops.matmul(left, right)
        assert isinstance(result, DenseBlock)
        np.testing.assert_allclose(result.data, a @ b, atol=1e-12)

    def test_inner_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            ops.matmul(DenseBlock.zeros(2, 3), DenseBlock.zeros(4, 2))

    def test_empty_sparse_operand(self):
        result = ops.matmul(CSCBlock.empty(3, 4), DenseBlock.zeros(4, 2))
        assert result.nnz == 0

    def test_flops_dense(self):
        flops = ops.matmul_flops(DenseBlock.zeros(3, 4), DenseBlock.zeros(4, 5))
        assert flops == 2 * 3 * 4 * 5

    def test_flops_sparse_left_scales_with_nnz(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 10, 10, 0.1))
        flops = ops.matmul_flops(sparse, DenseBlock.zeros(10, 4))
        assert flops == 2 * sparse.nnz * 4

    def test_flops_sparse_right(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 10, 10, 0.1))
        flops = ops.matmul_flops(DenseBlock.zeros(4, 10), sparse)
        assert flops == 2 * 4 * sparse.nnz


class TestCellwise:
    @pytest.mark.parametrize("op", ["add", "subtract", "multiply", "divide"])
    @pytest.mark.parametrize("left_sparse", [False, True])
    @pytest.mark.parametrize("right_sparse", [False, True])
    def test_matches_numpy(self, rng, op, left_sparse, right_sparse):
        a = random_sparse(rng, 6, 5, 0.5)
        b = random_sparse(rng, 6, 5, 0.5) + 0.5  # denominator well away from 0
        left = CSCBlock.from_dense(a) if left_sparse else DenseBlock(a)
        right = CSCBlock.from_dense(b) if right_sparse else DenseBlock(b)
        if op == "divide" and right_sparse and not left_sparse:
            pytest.skip("dense / sparse densifies the implicit zeros to inf")
        result = ops.cellwise(op, left, right)
        expected = {"add": a + b, "subtract": a - b, "multiply": a * b, "divide": None}[op]
        if op == "divide":
            if left_sparse:
                # sparse numerator: only positions where a is non-zero
                expected = np.where(a != 0, a / b, 0.0)
            else:
                expected = a / b
        np.testing.assert_allclose(result.to_numpy(), expected, atol=1e-12)

    def test_multiply_sparse_output_format(self, rng):
        a = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        b = DenseBlock(rng.random((5, 5)))
        assert ops.cellwise("multiply", a, b).is_sparse

    def test_add_two_sparse_stays_sparse(self, rng):
        a = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        b = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        assert ops.cellwise("add", a, b).is_sparse

    def test_add_mixed_densifies(self, rng):
        a = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        b = DenseBlock(rng.random((5, 5)))
        assert not ops.cellwise("add", a, b).is_sparse

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.cellwise("add", DenseBlock.zeros(2, 2), DenseBlock.zeros(3, 3))

    def test_unknown_op(self):
        with pytest.raises(BlockError):
            ops.cellwise("modulo", DenseBlock.zeros(2, 2), DenseBlock.zeros(2, 2))

    def test_subtract_cancellation_prunes_sparse(self):
        a = CSCBlock.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        result = ops.cellwise("subtract", a, a)
        assert result.nnz == 0

    def test_flops(self, rng):
        dense = DenseBlock(rng.random((4, 4)))
        assert ops.cellwise_flops(dense, dense) == 16
        sparse = CSCBlock.from_dense(random_sparse(rng, 4, 4, 0.3))
        assert ops.cellwise_flops(sparse, sparse) == 2 * sparse.nnz


class TestScalarOps:
    @pytest.mark.parametrize("op", ["add", "subtract", "multiply", "divide"])
    def test_dense(self, rng, op):
        a = rng.random((4, 3))
        result = ops.scalar_op(op, DenseBlock(a), 2.0)
        expected = {"add": a + 2, "subtract": a - 2, "multiply": a * 2, "divide": a / 2}[op]
        np.testing.assert_allclose(result.data, expected)

    def test_sparse_multiply_preserves_format(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        result = ops.scalar_op("multiply", sparse, 3.0)
        assert result.is_sparse
        np.testing.assert_allclose(result.to_numpy(), sparse.to_numpy() * 3)

    def test_sparse_divide_preserves_format(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        result = ops.scalar_op("divide", sparse, 2.0)
        assert result.is_sparse

    def test_sparse_add_nonzero_densifies(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        result = ops.scalar_op("add", sparse, 1.0)
        assert not result.is_sparse
        np.testing.assert_allclose(result.to_numpy(), sparse.to_numpy() + 1)

    def test_sparse_add_zero_stays_sparse(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 5, 5, 0.3))
        assert ops.scalar_op("add", sparse, 0.0).is_sparse

    def test_divide_by_zero_scalar(self):
        with pytest.raises(BlockError):
            ops.scalar_op("divide", DenseBlock.zeros(2, 2), 0.0)

    def test_unknown_op(self):
        with pytest.raises(BlockError):
            ops.scalar_op("power", DenseBlock.zeros(2, 2), 2.0)


class TestAggregatesAndAccumulate:
    def test_block_sum(self, rng):
        a = random_sparse(rng, 6, 6, 0.4)
        for block in as_blocks(a):
            assert ops.block_sum(block) == pytest.approx(a.sum())

    def test_block_sq_sum(self, rng):
        a = random_sparse(rng, 6, 6, 0.4)
        for block in as_blocks(a):
            assert ops.block_sq_sum(block) == pytest.approx((a * a).sum())

    def test_accumulate_dense(self, rng):
        a = rng.random((3, 3))
        target = DenseBlock.zeros(3, 3)
        ops.accumulate(target, DenseBlock(a))
        ops.accumulate(target, DenseBlock(a))
        np.testing.assert_allclose(target.data, 2 * a)

    def test_accumulate_sparse_addition(self, rng):
        a = random_sparse(rng, 3, 3, 0.5)
        target = DenseBlock.zeros(3, 3)
        ops.accumulate(target, CSCBlock.from_dense(a))
        np.testing.assert_allclose(target.data, a)

    def test_accumulate_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.accumulate(DenseBlock.zeros(2, 2), DenseBlock.zeros(3, 3))

    def test_transpose_kernel_preserves_format(self, rng):
        dense, sparse = as_blocks(random_sparse(rng, 4, 6, 0.4))
        assert not ops.transpose(dense).is_sparse
        assert ops.transpose(sparse).is_sparse

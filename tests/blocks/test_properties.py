"""Property-based tests for the block substrate (hypothesis)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.blocks import assemble, cellwise, matmul, split
from repro.blocks.dense import DenseBlock
from repro.blocks.sparse import CSCBlock

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, width=64)


def matrix(rows=st.integers(1, 12), cols=st.integers(1, 12)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite)
    )


def sparsify(array: np.ndarray, mask_seed: int) -> np.ndarray:
    rng = np.random.default_rng(mask_seed)
    out = array.copy()
    out[rng.random(out.shape) < 0.6] = 0.0
    return out


@given(matrix(), st.integers(0, 10))
def test_csc_roundtrip_is_identity(array, seed):
    sparse = sparsify(array, seed)
    assert np.array_equal(CSCBlock.from_dense(sparse).to_numpy(), sparse)


@given(matrix(), st.integers(0, 10))
def test_csc_memory_formula_matches_arrays(array, seed):
    block = CSCBlock.from_dense(sparsify(array, seed))
    assert block.model_nbytes == 4 * block.shape[1] + 8 * len(block.values)


@given(matrix(), st.integers(0, 10))
def test_csc_transpose_involution(array, seed):
    sparse = sparsify(array, seed)
    block = CSCBlock.from_dense(sparse)
    assert block.transpose().transpose() == block


@given(matrix(), st.integers(1, 6))
def test_split_assemble_roundtrip(array, block_size):
    grid = split(array, block_size)
    assert np.array_equal(assemble(grid, array.shape, block_size), array)


@given(
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(0, 5),
    st.booleans(),
    st.booleans(),
)
def test_matmul_matches_numpy(m, k, n, seed, left_sparse, right_sparse):
    rng = np.random.default_rng(seed)
    a, b = rng.random((m, k)), rng.random((k, n))
    left = CSCBlock.from_dense(sparsify(a, seed)) if left_sparse else DenseBlock(a)
    right = CSCBlock.from_dense(sparsify(b, seed + 1)) if right_sparse else DenseBlock(b)
    result = matmul(left, right)
    expected = left.to_numpy() if left_sparse else a
    expected = expected @ (right.to_numpy() if right_sparse else b)
    np.testing.assert_allclose(result.data, expected, atol=1e-9)


@given(matrix(), st.integers(0, 5), st.sampled_from(["add", "subtract", "multiply"]))
def test_sparse_cellwise_matches_numpy(array, seed, op):
    a = sparsify(array, seed)
    b = sparsify(array[::-1].copy() if array.shape[0] > 1 else array, seed + 1)
    result = cellwise(op, CSCBlock.from_dense(a), CSCBlock.from_dense(b))
    expected = {"add": a + b, "subtract": a - b, "multiply": a * b}[op]
    np.testing.assert_allclose(result.to_numpy(), expected, atol=1e-9)


@given(matrix(), st.integers(0, 5))
def test_sparsity_bounds(array, seed):
    block = CSCBlock.from_dense(sparsify(array, seed))
    assert 0.0 <= block.sparsity <= 1.0
    assert block.nnz == np.count_nonzero(block.to_numpy())

"""Unit tests for the CSC sparse block (paper Figure 5)."""

import numpy as np
import pytest

from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError
from tests.conftest import random_sparse


def example_block() -> CSCBlock:
    # The matrix from the paper's Figure 5 layout style.
    dense = np.array(
        [
            [0.0, 3.0, 0.0, 2.0],
            [2.0, 0.0, 4.0, 1.0],
            [0.0, 0.0, 2.0, 0.0],
        ]
    )
    return CSCBlock.from_dense(dense)


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = random_sparse(rng, 9, 7, 0.3)
        assert np.array_equal(CSCBlock.from_dense(dense).to_numpy(), dense)

    def test_from_coo_sums_duplicates(self):
        block = CSCBlock.from_coo(
            np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 1.0]), (2, 2)
        )
        assert block.to_numpy()[0, 1] == 5.0
        assert block.nnz == 2

    def test_from_coo_drops_cancelling_duplicates(self):
        block = CSCBlock.from_coo(
            np.array([0, 0]), np.array([0, 0]), np.array([1.0, -1.0]), (2, 2)
        )
        assert block.nnz == 0

    def test_from_coo_drops_explicit_zeros(self):
        block = CSCBlock.from_coo(
            np.array([0]), np.array([0]), np.array([0.0]), (2, 2)
        )
        assert block.nnz == 0

    def test_from_coo_out_of_range(self):
        with pytest.raises(BlockError):
            CSCBlock.from_coo(np.array([5]), np.array([0]), np.array([1.0]), (2, 2))

    def test_from_coo_length_mismatch(self):
        with pytest.raises(BlockError):
            CSCBlock.from_coo(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))

    def test_empty(self):
        block = CSCBlock.empty(4, 3)
        assert block.nnz == 0
        assert block.to_numpy().shape == (4, 3)

    def test_random_sparsity(self):
        block = CSCBlock.random(50, 50, 0.2, np.random.default_rng(0))
        assert 0.05 < block.sparsity < 0.4

    def test_random_rejects_bad_sparsity(self):
        with pytest.raises(BlockError):
            CSCBlock.random(4, 4, 1.5, np.random.default_rng(0))

    def test_invariant_colptr_length(self):
        with pytest.raises(BlockError):
            CSCBlock((2, 2), np.array([1.0]), np.array([0]), np.array([0, 1]))

    def test_invariant_colptr_monotone(self):
        with pytest.raises(BlockError):
            CSCBlock((2, 2), np.array([1.0]), np.array([0]), np.array([0, 1, 0]))

    def test_invariant_row_range(self):
        with pytest.raises(BlockError):
            CSCBlock((2, 2), np.array([1.0]), np.array([5]), np.array([0, 1, 1]))


class TestStructure:
    def test_colptr_matches_figure5_scheme(self):
        block = example_block()
        # column start index array has cols+1 entries, starts 0, ends nnz
        assert block.colptr[0] == 0
        assert block.colptr[-1] == block.nnz
        assert len(block.colptr) == block.shape[1] + 1

    def test_column_indices(self):
        block = example_block()
        rows, cols, values = block.to_coo()
        dense = block.to_numpy()
        for r, c, v in zip(rows, cols, values):
            assert dense[r, c] == v

    def test_column_access(self):
        block = example_block()
        rows, values = block.column(3)
        assert set(zip(rows.tolist(), values.tolist())) == {(0, 2.0), (1, 1.0)}

    def test_column_out_of_range(self):
        with pytest.raises(BlockError):
            example_block().column(10)

    def test_rows_sorted_within_column(self, rng):
        block = CSCBlock.from_dense(random_sparse(rng, 20, 20, 0.4))
        for j in range(20):
            rows, __ = block.column(j)
            assert np.all(np.diff(rows) > 0)


class TestMemoryModel:
    def test_model_nbytes_formula(self):
        block = example_block()
        __, cols = block.shape
        assert block.model_nbytes == 4 * cols + 8 * block.nnz

    def test_actual_nbytes_counts_three_arrays(self):
        block = example_block()
        expected = block.values.nbytes + block.row_idx.nbytes + block.colptr.nbytes
        assert block.actual_nbytes == expected


class TestOperations:
    def test_transpose_roundtrip(self, rng):
        dense = random_sparse(rng, 8, 5, 0.3)
        block = CSCBlock.from_dense(dense)
        assert np.array_equal(block.transpose().to_numpy(), dense.T)
        assert np.array_equal(block.transpose().transpose().to_numpy(), dense)

    def test_copy_independent(self):
        block = example_block()
        clone = block.copy()
        clone.values[0] = 99.0
        assert block.values[0] != 99.0

    def test_to_dense_block(self):
        block = example_block()
        assert np.array_equal(block.to_dense_block().data, block.to_numpy())

    def test_equality_canonical_form(self, rng):
        dense = random_sparse(rng, 6, 6, 0.3)
        a = CSCBlock.from_dense(dense)
        rows, cols = np.nonzero(dense)
        order = np.argsort(rng.random(len(rows)))  # scrambled COO input
        b = CSCBlock.from_coo(rows[order], cols[order], dense[rows, cols][order], (6, 6))
        assert a == b

    def test_is_sparse_flag(self):
        assert example_block().is_sparse is True

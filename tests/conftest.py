"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config import ClusterConfig
from repro.rdd.context import ClusterContext

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
# `pytest --hypothesis-profile=deep` for long fuzz sessions.
settings.register_profile(
    "deep",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
import os  # noqa: E402  (profile selection must follow registration)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_config() -> ClusterConfig:
    return ClusterConfig(num_workers=4, threads_per_worker=2, block_size=8)


@pytest.fixture
def context(small_config: ClusterConfig) -> ClusterContext:
    return ClusterContext(small_config)


def random_sparse(rng: np.random.Generator, rows: int, cols: int, density: float) -> np.ndarray:
    """A random matrix with roughly the requested density."""
    out = rng.random((rows, cols))
    out[out > density] = 0.0
    return out

"""Tests for plan statistics / explain."""


from repro.core.analysis import explain, format_statistics
from repro.core.planner import DMacPlanner
from repro.lang.program import ProgramBuilder
from repro.programs import build_gnmf_program, build_linreg_program


def plan_for(program, workers=4):
    return DMacPlanner(program, workers).plan()


class TestExplain:
    def test_comm_free_plan(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        pb.output(pb.assign("C", a + b))
        stats = explain(plan_for(pb.build()), 4)
        assert stats.comm_steps == 0
        assert stats.predicted_bytes == 0
        assert stats.predicted_bytes_by_stage == {}
        assert stats.free_dependency_ratio == 1.0

    def test_gnmf_statistics(self):
        program = build_gnmf_program((96, 64), 0.1, factors=8, iterations=2)
        stats = explain(plan_for(program), 4)
        assert stats.stages >= 2
        assert stats.comm_steps > 0
        assert sum(stats.strategy_counts.values()) >= 12  # 6 matmuls x 2 iters
        assert set(stats.strategy_counts) <= {"rmm1", "rmm2", "cpmm"}
        assert 0.0 <= stats.free_dependency_ratio <= 1.0

    def test_stage_bytes_cover_all_comm(self):
        program = build_gnmf_program((96, 64), 0.1, factors=8, iterations=1)
        stats = explain(plan_for(program), 4)
        # Every communicating step contributes to some stage's bytes.
        assert sum(stats.predicted_bytes_by_stage.values()) > 0
        assert all(stage >= 1 for stage in stats.predicted_bytes_by_stage)

    def test_linreg_matrix_moves_exclude_v(self):
        program = build_linreg_program((400, 40), 0.1, iterations=4)
        stats = explain(plan_for(program), 4)
        assert "V" not in stats.matrix_moves  # the paper's headline property

    def test_schedules_unstaged_plan(self):
        program = build_gnmf_program((32, 24), 0.2, factors=4, iterations=1)
        plan = plan_for(program)
        assert plan.num_stages == 0
        stats = explain(plan, 4)
        assert stats.stages >= 1

    def test_explain_is_pure(self):
        program = build_gnmf_program((32, 24), 0.2, factors=4, iterations=1)
        plan = plan_for(program)
        first = explain(plan, 4)
        second = explain(plan, 4)
        assert first == second


class TestFormatStatistics:
    def test_renders_every_section(self):
        program = build_gnmf_program((96, 64), 0.1, factors=8, iterations=1)
        text = format_statistics(explain(plan_for(program), 4))
        for fragment in ("steps:", "predicted communication:", "strategies:",
                         "extended operators:", "communication by stage:"):
            assert fragment in text

    def test_empty_plan_sections_omitted(self):
        pb = ProgramBuilder()
        pb.output(pb.load("A", (4, 4)))
        text = format_statistics(explain(plan_for(pb.build()), 4))
        assert "strategies:" not in text
        assert "matrices crossing" not in text

"""Tests for the dependency classifier: full Table 2 coverage."""

import pytest

from repro.core.dependency import (
    COMMUNICATION_DEPENDENCIES,
    DependencyType,
    classify,
    is_communication,
    lowering_chain,
)
from repro.matrix.schemes import Scheme

R, C, B = Scheme.ROW, Scheme.COL, Scheme.BROADCAST

# All 18 combinations (out scheme, in scheme, transposed) -> expected type,
# transcribed from Table 2 of the paper.
TABLE_2 = [
    # A = B (untransposed access)
    (R, R, False, DependencyType.REFERENCE),
    (C, C, False, DependencyType.REFERENCE),
    (B, B, False, DependencyType.REFERENCE),
    (R, C, False, DependencyType.PARTITION),
    (C, R, False, DependencyType.PARTITION),
    (R, B, False, DependencyType.BROADCAST),
    (C, B, False, DependencyType.BROADCAST),
    (B, R, False, DependencyType.EXTRACT),
    (B, C, False, DependencyType.EXTRACT),
    # A = B^T (transposed access)
    (R, C, True, DependencyType.TRANSPOSE),
    (C, R, True, DependencyType.TRANSPOSE),
    (B, B, True, DependencyType.TRANSPOSE),
    (R, R, True, DependencyType.TRANSPOSE_PARTITION),
    (C, C, True, DependencyType.TRANSPOSE_PARTITION),
    (R, B, True, DependencyType.TRANSPOSE_BROADCAST),
    (C, B, True, DependencyType.TRANSPOSE_BROADCAST),
    (B, R, True, DependencyType.EXTRACT_TRANSPOSE),
    (B, C, True, DependencyType.EXTRACT_TRANSPOSE),
]


@pytest.mark.parametrize("out_scheme,in_scheme,transposed,expected", TABLE_2)
def test_table_2_classification(out_scheme, in_scheme, transposed, expected):
    assert classify(out_scheme, in_scheme, transposed) is expected


def test_classifier_is_total():
    """All 18 combinations classify without error."""
    for out_scheme in (R, C, B):
        for in_scheme in (R, C, B):
            for transposed in (False, True):
                assert classify(out_scheme, in_scheme, transposed) is not None


def test_exactly_eight_types_reachable():
    reached = {
        classify(o, i, t)
        for o in (R, C, B)
        for i in (R, C, B)
        for t in (False, True)
    }
    assert reached == set(DependencyType)


class TestCommunicationSplit:
    def test_four_communicating_types(self):
        assert COMMUNICATION_DEPENDENCIES == {
            DependencyType.PARTITION,
            DependencyType.TRANSPOSE_PARTITION,
            DependencyType.BROADCAST,
            DependencyType.TRANSPOSE_BROADCAST,
        }

    @pytest.mark.parametrize("out_scheme,in_scheme,transposed,expected", TABLE_2)
    def test_is_communication_matches_table(self, out_scheme, in_scheme, transposed, expected):
        communicating = expected in COMMUNICATION_DEPENDENCIES
        assert is_communication(expected) == communicating


class TestLoweringChains:
    @pytest.mark.parametrize("out_scheme,in_scheme,transposed,expected", TABLE_2)
    def test_chain_structure(self, out_scheme, in_scheme, transposed, expected):
        chain = lowering_chain(expected, in_scheme)
        # At most one free local step followed by at most one comm step.
        assert len(chain) <= 2
        comm_steps = [k for k in chain if k in ("partition", "broadcast")]
        assert len(comm_steps) == (1 if is_communication(expected) else 0)
        if comm_steps:
            assert chain[-1] in ("partition", "broadcast")

    def test_reference_is_empty(self):
        assert lowering_chain(DependencyType.REFERENCE, R) == ()

    def test_transpose_partition_transposes_first(self):
        assert lowering_chain(DependencyType.TRANSPOSE_PARTITION, R) == (
            "transpose",
            "partition",
        )

    def test_extract_transpose_extracts_first(self):
        assert lowering_chain(DependencyType.EXTRACT_TRANSPOSE, R) == (
            "extract",
            "transpose",
        )

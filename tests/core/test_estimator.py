"""Tests for the worst-case size estimator (Section 5.1)."""

import numpy as np
import pytest

from repro.core.estimator import SizeEstimator
from repro.errors import PlanError
from repro.lang.program import Operand, ProgramBuilder


def build(statements):
    pb = ProgramBuilder()
    statements(pb)
    return pb.build()


class TestSparsityPropagation:
    def test_load_uses_declared_sparsity(self):
        prog = build(lambda pb: pb.load("V", (10, 10), sparsity=0.03))
        assert SizeEstimator(prog).sparsity("V") == 0.03

    def test_random_and_full_are_dense(self):
        def stmts(pb):
            pb.random("W", (4, 4))
            pb.full("D", (4, 4), 0.5)

        est = SizeEstimator(build(stmts))
        assert est.sparsity("W") == 1.0
        assert est.sparsity("D") == 1.0

    def test_matmul_result_is_dense(self):
        def stmts(pb):
            a = pb.load("A", (4, 4), sparsity=0.01)
            pb.assign("C", a @ a)

        est = SizeEstimator(build(stmts))
        assert est.sparsity("C") == 1.0

    def test_cellwise_is_capped_sum(self):
        def stmts(pb):
            a = pb.load("A", (4, 4), sparsity=0.3)
            b = pb.load("B", (4, 4), sparsity=0.4)
            pb.assign("C", a + b)

        est = SizeEstimator(build(stmts))
        assert est.sparsity("C") == pytest.approx(0.7)

    def test_cellwise_caps_at_one(self):
        def stmts(pb):
            a = pb.load("A", (4, 4), sparsity=0.8)
            b = pb.load("B", (4, 4), sparsity=0.7)
            pb.assign("C", a * b)

        assert SizeEstimator(build(stmts)).sparsity("C") == 1.0

    def test_scalar_multiply_preserves(self):
        def stmts(pb):
            a = pb.load("A", (4, 4), sparsity=0.2)
            pb.assign("B", a * 2.0)

        assert SizeEstimator(build(stmts)).sparsity("B") == 0.2

    def test_scalar_add_densifies(self):
        def stmts(pb):
            a = pb.load("A", (4, 4), sparsity=0.2)
            pb.assign("B", a + 1.0)

        assert SizeEstimator(build(stmts)).sparsity("B") == 1.0

    def test_transposed_operand_same_sparsity(self):
        def stmts(pb):
            a = pb.load("A", (4, 6), sparsity=0.25)
            pb.assign("B", a.T @ a)

        est = SizeEstimator(build(stmts))
        assert est.sparsity_of(Operand("A", transposed=True)) == 0.25


class TestByteEstimates:
    def test_nbytes_formula(self):
        prog = build(lambda pb: pb.load("V", (100, 50), sparsity=0.1))
        assert SizeEstimator(prog).nbytes("V") == int(8 * 100 * 50 * 0.1)

    def test_nbytes_never_zero(self):
        prog = build(lambda pb: pb.load("V", (10, 10), sparsity=0.0))
        assert SizeEstimator(prog).nbytes("V") == 1

    def test_unknown_name_rejected(self):
        est = SizeEstimator(build(lambda pb: pb.load("V", (4, 4))))
        with pytest.raises(PlanError):
            est.sparsity("ghost")
        with pytest.raises(PlanError):
            est.nbytes("ghost")


class TestWorstCaseInvariant:
    def test_estimate_dominates_truth_on_gnmf(self):
        """True sparsity of every intermediate <= estimated sparsity."""
        from repro.baselines.rlocal import run_local
        from repro.datasets import sparse_random

        pb = ProgramBuilder()
        v = pb.load("V", (30, 20), sparsity=0.2)
        w = pb.random("W", (30, 4))
        h = pb.random("H", (4, 20))
        h = pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
        w = pb.assign("W", w * (v @ h.T) / (w @ h @ h.T))
        for name in ("H@2", "W@2"):
            pb.output(name)
        prog = pb.build()
        est = SizeEstimator(prog)
        data = sparse_random(30, 20, 0.2, seed=1, ensure_coverage=True)
        result = run_local(prog, {"V": data})
        for name, array in result.matrices.items():
            true_sparsity = np.count_nonzero(array) / array.size
            assert true_sparsity <= est.sparsity(name) + 1e-12

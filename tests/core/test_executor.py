"""Tests for the plan executor."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.executor import PlanExecutor, evaluate_scalar
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError
from repro.lang.expr import (
    ScalarBinaryExpr,
    ScalarConst,
    ScalarRefExpr,
    ScalarUnaryExpr,
)
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1, block_size=8))


def run(ctx, program, inputs=None):
    plan = schedule_stages(DMacPlanner(program, ctx.num_workers).plan())
    return PlanExecutor(ctx, 8).execute(plan, inputs)


class TestExecution:
    def test_simple_pipeline(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 12))
        b = pb.load("B", (12, 8))
        pb.output(pb.assign("C", a @ b))
        arrays = {"A": rng.random((16, 12)), "B": rng.random((12, 8))}
        result = run(ctx, pb.build(), arrays)
        np.testing.assert_allclose(result.matrices["C"], arrays["A"] @ arrays["B"], atol=1e-9)

    def test_scalars_flow_through(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        s = pb.scalar("s", a.sum())
        pb.output(pb.assign("B", a * (s / 2.0)))
        pb.scalar_output(s)
        array = rng.random((8, 8))
        result = run(ctx, pb.build(), {"A": array})
        assert result.scalars["s"] == pytest.approx(array.sum())
        np.testing.assert_allclose(result.matrices["B"], array * (array.sum() / 2.0))

    def test_random_source_seeded(self, ctx):
        pb = ProgramBuilder()
        w = pb.random("W", (8, 8), seed=5)
        pb.output(pb.assign("X", w + w))
        result = run(ctx, pb.build())
        expected = np.random.default_rng(5).random((8, 8))
        np.testing.assert_allclose(result.matrices["X"], 2 * expected)

    def test_full_source(self, ctx):
        pb = ProgramBuilder()
        d = pb.full("D", (4, 4), 0.25)
        pb.output(pb.assign("X", d * 4.0))
        result = run(ctx, pb.build())
        np.testing.assert_allclose(result.matrices["X"], np.ones((4, 4)))

    def test_missing_input_rejected(self, ctx):
        pb = ProgramBuilder()
        pb.output(pb.load("A", (4, 4)))
        with pytest.raises(ExecutionError):
            run(ctx, pb.build(), {})

    def test_wrong_input_shape_rejected(self, ctx, rng):
        pb = ProgramBuilder()
        pb.output(pb.load("A", (4, 4)))
        with pytest.raises(ExecutionError):
            run(ctx, pb.build(), {"A": rng.random((5, 5))})

    def test_metrics_populated(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        b = pb.load("B", (32, 4))
        pb.output(pb.assign("C", a @ b))
        result = run(ctx, pb.build(), {"A": rng.random((32, 32)), "B": rng.random((32, 4))})
        assert result.num_stages >= 1
        assert result.simulated_seconds > 0
        assert result.time.compute_seconds > 0
        assert result.peak_memory_bytes > 0
        assert result.wall_seconds > 0

    def test_measured_comm_bounded_by_prediction(self, ctx, rng):
        from repro.programs import build_gnmf_program
        from repro.datasets import sparse_random

        program = build_gnmf_program((64, 48), 0.1, factors=4, iterations=2)
        plan = schedule_stages(DMacPlanner(program, 4).plan())
        data = sparse_random(64, 48, 0.1, seed=0, ensure_coverage=True)
        result = PlanExecutor(ctx, 8).execute(plan, {"V": data})
        # The prediction is an upper bound (worst-case sizes, whole-matrix
        # moves); physical traffic must not exceed it (plus record framing).
        assert result.comm_bytes <= plan.predicted_bytes * 1.2 + 4096
        assert result.comm_bytes > 0

    def test_zero_comm_plan_moves_zero_bytes(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        pb.output(pb.assign("C", (a + b) * a))
        result = run(ctx, pb.build(), {"A": rng.random((16, 16)), "B": rng.random((16, 16))})
        assert result.comm_bytes == 0

    def test_auto_block_size_used_when_unconfigured(self, rng):
        ctx = ClusterContext(ClusterConfig(num_workers=2, threads_per_worker=2))
        pb = ProgramBuilder()
        a = pb.load("A", (64, 64))
        pb.output(pb.assign("B", a + a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        result = PlanExecutor(ctx).execute(plan, {"A": rng.random((64, 64))})
        np.testing.assert_allclose(result.matrices["B"], 2 * result.matrices["B"] / 2)

    def test_transposed_output_materialised_correctly(self, ctx, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 12))
        pb.output(pb.assign("B", a.T))  # identity op on a transposed operand
        array = rng.random((8, 12))
        result = run(ctx, pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["B"], array.T)


class TestScalarEvaluation:
    def test_constants_and_refs(self):
        assert evaluate_scalar(ScalarConst(2.5), {}) == 2.5
        assert evaluate_scalar(ScalarRefExpr("x"), {"x": 3.0}) == 3.0

    def test_missing_ref_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate_scalar(ScalarRefExpr("ghost"), {})

    def test_binary_ops(self):
        two, three = ScalarConst(2.0), ScalarConst(3.0)
        assert evaluate_scalar(ScalarBinaryExpr("add", two, three), {}) == 5.0
        assert evaluate_scalar(ScalarBinaryExpr("subtract", two, three), {}) == -1.0
        assert evaluate_scalar(ScalarBinaryExpr("multiply", two, three), {}) == 6.0
        assert evaluate_scalar(ScalarBinaryExpr("divide", three, two), {}) == 1.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate_scalar(
                ScalarBinaryExpr("divide", ScalarConst(1.0), ScalarConst(0.0)), {}
            )

    def test_unary_ops(self):
        assert evaluate_scalar(ScalarUnaryExpr("negate", ScalarConst(2.0)), {}) == -2.0
        assert evaluate_scalar(ScalarUnaryExpr("sqrt", ScalarConst(9.0)), {}) == 3.0

    def test_sqrt_of_negative(self):
        with pytest.raises(ExecutionError):
            evaluate_scalar(ScalarUnaryExpr("sqrt", ScalarConst(-1.0)), {})

"""The Figure 3 analogue: structural properties of the GNMF execution plan.

The paper walks through the plan DMac generates for GNMF's first iteration
(Section 4.2.4, Figure 3).  Our greedy planner makes the same *class* of
decisions under its own size estimates; these tests pin the properties the
paper highlights rather than an exact strategy-by-strategy transcript.
"""

import pytest

from repro.core.plan import CellwiseStep, ExtendedStep, MatMulStep
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages, validate_stage_invariant
from repro.programs import build_gnmf_program

# Netflix-shaped (scaled): V tall and sparse, factor rank small.
V_SHAPE = (960, 360)
V_SPARSITY = 0.012
FACTORS = 8


@pytest.fixture(scope="module")
def one_iteration_plan():
    program = build_gnmf_program(V_SHAPE, V_SPARSITY, factors=FACTORS, iterations=1)
    return schedule_stages(DMacPlanner(program, 4).plan())


@pytest.fixture(scope="module")
def three_iteration_plan():
    program = build_gnmf_program(V_SHAPE, V_SPARSITY, factors=FACTORS, iterations=3)
    return schedule_stages(DMacPlanner(program, 4).plan())


class TestFigure3Properties:
    def test_stage_invariant_holds(self, one_iteration_plan):
        validate_stage_invariant(one_iteration_plan)

    def test_handful_of_stages(self, one_iteration_plan):
        # Figure 3 shows 5 stages for one iteration.
        assert 2 <= one_iteration_plan.num_stages <= 7

    def test_both_cellwise_phases_comm_free(self, one_iteration_plan):
        # "DMac can conduct this computation phase without any communication"
        cellwise = [s for s in one_iteration_plan.steps if isinstance(s, CellwiseStep)]
        assert len(cellwise) == 4  # H*(WtV), X/(WtWH), W*(VHt), Y/(WHHt)
        assert all(not s.communicates for s in cellwise)

    def test_v_is_never_repartitioned(self, three_iteration_plan):
        moves = [
            s
            for s in three_iteration_plan.steps
            if isinstance(s, ExtendedStep)
            and s.kind == "partition"
            and s.source.name == "V"
        ]
        assert moves == []

    def test_v_is_broadcast_at_most_once(self, three_iteration_plan):
        broadcasts = [
            s
            for s in three_iteration_plan.steps
            if isinstance(s, ExtendedStep)
            and s.kind == "broadcast"
            and s.source.name == "V"
        ]
        assert len(broadcasts) <= 1

    def test_w_moved_at_most_once_per_iteration(self, three_iteration_plan):
        """Section 6.5: 'W only needs to be partitioned once [per iteration]'
        -- vs four repartitions in SystemML-S."""
        from collections import Counter

        moves = Counter()
        for step in three_iteration_plan.steps:
            if isinstance(step, ExtendedStep) and step.communicates:
                if step.source.name.startswith("W"):
                    moves[step.source.name] += 1
        assert all(count <= 1 for count in moves.values()), moves

    def test_every_matmul_has_a_strategy_from_figure2(self, one_iteration_plan):
        for step in one_iteration_plan.steps:
            if isinstance(step, MatMulStep):
                assert step.strategy in ("rmm1", "rmm2", "cpmm")

    def test_transposes_are_free_local_steps(self, one_iteration_plan):
        for step in one_iteration_plan.steps:
            if isinstance(step, ExtendedStep) and step.kind == "transpose":
                assert not step.communicates

    def test_describe_renders_with_stages(self, one_iteration_plan):
        text = one_iteration_plan.describe()
        assert "-- stage 1 --" in text
        assert "[comm]" in text

"""Tests for the exhaustive planner and the greedy-vs-optimal comparison."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.optimal import (
    MAX_OPERATORS,
    free_closure,
    optimal_cost,
    paper_cost_of_plan,
)
from repro.core.plan import MatrixInstance
from repro.core.planner import DMacPlanner
from repro.errors import PlanError
from repro.lang.program import ProgramBuilder
from repro.matrix.schemes import Scheme

R, C, B = Scheme.ROW, Scheme.COL, Scheme.BROADCAST


class TestFreeClosure:
    def test_one_d_gains_transpose(self):
        state = free_closure(frozenset({MatrixInstance("A", False, R)}))
        assert MatrixInstance("A", True, C) in state
        assert MatrixInstance("A", False, C) not in state  # would cost

    def test_replica_gains_everything(self):
        state = free_closure(frozenset({MatrixInstance("A", False, B)}))
        assert len({i for i in state if i.name == "A"}) == 6  # all 2x3 forms

    def test_idempotent(self):
        state = free_closure(frozenset({MatrixInstance("A", False, R)}))
        assert free_closure(state) == state


class TestOptimalCost:
    def test_comm_free_program_costs_zero(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        b = pb.load("B", (8, 8))
        pb.output(pb.assign("C", (a + b) * a))
        assert optimal_cost(pb.build(), 4) == 0

    def test_single_matmul_cost_is_cheapest_strategy(self):
        pb = ProgramBuilder()
        a = pb.load("A", (100, 100))
        b = pb.load("B", (100, 4))
        pb.output(pb.assign("C", a @ b))
        # cheapest: RMM2 broadcasting tiny B: N * |B| = 4 * 8*100*4
        assert optimal_cost(pb.build(), 4) == 4 * 8 * 100 * 4

    def test_operator_limit_enforced(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        x = a
        for i in range(MAX_OPERATORS):
            x = pb.assign("X", x + a)
        pb.output(x)
        with pytest.raises(PlanError):
            optimal_cost(pb.build(), 4)

    def test_speculative_broadcast_found(self):
        """A program where broadcasting up front beats two repartitions --
        exactly the Pull-Up pattern; the search must find it."""
        pb = ProgramBuilder()
        a = pb.load("A", (10, 10))
        b = pb.load("B", (10, 10))
        c = pb.assign("C", a + b)
        d = pb.assign("D", c + a)
        e = pb.assign("E", a.T * d)
        g = pb.load("G", (1000, 10))
        pb.output(pb.assign("F", g @ a))
        pb.output(e)
        program = pb.build()
        workers = 4
        optimal = optimal_cost(program, workers)
        # it should not exceed: broadcast A once (N|A|) -- every A event free
        nbytes_a = 8 * 10 * 10
        assert optimal <= workers * nbytes_a


class TestGreedyVsOptimal:
    def greedy_cost(self, program, workers=4, **kwargs):
        plan = DMacPlanner(program, workers, **kwargs).plan()
        return paper_cost_of_plan(plan, workers)

    def test_greedy_matches_optimal_on_cellwise_chain(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        pb.output(pb.assign("C", (a + b) * (a - b)))
        program = pb.build()
        assert self.greedy_cost(program) == optimal_cost(program, 4) == 0

    def test_greedy_matches_optimal_on_single_matmul(self):
        pb = ProgramBuilder()
        a = pb.load("A", (100, 100))
        b = pb.load("B", (100, 4))
        pb.output(pb.assign("C", a @ b))
        program = pb.build()
        assert self.greedy_cost(program) == optimal_cost(program, 4)

    def test_greedy_matches_optimal_on_gram_matrix(self):
        pb = ProgramBuilder()
        a = pb.load("A", (200, 8))
        pb.output(pb.assign("G", a.T @ a))
        program = pb.build()
        assert self.greedy_cost(program) == optimal_cost(program, 4)

    def test_greedy_never_beats_optimal(self):
        """Sanity on a handful of structured programs."""
        programs = []
        pb = ProgramBuilder()
        v = pb.load("V", (64, 48), sparsity=0.1)
        w = pb.random("W", (64, 4))
        h = pb.random("H", (4, 48))
        pb.output(pb.assign("H", h * (w.T @ v) / (w.T @ w @ h)))
        programs.append(pb.build())

        pb = ProgramBuilder()
        r = pb.load("R", (16, 64), sparsity=0.1)
        pb.output(pb.assign("P", r @ r.T @ r))
        programs.append(pb.build())

        for program in programs:
            greedy = self.greedy_cost(program)
            optimal = optimal_cost(program, 4)
            assert greedy >= optimal
            # the greedy plan is within a small constant of optimal here
            assert greedy <= max(optimal * 3, optimal + 1)


@st.composite
def small_programs(draw):
    """Small random programs (<= ~9 operators) for greedy-vs-optimal."""
    pb = ProgramBuilder()
    m = draw(st.integers(2, 6))
    n = draw(st.integers(2, 6))
    a = pb.load("A", (m, n), sparsity=draw(st.sampled_from([0.2, 1.0])))
    b = pb.load("B", (m, n), sparsity=1.0)
    pool = [(a, (m, n)), (b, (m, n))]
    for index in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["gram", "cell", "matmulT"]))
        left, shape = pool[draw(st.integers(0, len(pool) - 1))]
        if kind == "gram":
            out = pb.assign(f"G{index}", left.T @ left)
            pool.append((out, (shape[1], shape[1])))
        elif kind == "cell":
            peers = [(h, s) for h, s in pool if s == shape]
            right, __ = peers[draw(st.integers(0, len(peers) - 1))]
            out = pb.assign(f"C{index}", left * right)
            pool.append((out, shape))
        else:
            peers = [(h, s) for h, s in pool if s[1] == shape[1]]
            right, rshape = peers[draw(st.integers(0, len(peers) - 1))]
            out = pb.assign(f"M{index}", left @ right.T)
            pool.append((out, (shape[0], rshape[0])))
    pb.output(pool[-1][0])
    return pb.build()


@given(small_programs(), st.integers(2, 5))
def test_property_greedy_at_least_optimal(program, workers):
    plan = DMacPlanner(program, workers).plan()
    greedy = paper_cost_of_plan(plan, workers)
    optimal = optimal_cost(program, workers)
    assert greedy >= optimal

"""Tests for the DMac plan generator: chains, heuristics, paper claims."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.executor import PlanExecutor
from repro.core.plan import ExtendedStep, SourceStep
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import PlanError
from repro.lang.program import ProgramBuilder
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext


def plan_for(program, workers=4, **kwargs):
    return DMacPlanner(program, workers, **kwargs).plan()


def partition_steps(plan, name=None):
    return [
        s
        for s in plan.steps
        if isinstance(s, ExtendedStep)
        and s.kind == "partition"
        and (name is None or s.source.name == name)
    ]


def broadcast_steps(plan, name=None):
    return [
        s
        for s in plan.steps
        if isinstance(s, ExtendedStep)
        and s.kind == "broadcast"
        and (name is None or s.source.name == name)
    ]


class TestBasicPlanning:
    def test_cellwise_on_fresh_sources_is_comm_free(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        pb.output(pb.assign("C", a + b))
        plan = plan_for(pb.build())
        assert plan.predicted_bytes == 0
        assert plan.communicating_steps() == []

    def test_chained_cellwise_reuses_schemes(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        c = pb.assign("C", a + b)
        d = pb.assign("D", c * a)
        pb.output(pb.assign("E", d - b))
        plan = plan_for(pb.build())
        assert plan.predicted_bytes == 0

    def test_transpose_dependency_is_free(self):
        """A and A^T are mutually derivable without communication."""
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        c = pb.assign("C", a + b)  # locks A's scheme
        pb.output(pb.assign("D", a.T + c.T))  # both satisfiable by transpose
        plan = plan_for(pb.build())
        assert plan.predicted_bytes == 0

    def test_plan_is_deterministic(self):
        def build():
            pb = ProgramBuilder()
            v = pb.load("V", (32, 24), sparsity=0.1)
            w = pb.random("W", (32, 4))
            h = pb.random("H", (4, 24))
            pb.output(pb.assign("H", h * (w.T @ v) / (w.T @ w @ h)))
            return pb.build()

        first = plan_for(build())
        second = plan_for(build())
        assert [str(s) for s in first.steps] == [str(s) for s in second.steps]

    def test_operand_before_production_rejected(self):
        from repro.lang.program import MatMulOp, MatrixProgram, Operand

        program = MatrixProgram(
            ops=(MatMulOp("C", Operand("A"), Operand("B")),),
            dims={"A": (4, 4), "B": (4, 4), "C": (4, 4)},
            input_sparsity={},
            outputs=("C",),
            scalar_outputs=(),
            bindings={},
        )
        with pytest.raises(PlanError):
            plan_for(program)

    def test_output_never_materialised_rejected(self):
        from repro.lang.program import LoadOp, MatrixProgram

        program = MatrixProgram(
            ops=(LoadOp("A", 4, 4, 1.0),),
            dims={"A": (4, 4)},
            input_sparsity={"A": 1.0},
            outputs=("ghost",),
            scalar_outputs=(),
            bindings={},
        )
        with pytest.raises(PlanError):
            plan_for(program)


class TestReassignment:
    def test_source_scheme_bound_lazily(self):
        """A load consumed first under Column should be laid out Column."""
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        tiny = pb.random("t", (4, 32))
        pb.output(pb.assign("C", tiny @ a))  # RMM1 wants A(c)
        plan = plan_for(pb.build())
        source = next(
            s for s in plan.steps if isinstance(s, SourceStep) and s.op.output == "A"
        )
        assert source.output.scheme is Scheme.COL
        assert partition_steps(plan, "A") == []

    def test_reassignment_locked_after_first_consumer(self):
        """Once consumed under Row, the source cannot flip to serve a later
        Column-preferring operator: the later op must pay (here CPMM's
        output shuffle is the cheapest remaining option)."""
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        b = pb.load("B", (32, 32))
        pb.assign("C", a + b)  # consumes A under a 1-D scheme (Row by tie)
        tiny = pb.random("t", (4, 32))
        pb.output(pb.assign("D", tiny @ a))
        plan = plan_for(pb.build(), **{"pull_up_broadcast": False})
        source = next(
            s for s in plan.steps if isinstance(s, SourceStep) and s.op.output == "A"
        )
        assert source.output.scheme is Scheme.ROW  # locked, not rebound
        assert plan.predicted_bytes > 0  # the later op pays communication

    def test_disabled_reassignment_pays(self):
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        tiny = pb.random("t", (4, 32))
        pb.output(pb.assign("C", tiny @ a))
        with_h = plan_for(pb.build(), re_assignment=True)

        pb2 = ProgramBuilder()
        a = pb2.load("A", (32, 32))
        tiny = pb2.random("t", (4, 32))
        pb2.output(pb2.assign("C", tiny @ a))
        without_h = plan_for(pb2.build(), re_assignment=False, pull_up_broadcast=False)
        assert with_h.predicted_bytes <= without_h.predicted_bytes


def pull_up_program():
    """A is repartitioned for one op, then needed Broadcast by a later one:
    the exact Heuristic 1 scenario."""
    pb = ProgramBuilder()
    a = pb.load("A", (10, 10))
    b = pb.load("B", (10, 10))
    c = pb.assign("C", a + b)  # locks A(r)/B(r)
    d = pb.assign("D", c + a)
    e = pb.assign("E", a.T * d)  # forces a paid repartition of A^T
    g = pb.load("G", (1000, 10))
    pb.output(pb.assign("F", g @ a))  # RMM2 wants A broadcast
    pb.output(e)
    return pb.build()


class TestPullUpBroadcast:
    def test_partition_converted_to_broadcast_extract(self):
        plan = plan_for(pull_up_program(), pull_up_broadcast=True)
        assert partition_steps(plan, "A") == []
        assert len(broadcast_steps(plan, "A")) == 1
        extracts = [
            s
            for s in plan.steps
            if isinstance(s, ExtendedStep) and s.kind == "extract" and s.source.name == "A"
        ]
        assert extracts, "the pulled-up replica must be extracted locally"

    def test_without_pull_up_both_costs_paid(self):
        plan = plan_for(pull_up_program(), pull_up_broadcast=False)
        assert len(partition_steps(plan, "A")) == 1
        assert len(broadcast_steps(plan, "A")) == 1

    def test_pull_up_reduces_predicted_bytes(self):
        with_h = plan_for(pull_up_program(), pull_up_broadcast=True)
        without_h = plan_for(pull_up_program(), pull_up_broadcast=False)
        assert with_h.predicted_bytes < without_h.predicted_bytes

    def test_pull_up_plan_still_correct(self, rng):
        program = pull_up_program()
        arrays = {
            "A": rng.random((10, 10)),
            "B": rng.random((10, 10)),
            "G": rng.random((1000, 10)),
        }
        results = {}
        for flag in (True, False):
            plan = schedule_stages(plan_for(program, pull_up_broadcast=flag))
            ctx = ClusterContext(ClusterConfig(num_workers=4, block_size=5))
            results[flag] = PlanExecutor(ctx, 5).execute(plan, arrays)
        f_true = results[True].matrices["F"]
        f_false = results[False].matrices["F"]
        expected = arrays["G"] @ arrays["A"]
        np.testing.assert_allclose(f_true, expected, atol=1e-9)
        np.testing.assert_allclose(f_false, expected, atol=1e-9)
        assert results[True].comm_bytes < results[False].comm_bytes


class TestPaperClaims:
    def test_linreg_partitions_v_once_for_whole_program(self):
        """Section 6.5: 'the input matrix V only needs to be partitioned once
        through the whole computation process'."""
        from repro.programs import build_linreg_program

        program = build_linreg_program((400, 50), 0.05, iterations=5)
        plan = plan_for(program)
        assert len(partition_steps(plan, "V")) == 0
        assert len(broadcast_steps(plan, "V")) == 0

    def test_gnmf_cellwise_ops_are_comm_free(self):
        """Section 6.2: the H * (WtV) / (WtWH) phase runs without any
        communication in DMac."""
        from repro.core.plan import CellwiseStep
        from repro.programs import build_gnmf_program

        program = build_gnmf_program((64, 48), 0.1, factors=4, iterations=2)
        plan = schedule_stages(plan_for(program))
        for step in plan.steps:
            if isinstance(step, CellwiseStep):
                assert not step.communicates

    def test_pagerank_link_never_moves_after_load(self):
        """Section 6.4: only the small rank vector travels each iteration;
        the link matrix is cached in one scheme."""
        from repro.programs import build_pagerank_program

        program = build_pagerank_program(256, 0.05, iterations=5)
        plan = plan_for(program)
        assert partition_steps(plan, "link") == []
        assert broadcast_steps(plan, "link") == []

    def test_gnmf_dmac_beats_systemml_prediction(self):
        """The whole point: dependency-aware planning moves far less data."""
        from repro.core.estimator import SizeEstimator
        from repro.core.strategies import candidate_strategies
        from repro.programs import build_gnmf_program

        program = build_gnmf_program((128, 96), 0.05, factors=8, iterations=3)
        dmac_plan = plan_for(program)
        # SystemML-S lower bound: every matmul input repartitions.
        estimator = SizeEstimator(program)
        from repro.lang.program import MatMulOp

        baseline_bytes = sum(
            min(
                sum(
                    4 * estimator.nbytes(operand.name)
                    if scheme is Scheme.BROADCAST
                    else estimator.nbytes(operand.name)
                    for operand, scheme in zip(op.matrix_inputs(), s.input_schemes)
                )
                for s in candidate_strategies(op)
            )
            for op in program.ops
            if isinstance(op, MatMulOp)
        )
        assert dmac_plan.predicted_bytes < baseline_bytes / 2

"""Structural planner invariants, property-tested over random programs.

These pin the internal consistency of Algorithm 1's output independently of
its cost quality:

* production before consumption, with no duplicate instance registrations,
* dependency chains of at most two extended steps per input event
  (Table 2: one free local step + one communicating step),
* plans are deterministic functions of (program, workers, flags),
* every compute operator of the program appears exactly once in the plan,
* predicted bytes is exactly the sum over communicating steps of the cost
  model's charge.
"""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimator import SizeEstimator
from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    MatMulStep,
    RowAggStep,
    ScalarMatrixStep,
    SourceStep,
    UnaryStep,
)
from repro.core.planner import DMacPlanner
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    MatMulOp,
    ProgramBuilder,
    RowAggOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)


@st.composite
def programs(draw):
    """Random programs exercising every operator class."""
    pb = ProgramBuilder()
    m = draw(st.integers(2, 8))
    n = draw(st.integers(2, 8))
    a = pb.load("A", (m, n), sparsity=draw(st.sampled_from([0.1, 0.5, 1.0])))
    b = pb.load("B", (m, n))
    pool = [(a, (m, n)), (b, (m, n))]
    for index in range(draw(st.integers(1, 6))):
        kind = draw(
            st.sampled_from(["gram", "cell", "scalar", "unary", "rowsum", "agg"])
        )
        handle, shape = pool[draw(st.integers(0, len(pool) - 1))]
        name = f"X{index}"
        if kind == "gram":
            out = pb.assign(name, handle.T @ handle)
            pool.append((out, (shape[1], shape[1])))
        elif kind == "cell":
            peers = [(h, s) for h, s in pool if s == shape]
            other, __ = peers[draw(st.integers(0, len(peers) - 1))]
            out = pb.assign(name, handle * other)
            pool.append((out, shape))
        elif kind == "scalar":
            out = pb.assign(name, handle * draw(st.floats(-2, 2, allow_nan=False)))
            pool.append((out, shape))
        elif kind == "unary":
            func = draw(st.sampled_from(["abs", "sigmoid", "exp"]))
            from repro.lang.expr import UnaryExpr

            out = pb.assign(name, UnaryExpr(func, handle))
            pool.append((out, shape))
        elif kind == "rowsum":
            out = pb.assign(name, handle.row_sums())
            pool.append((out, (shape[0], 1)))
        else:
            pb.scalar(f"s{index}", handle.sum())
    pb.output(pool[-1][0])
    return pb.build()


workers_strategy = st.integers(1, 6)


@given(programs(), workers_strategy)
def test_production_before_consumption(program, workers):
    plan = DMacPlanner(program, workers).plan()
    produced = set()
    for step in plan.steps:
        for instance in step.inputs():
            assert instance in produced, f"{step} consumes unproduced {instance}"
        output = getattr(step, "output", None) or getattr(step, "target", None)
        if output is not None:
            assert output not in produced, f"{output} produced twice"
            produced.add(output)


@given(programs(), workers_strategy)
def test_chains_have_at_most_one_comm_step_per_matrix_event(program, workers):
    """Between two compute steps, a matrix never pays twice: consecutive
    extended steps on the same logical matrix contain at most one
    communicating step (Table 2 lowering)."""
    plan = DMacPlanner(program, workers).plan()
    run_comm = 0
    previous_name = None
    for step in plan.steps:
        if isinstance(step, ExtendedStep):
            if step.source.name != previous_name:
                run_comm = 0
            if step.communicates:
                run_comm += 1
                assert run_comm <= 1
            previous_name = step.source.name
        else:
            run_comm = 0
            previous_name = None


@given(programs(), workers_strategy)
def test_plan_is_deterministic(program, workers):
    first = DMacPlanner(program, workers).plan()
    second = DMacPlanner(program, workers).plan()
    assert [str(s) for s in first.steps] == [str(s) for s in second.steps]
    assert first.predicted_bytes == second.predicted_bytes


@given(programs(), workers_strategy)
def test_every_operator_planned_exactly_once(program, workers):
    plan = DMacPlanner(program, workers).plan()
    planned = Counter()
    for step in plan.steps:
        if isinstance(
            step,
            (SourceStep, MatMulStep, CellwiseStep, ScalarMatrixStep, UnaryStep,
             RowAggStep, AggregateStep),
        ):
            planned[step.op.output] += 1
    for op in program.ops:
        if isinstance(
            op,
            (MatMulOp, CellwiseOp, ScalarMatrixOp, UnaryMatrixOp, RowAggOp, AggregateOp),
        ):
            assert planned[op.output] == 1, op


@given(programs(), workers_strategy)
def test_predicted_bytes_decomposes_over_comm_steps(program, workers):
    plan = DMacPlanner(program, workers).plan()
    estimator = SizeEstimator(program)
    total = 0
    for step in plan.steps:
        if isinstance(step, ExtendedStep) and step.communicates:
            nbytes = estimator.nbytes(step.source.name)
            total += (workers - 1) * nbytes if step.kind == "broadcast" else nbytes
        elif isinstance(step, (MatMulStep, RowAggStep)) and step.communicates:
            total += (workers - 1) * estimator.nbytes(step.output.name)
    assert total == plan.predicted_bytes


@given(programs())
def test_single_worker_plans_predict_nothing_physical(program):
    """On one worker the physical run moves zero bytes regardless of what
    the (worker-count-agnostic) cost model predicted."""
    import numpy as np

    from repro.config import ClusterConfig
    from repro.core.executor import PlanExecutor
    from repro.rdd.context import ClusterContext

    plan = DMacPlanner(program, 1).plan()
    ctx = ClusterContext(ClusterConfig(num_workers=1, block_size=3))
    rng = np.random.default_rng(0)
    inputs = {
        name: rng.random(program.dims[name])
        for name in program.input_sparsity
    }
    result = PlanExecutor(ctx, 3).execute(plan, inputs)
    assert result.comm_bytes == 0

"""Planner scalability smoke tests: planning cost must stay practical for
long unrolled programs (the paper plans 10-iteration GNMF jobs; users will
plan far longer loops)."""

import time

from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.programs import build_gnmf_program, build_linreg_program


def test_fifty_iteration_gnmf_plans_quickly():
    program = build_gnmf_program((1024, 768), 0.01, factors=16, iterations=50)
    start = time.perf_counter()
    plan = schedule_stages(DMacPlanner(program, 8).plan())
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"planning took {elapsed:.1f}s"
    assert plan.num_stages > 50


def test_planning_cost_roughly_linear_in_iterations():
    def plan_time(iterations: int) -> float:
        program = build_linreg_program((512, 64), 0.05, iterations=iterations)
        start = time.perf_counter()
        DMacPlanner(program, 4).plan()
        return time.perf_counter() - start

    plan_time(2)  # warm-up
    ten = plan_time(10)
    forty = plan_time(40)
    # allow generous noise but catch quadratic blow-ups (x16 would fail)
    assert forty < ten * 12 + 0.05


def test_instance_table_stays_bounded():
    """Per-iteration SSA versions must not leak instances unboundedly for a
    *single* logical matrix: the table is keyed per version name."""
    program = build_gnmf_program((256, 192), 0.05, factors=8, iterations=20)
    planner = DMacPlanner(program, 4)
    planner.plan()
    per_name = {name: len(instances) for name, instances in planner._table.items()}
    # every version has at most the 6 possible (transposed, scheme) forms
    assert max(per_name.values()) <= 6

"""Property-based tests over the whole planning + execution pipeline.

The key invariant: for *any* matrix program, executing the DMac plan on the
simulated cluster produces exactly what numpy produces -- regardless of the
strategies, dependencies and repartitions the planner chose.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.rlocal import run_local
from repro.baselines.systemml import SystemMLSExecutor
from repro.config import ClusterConfig
from repro.core.estimator import SizeEstimator
from repro.core.executor import PlanExecutor
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages, validate_stage_invariant
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext


@st.composite
def random_programs(draw):
    """A random straight-line matrix program plus matching input arrays.

    Starts from a few loads of compatible shapes and composes a chain of
    random operations (matmul / cellwise / scalar / transpose), keeping a
    pool of live expressions keyed by shape.
    """
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    m = draw(st.integers(2, 10))
    n = draw(st.integers(2, 10))
    pb = ProgramBuilder()
    inputs = {}
    pool = []  # (handle, shape)

    for index in range(draw(st.integers(1, 3))):
        name = f"I{index}"
        density = draw(st.sampled_from([0.2, 0.6, 1.0]))
        array = rng.random((m, n))
        array[rng.random((m, n)) > density] = 0.0
        # Declare the *measured* sparsity: the paper's estimator assumes the
        # input sparsity is pre-computed offline (Section 5.1).
        measured = np.count_nonzero(array) / array.size
        handle = pb.load(name, (m, n), sparsity=measured)
        inputs[name] = array
        pool.append((handle, (m, n)))

    steps = draw(st.integers(1, 6))
    counter = 0
    for __ in range(steps):
        kind = draw(st.sampled_from(["matmul", "cellwise", "scalar", "transpose_mix"]))
        left, lshape = pool[draw(st.integers(0, len(pool) - 1))]
        counter += 1
        name = f"X{counter}"
        if kind == "matmul":
            right, rshape = pool[draw(st.integers(0, len(pool) - 1))]
            # left @ right.T is always shape-compatible when cols match
            if lshape[1] == rshape[1]:
                out = pb.assign(name, left @ right.T)
                pool.append((out, (lshape[0], rshape[0])))
            else:
                out = pb.assign(name, left.T @ left)
                pool.append((out, (lshape[1], lshape[1])))
        elif kind == "cellwise":
            candidates = [(h, s) for h, s in pool if s == lshape]
            right, __ = candidates[draw(st.integers(0, len(candidates) - 1))]
            op = draw(st.sampled_from(["add", "subtract", "multiply"]))
            expr = {"add": left + right, "subtract": left - right, "multiply": left * right}[op]
            out = pb.assign(name, expr)
            pool.append((out, lshape))
        elif kind == "scalar":
            factor = draw(st.floats(min_value=-2, max_value=2, allow_nan=False))
            out = pb.assign(name, left * factor)
            pool.append((out, lshape))
        else:  # transpose_mix: T @ self
            out = pb.assign(name, left.T @ left)
            pool.append((out, (lshape[1], lshape[1])))

    handle, __ = pool[-1]
    pb.output(handle)
    return pb.build(), inputs


@given(random_programs(), st.integers(1, 5))
def test_dmac_execution_matches_numpy(program_and_inputs, workers):
    program, inputs = program_and_inputs
    plan = schedule_stages(DMacPlanner(program, workers).plan())
    validate_stage_invariant(plan)
    ctx = ClusterContext(ClusterConfig(num_workers=workers, block_size=3))
    result = PlanExecutor(ctx, 3).execute(plan, inputs)
    reference = run_local(program, inputs)
    for name in program.outputs:
        np.testing.assert_allclose(
            result.matrices[name], reference.matrices[name], atol=1e-8
        )


@given(random_programs())
def test_systemml_execution_matches_numpy(program_and_inputs):
    program, inputs = program_and_inputs
    ctx = ClusterContext(ClusterConfig(num_workers=4, block_size=3))
    result = SystemMLSExecutor(ctx, 3).execute(program, inputs)
    reference = run_local(program, inputs)
    for name in program.outputs:
        np.testing.assert_allclose(
            result.matrices[name], reference.matrices[name], atol=1e-8
        )


@given(random_programs())
def test_measured_traffic_never_exceeds_prediction(program_and_inputs):
    program, inputs = program_and_inputs
    plan = schedule_stages(DMacPlanner(program, 4).plan())
    ctx = ClusterContext(ClusterConfig(num_workers=4, block_size=3))
    result = PlanExecutor(ctx, 3).execute(plan, inputs)
    # worst-case sizes + whole-matrix moves upper-bound physical traffic;
    # allow record-framing slack
    assert result.comm_bytes <= plan.predicted_bytes * 1.5 + 8192


@given(random_programs())
def test_estimator_is_worst_case(program_and_inputs):
    program, inputs = program_and_inputs
    estimator = SizeEstimator(program)
    reference = run_local(program, inputs)
    for name, array in reference.matrices.items():
        true_sparsity = np.count_nonzero(array) / array.size
        assert true_sparsity <= estimator.sparsity(name) + 1e-12


@given(random_programs())
def test_dmac_never_predicts_more_than_systemml_measures(program_and_inputs):
    """Dependency information can only remove communication."""
    program, inputs = program_and_inputs
    plan = schedule_stages(DMacPlanner(program, 4).plan())
    ctx = ClusterContext(ClusterConfig(num_workers=4, block_size=3))
    dmac = PlanExecutor(ctx, 3).execute(plan, inputs)
    ctx2 = ClusterContext(ClusterConfig(num_workers=4, block_size=3))
    systemml = SystemMLSExecutor(ctx2, 3).execute(program, inputs)
    assert dmac.comm_bytes <= systemml.comm_bytes + 4096

"""Tests for the row/column aggregation operators across the whole stack."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.estimator import SizeEstimator
from repro.core.plan import RowAggStep
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages, validate_stage_invariant
from repro.errors import ProgramError
from repro.lang.program import ProgramBuilder
from repro.session import DMacSession
from tests.conftest import random_sparse


def session():
    return DMacSession(ClusterConfig(num_workers=4, threads_per_worker=1, block_size=6))


class TestLanguage:
    def test_row_sums_shape(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 7))
        out = pb.assign("R", a.row_sums())
        assert pb.build().dims[out.name] == (10, 1)

    def test_col_sums_shape(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 7))
        out = pb.assign("C", a.col_sums())
        assert pb.build().dims[out.name] == (1, 7)

    def test_transposed_operand_shape(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 7))
        out = pb.assign("R", a.T.row_sums())
        assert pb.build().dims[out.name] == (7, 1)

    def test_bad_kind_rejected(self):
        from repro.lang.expr import RowAggExpr, MatrixRefExpr

        with pytest.raises(ProgramError):
            RowAggExpr("diag", MatrixRefExpr("A"))


class TestEstimator:
    def test_union_bound(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 5), sparsity=0.1)
        pb.output(pb.assign("R", a.row_sums()))
        est = SizeEstimator(pb.build())
        # each of the 5 entries in a row is non-zero with prob <= 0.1
        assert est.sparsity(pb.build().bindings["R"]) == pytest.approx(0.5)

    def test_caps_at_one(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 50), sparsity=0.1)
        pb.output(pb.assign("R", a.row_sums()))
        assert SizeEstimator(pb.build()).sparsity("R") == 1.0

    def test_estimate_dominates_truth(self, rng):
        pb = ProgramBuilder()
        array = random_sparse(rng, 12, 9, 0.3)
        measured = np.count_nonzero(array) / array.size
        a = pb.load("A", (12, 9), sparsity=measured)
        pb.output(pb.assign("R", a.row_sums()))
        est = SizeEstimator(pb.build())
        true_sparsity = np.count_nonzero(array.sum(1)) / 12
        assert true_sparsity <= est.sparsity("R") + 1e-12


class TestPlanner:
    def test_aligned_input_is_free(self):
        pb = ProgramBuilder()
        a = pb.load("A", (24, 24))
        b = pb.load("B", (24, 24))
        pb.assign("C", a + b)  # locks A to a 1-D scheme
        pb.output(pb.assign("R", a.row_sums()))
        plan = DMacPlanner(pb.build(), 4).plan()
        step = next(s for s in plan.steps if isinstance(s, RowAggStep))
        assert not step.communicates
        assert plan.predicted_bytes == 0

    def test_opposed_prefers_cheap_partial_shuffle(self):
        """col_sums on a Row-locked matrix: repartitioning the whole matrix
        costs |A|; the opposed strategy only shuffles the tiny partial-sum
        vector, so the planner picks it."""
        pb = ProgramBuilder()
        a = pb.load("A", (24, 24))
        b = pb.load("B", (24, 24))
        pb.assign("C", a + b)  # locks A(r)
        pb.output(pb.assign("R", a.row_sums()))  # free (aligned)
        pb.output(pb.assign("S", a.col_sums()))  # opposed: partial shuffle
        plan = DMacPlanner(pb.build(), 4).plan()
        agg_steps = [s for s in plan.steps if isinstance(s, RowAggStep)]
        assert sum(s.communicates for s in agg_steps) == 1
        # and the price is the vector's size, far below repartitioning A
        from repro.core.estimator import SizeEstimator

        estimator = SizeEstimator(pb.build())
        assert plan.predicted_bytes < estimator.nbytes("A")

    def test_broadcast_input_served_by_replica(self):
        pb = ProgramBuilder()
        a = pb.load("A", (24, 4))
        g = pb.load("G", (512, 24))
        pb.output(pb.assign("P", g @ a))  # broadcasts the small A
        pb.output(pb.assign("R", a.row_sums()))
        plan = DMacPlanner(pb.build(), 4).plan()
        step = next(s for s in plan.steps if isinstance(s, RowAggStep))
        assert not step.communicates  # replica or original serves it free

    def test_stage_invariant_with_rowagg(self):
        pb = ProgramBuilder()
        a = pb.load("A", (24, 24))
        r = pb.assign("R", a.row_sums())
        pb.output(pb.assign("X", r * 2.0))
        plan = schedule_stages(DMacPlanner(pb.build(), 4).plan())
        validate_stage_invariant(plan)


class TestExecution:
    @pytest.mark.parametrize("kind", ["row", "col"])
    def test_matches_numpy(self, rng, kind):
        array = random_sparse(rng, 23, 17, 0.3)
        measured = np.count_nonzero(array) / array.size
        pb = ProgramBuilder()
        a = pb.load("A", (23, 17), sparsity=measured)
        expr = a.row_sums() if kind == "row" else a.col_sums()
        pb.output(pb.assign("R", expr))
        result = session().run(pb.build(), {"A": array})
        expected = array.sum(axis=1 if kind == "row" else 0, keepdims=True)
        np.testing.assert_allclose(result.matrices["R"], expected, atol=1e-10)

    def test_systemml_matches(self, rng):
        array = random_sparse(rng, 23, 17, 0.3)
        pb = ProgramBuilder()
        a = pb.load("A", (23, 17), sparsity=0.3)
        pb.output(pb.assign("R", a.row_sums()))
        pb.output(pb.assign("C", a.col_sums()))
        dmac = session().run(pb.build(), {"A": array})
        systemml = session().run_systemml(pb.build(), {"A": array})
        for name in ("R", "C"):
            np.testing.assert_allclose(dmac.matrices[name], systemml.matrices[name])

    def test_usable_downstream(self, rng):
        """Row sums feeding a multiplication: full pipeline composition."""
        array = rng.random((16, 12))
        pb = ProgramBuilder()
        a = pb.load("A", (16, 12))
        r = pb.assign("R", a.row_sums())  # 16 x 1
        pb.output(pb.assign("G", r.T @ a))  # 1 x 12
        result = session().run(pb.build(), {"A": array})
        expected = array.sum(1, keepdims=True).T @ array
        np.testing.assert_allclose(result.matrices["G"], expected, atol=1e-9)

    def test_normalised_pagerank_style(self, rng):
        """rank / rank.sum() -- aggregation to scalar after row aggregation."""
        array = rng.random((1, 20))
        pb = ProgramBuilder()
        a = pb.load("A", (1, 20))
        total = pb.scalar("t", a.sum())
        pb.output(pb.assign("N", a * (1.0 / total)))
        result = session().run(pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["N"].sum(), 1.0)


class TestOptimalIntegration:
    def test_rowagg_in_exhaustive_search(self):
        from repro.core.optimal import optimal_cost, paper_cost_of_plan

        pb = ProgramBuilder()
        a = pb.load("A", (24, 24))
        pb.output(pb.assign("R", a.row_sums()))
        pb.output(pb.assign("C", a.col_sums()))
        program = pb.build()
        optimal = optimal_cost(program, 4)
        greedy = paper_cost_of_plan(DMacPlanner(program, 4).plan(), 4)
        # One aggregation is free (aligned with the source scheme); the
        # other pays the N x |vector| partial shuffle at minimum.
        from repro.core.estimator import SizeEstimator

        vector_bytes = SizeEstimator(program).nbytes(program.bindings["C"])
        assert optimal == 4 * vector_bytes
        assert greedy >= optimal

"""Tests for the stage scheduler (Section 5.2)."""

import pytest

from repro.core.plan import CellwiseStep
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages, validate_stage_invariant
from repro.lang.program import ProgramBuilder


def staged_plan(program, workers=4):
    return schedule_stages(DMacPlanner(program, workers).plan())


class TestBasicScheduling:
    def test_comm_free_program_is_one_stage(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        b = pb.load("B", (16, 16))
        pb.output(pb.assign("C", (a + b) * a - b))
        plan = staged_plan(pb.build())
        assert plan.num_stages == 1
        assert all(step.stage == 1 for step in plan.steps)

    def test_broadcast_cuts_a_stage(self):
        pb = ProgramBuilder()
        a = pb.load("A", (64, 64))
        b = pb.load("B", (64, 4))
        pb.output(pb.assign("C", a @ b))  # some strategy must move A or B
        plan = staged_plan(pb.build())
        assert plan.num_stages >= 2

    def test_stage_numbers_start_at_one(self):
        pb = ProgramBuilder()
        pb.output(pb.load("A", (4, 4)))
        plan = staged_plan(pb.build())
        assert min(step.stage for step in plan.steps) == 1

    def test_idempotent(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        pb.output(pb.assign("B", a + a))
        plan = staged_plan(pb.build())
        stages = [s.stage for s in plan.steps]
        schedule_stages(plan)
        assert [s.stage for s in plan.steps] == stages


class TestStageInvariant:
    def gnmf_plan(self):
        from repro.programs import build_gnmf_program

        return staged_plan(build_gnmf_program((64, 48), 0.1, factors=4, iterations=2))

    def test_validate_passes_on_real_plan(self):
        validate_stage_invariant(self.gnmf_plan())

    def test_comm_outputs_only_consumed_later(self):
        plan = self.gnmf_plan()
        produced_stage = {}
        for step in plan.steps:
            for instance in step.inputs():
                if instance in produced_stage:
                    # a communicating producer's output lands one stage later
                    assert step.stage >= produced_stage[instance]
            output = getattr(step, "output", None) or getattr(step, "target", None)
            if output is not None:
                produced_stage[output] = step.stage + (1 if step.communicates else 0)

    def test_no_comm_step_inside_consumer_stage(self):
        """The defining property: within one stage, nothing communicates
        between the production and consumption of an instance."""
        plan = self.gnmf_plan()
        for step in plan.steps:
            if isinstance(step, (CellwiseStep,)):
                # cellwise is always comm-free and runs in its inputs' stage
                assert not step.communicates

    def test_validator_rejects_corrupted_schedule(self):
        plan = self.gnmf_plan()
        victim = next(s for s in plan.steps if s.communicates)
        # Pretend the communicating step ran one stage later than its input allows
        consumers = [
            s
            for s in plan.steps
            if any(
                i == (getattr(victim, "output", None) or getattr(victim, "target", None))
                for i in s.inputs()
            )
        ]
        if consumers:
            consumers[0].stage = victim.stage  # too early: comm not finished
            from repro.errors import PlanError

            with pytest.raises(PlanError):
                validate_stage_invariant(plan)

    def test_stage_count_grows_with_iterations(self):
        from repro.programs import build_gnmf_program

        one = staged_plan(build_gnmf_program((64, 48), 0.1, factors=4, iterations=1))
        three = staged_plan(build_gnmf_program((64, 48), 0.1, factors=4, iterations=3))
        assert three.num_stages > one.num_stages

    def test_gnmf_iteration_stage_count_matches_paper_scale(self):
        """Figure 3: one GNMF iteration schedules into a handful (~5) of
        stages, not one per operator."""
        from repro.programs import build_gnmf_program

        program = build_gnmf_program((64, 48), 0.1, factors=4, iterations=1)
        plan = staged_plan(program)
        operators = len(program.ops)
        assert plan.num_stages <= 7
        assert plan.num_stages < operators

"""Steady-state tests: iterative programs reach a per-iteration fixed point.

The paper's scalability argument (Section 6.5) rests on each iteration
costing the same: W is partitioned once per iteration, V never again.  If
that holds, the plan's predicted communication must be an *affine* function
of the iteration count -- a startup cost plus a constant per-iteration
delta.  These tests pin that for every iterative application.
"""

import pytest

from repro.core.planner import DMacPlanner
from repro.programs import (
    build_gnmf_program,
    build_linreg_program,
    build_logreg_program,
    build_pagerank_program,
)

WORKERS = 4


def predicted(builder, iterations):
    return DMacPlanner(builder(iterations), WORKERS).plan().predicted_bytes


@pytest.mark.parametrize(
    "label,builder",
    [
        ("gnmf", lambda n: build_gnmf_program((128, 96), 0.1, factors=8, iterations=n)),
        ("linreg", lambda n: build_linreg_program((256, 32), 0.1, iterations=n)),
        ("logreg", lambda n: build_logreg_program((256, 32), 0.1, iterations=n)),
        ("pagerank", lambda n: build_pagerank_program(128, 0.05, iterations=n)),
    ],
)
def test_predicted_comm_is_affine_in_iterations(label, builder):
    costs = {n: predicted(builder, n) for n in (1, 2, 3, 5)}
    delta_12 = costs[2] - costs[1]
    delta_23 = costs[3] - costs[2]
    assert delta_12 == delta_23, f"{label}: no steady state after iteration 1"
    # extrapolate to 5 iterations from the affine model
    assert costs[5] == costs[2] + 3 * delta_23, label


def test_gnmf_extra_iterations_never_move_v_again():
    """V moves at most once, in the startup portion: the steps added by an
    extra iteration never repartition or broadcast V."""
    builder = lambda n: build_gnmf_program((512, 384), 0.02, factors=8, iterations=n)
    two = {str(s) for s in DMacPlanner(builder(2), WORKERS).plan().communicating_steps()}
    three = DMacPlanner(builder(3), WORKERS).plan().communicating_steps()
    added = [s for s in three if str(s) not in two]
    assert added, "the extra iteration must add communicating steps"
    for step in added:
        source = getattr(step, "source", None)
        assert source is None or source.name != "V", step


def test_pagerank_per_iteration_delta_is_rank_sized():
    """Only the (broadcast) rank vector travels per iteration."""
    from repro.core.estimator import SizeEstimator

    nodes = 256
    builder = lambda n: build_pagerank_program(nodes, 0.05, iterations=n)
    program = builder(1)
    rank_bytes = SizeEstimator(program).nbytes("rank")
    delta = predicted(builder, 3) - predicted(builder, 2)
    link_bytes = SizeEstimator(program).nbytes("link")
    assert delta <= (WORKERS + 1) * rank_bytes
    assert delta < link_bytes

"""Tests for the strategy catalog (Figure 2) and the cost model (Section 4.1)."""

import pytest

from repro.core.cost import dependency_cost, output_cost
from repro.core.dependency import DependencyType
from repro.core.strategies import (
    CPMM,
    RMM1,
    RMM2,
    SOURCE_STRATEGY,
    candidate_strategies,
)
from repro.errors import PlanError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    LoadOp,
    MatMulOp,
    Operand,
    RandomOp,
    ScalarComputeOp,
    ScalarMatrixOp,
)
from repro.matrix.schemes import Scheme

R, C, B = Scheme.ROW, Scheme.COL, Scheme.BROADCAST


class TestCatalog:
    def test_matmul_has_figure2_strategies(self):
        strategies = candidate_strategies(MatMulOp("c", Operand("a"), Operand("b")))
        assert [s.name for s in strategies] == ["rmm1", "rmm2", "cpmm"]

    def test_rmm1_shapes(self):
        assert RMM1.input_schemes == (B, C)
        assert RMM1.output_schemes == (C,)
        assert not RMM1.shuffles_output

    def test_rmm2_shapes(self):
        assert RMM2.input_schemes == (R, B)
        assert RMM2.output_schemes == (R,)

    def test_cpmm_shapes(self):
        assert CPMM.input_schemes == (C, R)
        assert set(CPMM.output_schemes) == {R, C}
        assert CPMM.shuffles_output

    def test_cpmm_is_the_only_flexible_matmul(self):
        flexible = [
            s for s in candidate_strategies(MatMulOp("c", Operand("a"), Operand("b")))
            if len(s.output_schemes) > 1
        ]
        assert [s.name for s in flexible] == ["cpmm"]

    def test_cellwise_requires_aligned_schemes(self):
        for strategy in candidate_strategies(
            CellwiseOp("c", "add", Operand("a"), Operand("b"))
        ):
            assert strategy.input_schemes[0] is strategy.input_schemes[1]
            assert strategy.output_schemes == (strategy.input_schemes[0],)

    def test_scalar_preserves_scheme(self):
        for strategy in candidate_strategies(ScalarMatrixOp("c", "multiply", Operand("a"), 2.0)):
            assert strategy.output_schemes == (strategy.input_schemes[0],)

    def test_aggregate_accepts_any_scheme(self):
        schemes = {
            s.input_schemes[0]
            for s in candidate_strategies(AggregateOp("s", "sum", Operand("a")))
        }
        assert schemes == {R, C, B}

    def test_sources_are_flexible(self):
        for op in (LoadOp("v", 2, 2, 0.5), RandomOp("w", 2, 2, 0)):
            (strategy,) = candidate_strategies(op)
            assert strategy is SOURCE_STRATEGY
            assert set(strategy.output_schemes) == {R, C}

    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError):
            candidate_strategies(ScalarComputeOp("s"))


class TestCostModel:
    def test_free_dependencies_cost_zero(self):
        for dep in (
            DependencyType.REFERENCE,
            DependencyType.TRANSPOSE,
            DependencyType.EXTRACT,
            DependencyType.EXTRACT_TRANSPOSE,
        ):
            assert dependency_cost(dep, 1000, 4) == 0

    def test_partition_costs_matrix_size(self):
        assert dependency_cost(DependencyType.PARTITION, 1000, 4) == 1000
        assert dependency_cost(DependencyType.TRANSPOSE_PARTITION, 1000, 4) == 1000

    def test_broadcast_costs_n_times_size(self):
        assert dependency_cost(DependencyType.BROADCAST, 1000, 4) == 4000
        assert dependency_cost(DependencyType.TRANSPOSE_BROADCAST, 1000, 20) == 20000

    def test_cpmm_output_costs_n_times_size(self):
        assert output_cost(CPMM, 500, 4) == 2000

    def test_rmm_output_is_free(self):
        assert output_cost(RMM1, 500, 4) == 0
        assert output_cost(RMM2, 500, 4) == 0

"""Tests for element-wise unary operators across the stack, and the
logistic-regression application built on them."""

import numpy as np
import pytest

from repro.blocks.dense import DenseBlock
from repro.blocks.ops import UNARY_FUNCS, unary_flops, unary_op
from repro.blocks.sparse import CSCBlock
from repro.config import ClusterConfig
from repro.core.estimator import SizeEstimator
from repro.errors import BlockError, ProgramError
from repro.lang.program import ProgramBuilder
from repro.programs import build_logreg_program
from repro.session import DMacSession
from tests.conftest import random_sparse


def session(block=8):
    return DMacSession(ClusterConfig(num_workers=4, threads_per_worker=1, block_size=block))


class TestBlockKernels:
    @pytest.mark.parametrize("func", UNARY_FUNCS)
    @pytest.mark.parametrize("sparse", [False, True])
    def test_matches_numpy(self, rng, func, sparse):
        array = random_sparse(rng, 9, 7, 0.4) + 0.5  # positive (log/sqrt safe)
        block = CSCBlock.from_dense(array) if sparse else DenseBlock(array)
        result = unary_op(func, block)
        reference = {
            "exp": np.exp,
            "log": lambda x: np.where(x != 0, np.log(np.where(x != 0, x, 1.0)), -np.inf),
            "sqrt": np.sqrt,
            "abs": np.abs,
            "sign": np.sign,
            "sigmoid": lambda x: 1 / (1 + np.exp(-x)),
            "reciprocal": lambda x: np.where(x != 0, 1 / np.where(x != 0, x, 1.0), np.inf),
        }[func]
        with np.errstate(divide="ignore"):
            expected = reference(array)
        np.testing.assert_allclose(result.to_numpy(), expected, atol=1e-12)

    @pytest.mark.parametrize("func", ["abs", "sqrt", "sign"])
    def test_zero_preserving_keeps_sparse(self, rng, func):
        block = CSCBlock.from_dense(random_sparse(rng, 8, 8, 0.2))
        assert unary_op(func, block).is_sparse

    @pytest.mark.parametrize("func", ["exp", "sigmoid", "reciprocal"])
    def test_densifying_funcs_return_dense(self, rng, func):
        block = CSCBlock.from_dense(random_sparse(rng, 8, 8, 0.2))
        assert not unary_op(func, block).is_sparse

    def test_exp_of_implicit_zero_is_one(self):
        block = CSCBlock.empty(3, 3)
        np.testing.assert_array_equal(unary_op("exp", block).to_numpy(), np.ones((3, 3)))

    def test_sigmoid_stability_at_extremes(self):
        block = DenseBlock(np.array([[-1000.0, 1000.0]]))
        result = unary_op("sigmoid", block).to_numpy()
        assert result[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert result[0, 1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(result).all()

    def test_unknown_func_rejected(self):
        with pytest.raises(BlockError):
            unary_op("tanh", DenseBlock.zeros(2, 2))

    def test_flops(self, rng):
        sparse = CSCBlock.from_dense(random_sparse(rng, 8, 8, 0.25))
        assert unary_flops(sparse, "abs") == sparse.nnz
        assert unary_flops(sparse, "exp") == 64


class TestLanguageAndPlanning:
    def test_expr_methods_build_ops(self):
        from repro.lang.program import UnaryMatrixOp

        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        pb.output(pb.assign("B", a.sigmoid().exp()))
        ops = [op for op in pb.build().ops if isinstance(op, UnaryMatrixOp)]
        assert [op.func for op in ops] == ["sigmoid", "exp"]

    def test_unknown_func_rejected_in_expr(self):
        from repro.lang.expr import MatrixRefExpr, UnaryExpr

        with pytest.raises(ProgramError):
            UnaryExpr("tanh", MatrixRefExpr("A"))

    def test_estimator_sparsity(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 10), sparsity=0.2)
        pb.assign("P", a.abs())
        pb.output(pb.assign("E", a.exp()))
        est = SizeEstimator(pb.build())
        assert est.sparsity("P") == 0.2  # zero-preserving
        assert est.sparsity("E") == 1.0  # densifies

    def test_unary_is_comm_free_in_plan(self):
        from repro.core.planner import DMacPlanner

        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        pb.output(pb.assign("B", a.sigmoid() * a.exp()))
        plan = DMacPlanner(pb.build(), 4).plan()
        assert plan.predicted_bytes == 0

    def test_distributed_matches_local(self, rng):
        from repro.baselines.rlocal import run_local

        array = rng.random((20, 12)) - 0.5
        pb = ProgramBuilder()
        a = pb.load("A", (20, 12))
        pb.output(pb.assign("B", (a.sigmoid() - 0.5).abs()))
        program = pb.build()
        dist = session(block=4).run(program, {"A": array})
        local = run_local(program, {"A": array})
        np.testing.assert_allclose(dist.matrices["B"], local.matrices["B"], atol=1e-12)


class TestLogisticRegression:
    def make_data(self, rng, examples=400, features=12):
        design = rng.random((examples, features)) - 0.5
        true_w = rng.normal(size=(features, 1)) * 2
        probabilities = 1 / (1 + np.exp(-(design @ true_w)))
        labels = (rng.random((examples, 1)) < probabilities).astype(float)
        return design, labels, true_w

    def test_matches_numpy_reference(self, rng):
        design, labels, __ = self.make_data(rng)
        program = build_logreg_program(design.shape, 1.0, iterations=5, learning_rate=0.5)
        result = session(block=64).run(program, {"V": design, "y": labels})
        w = np.zeros((design.shape[1], 1))
        for __i in range(5):
            preds = 1 / (1 + np.exp(-(design @ w)))
            w = w - (design.T @ (preds - labels)) * (0.5 / design.shape[0])
        np.testing.assert_allclose(
            result.matrices[program.bindings["w"]], w, atol=1e-8
        )

    def test_learns_signal(self, rng):
        design, labels, true_w = self.make_data(rng, examples=800)
        program = build_logreg_program(design.shape, 1.0, iterations=80, learning_rate=2.0)
        result = session(block=128).run(program, {"V": design, "y": labels})
        learned = result.matrices[program.bindings["w"]]
        correlation = np.corrcoef(learned.ravel(), true_w.ravel())[0, 1]
        assert correlation > 0.9

    def test_error_decreases_with_iterations(self, rng):
        design, labels, __ = self.make_data(rng)
        inputs = {"V": design, "y": labels}
        short = build_logreg_program(design.shape, 1.0, iterations=2)
        long = build_logreg_program(design.shape, 1.0, iterations=30)
        from repro.baselines.rlocal import run_local

        err_short = run_local(short, inputs).scalars["sq_err"]
        err_long = run_local(long, inputs).scalars["sq_err"]
        assert err_long < err_short

    def test_v_never_repartitioned(self):
        from repro.core.plan import ExtendedStep
        from repro.core.planner import DMacPlanner

        program = build_logreg_program((400, 12), 0.2, iterations=6)
        plan = DMacPlanner(program, 4).plan()
        moves = [
            s
            for s in plan.steps
            if isinstance(s, ExtendedStep) and s.communicates and s.source.name == "V"
        ]
        assert moves == []

    def test_dmac_beats_systemml(self, rng):
        design, labels, __ = self.make_data(rng)
        program = build_logreg_program(design.shape, 1.0, iterations=4)
        inputs = {"V": design, "y": labels}
        dmac = session(block=64).run(program, inputs)
        systemml = session(block=64).run_systemml(program, inputs)
        assert dmac.comm_bytes < systemml.comm_bytes
        np.testing.assert_allclose(
            dmac.matrices[program.bindings["w"]],
            systemml.matrices[program.bindings["w"]],
            atol=1e-8,
        )

    def test_rejects_bad_params(self):
        with pytest.raises(ProgramError):
            build_logreg_program((10, 4), 0.5, iterations=0)
        with pytest.raises(ProgramError):
            build_logreg_program((10, 4), 0.5, learning_rate=-1.0)

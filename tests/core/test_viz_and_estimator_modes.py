"""Tests for DOT plan export and the average-case estimator mode."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.estimator import SizeEstimator
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.core.viz import plan_to_dot
from repro.errors import PlanError
from repro.lang.program import ProgramBuilder
from repro.programs import build_gnmf_program
from repro.session import DMacSession


class TestPlanToDot:
    def gnmf_plan(self):
        program = build_gnmf_program((64, 48), 0.1, factors=4, iterations=1)
        return schedule_stages(DMacPlanner(program, 4).plan())

    def test_valid_dot_structure(self):
        dot = plan_to_dot(self.gnmf_plan())
        assert dot.startswith("digraph plan {")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_stages_become_clusters(self):
        plan = self.gnmf_plan()
        dot = plan_to_dot(plan)
        for stage in range(1, plan.num_stages + 1):
            assert f"cluster_stage_{stage}" in dot

    def test_comm_edges_highlighted(self):
        dot = plan_to_dot(self.gnmf_plan())
        assert "color=red" in dot

    def test_every_instance_appears(self):
        plan = self.gnmf_plan()
        dot = plan_to_dot(plan)
        from repro.core.plan import SourceStep

        for step in plan.steps:
            if isinstance(step, SourceStep):
                assert str(step.output) in dot

    def test_schedules_unstaged_plan(self):
        program = build_gnmf_program((32, 24), 0.2, factors=4, iterations=1)
        plan = DMacPlanner(program, 4).plan()  # not staged yet
        assert "cluster_stage_1" in plan_to_dot(plan)

    def test_scalar_aggregates_rendered_as_boxes(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        s = pb.scalar("total", a.sum())
        pb.scalar_output(s)
        pb.output(pb.assign("B", a * s))
        plan = schedule_stages(DMacPlanner(pb.build(), 4).plan())
        assert "shape=box" in plan_to_dot(plan)


class TestEstimatorModes:
    def program(self):
        pb = ProgramBuilder()
        a = pb.load("A", (200, 200), sparsity=0.01)
        b = pb.load("B", (200, 200), sparsity=0.01)
        pb.assign("P", a @ b)
        pb.output(pb.assign("M", a * b))
        return pb.build()

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanError):
            SizeEstimator(self.program(), mode="optimistic")

    def test_average_below_worst_for_sparse_products(self):
        program = self.program()
        worst = SizeEstimator(program, "worst")
        average = SizeEstimator(program, "average")
        assert average.sparsity("P") < worst.sparsity("P")
        assert average.sparsity("M") < worst.sparsity("M")

    def test_average_equals_worst_for_dense(self):
        pb = ProgramBuilder()
        a = pb.load("A", (50, 50), sparsity=1.0)
        pb.output(pb.assign("P", a @ a))
        program = pb.build()
        assert SizeEstimator(program, "average").sparsity("P") == pytest.approx(1.0)

    def test_average_mode_plans_still_execute_correctly(self, rng):
        from tests.conftest import random_sparse

        array_a = random_sparse(rng, 60, 60, 0.05)
        array_b = random_sparse(rng, 60, 60, 0.05)
        pb = ProgramBuilder()
        a = pb.load("A", (60, 60), sparsity=0.05)
        b = pb.load("B", (60, 60), sparsity=0.05)
        pb.output(pb.assign("P", a @ b @ a))
        program = pb.build()
        worst = DMacSession(
            ClusterConfig(4, 1, block_size=16), estimation_mode="worst"
        ).run(program, {"A": array_a, "B": array_b})
        average = DMacSession(
            ClusterConfig(4, 1, block_size=16), estimation_mode="average"
        ).run(program, {"A": array_a, "B": array_b})
        np.testing.assert_allclose(worst.matrices["P"], average.matrices["P"], atol=1e-9)

    def test_average_is_not_an_upper_bound(self, rng):
        """Why the paper chose worst-case: the average estimate can be beaten
        by correlated non-zeros (here: a dense column stripe)."""
        pb = ProgramBuilder()
        a = pb.load("A", (40, 40), sparsity=0.1)
        pb.output(pb.assign("P", a @ a))
        program = pb.build()
        array = np.zeros((40, 40))
        array[:, :4] = 1.0  # 10% of entries, but structured
        array[:4, :] = 1.0
        from repro.baselines.rlocal import run_local

        result = run_local(program, {"A": array})
        true_sparsity = np.count_nonzero(result.matrices["P"]) / result.matrices["P"].size
        average = SizeEstimator(program, "average").sparsity("P")
        worst = SizeEstimator(program, "worst").sparsity("P")
        assert true_sparsity > average  # misestimated
        assert true_sparsity <= worst  # the paper's bound still holds

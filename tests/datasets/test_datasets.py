"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_GRAPHS,
    dense_random,
    graph_like,
    netflix_like,
    row_normalize,
    scaled_rows_series,
    sparse_random,
)
from repro.errors import ReproError


class TestSparseRandom:
    def test_target_sparsity(self):
        out = sparse_random(100, 100, 0.1, seed=1)
        assert np.count_nonzero(out) == 1000

    def test_values_strictly_positive(self):
        out = sparse_random(50, 50, 0.2, seed=2)
        assert (out[out != 0] > 0).all()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            sparse_random(20, 20, 0.3, seed=5), sparse_random(20, 20, 0.3, seed=5)
        )

    def test_ensure_coverage(self):
        out = sparse_random(200, 10, 0.01, seed=3, ensure_coverage=True)
        assert (out.sum(axis=1) > 0).all()
        assert (out.sum(axis=0) > 0).all()

    def test_dense_random_is_full(self):
        assert np.count_nonzero(dense_random(20, 20, seed=1)) == 400

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ReproError):
            sparse_random(10, 10, 2.0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ReproError):
            sparse_random(0, 10, 0.5)

    def test_scaled_series_nnz_grows_linearly(self):
        series = scaled_rows_series(100, 50, 0.1, (1.0, 2.0, 4.0), seed=1)
        nnzs = [nnz for nnz, __ in series]
        assert nnzs[1] == pytest.approx(2 * nnzs[0], rel=0.15)
        assert nnzs[2] == pytest.approx(4 * nnzs[0], rel=0.15)
        # columns fixed, rows grow
        assert all(mat.shape[1] == 50 for __, mat in series)


class TestGraphLike:
    def test_all_paper_graphs_generate(self):
        for name in PAPER_GRAPHS:
            adjacency = graph_like(name, scale=2e-5, seed=1)
            assert adjacency.shape[0] == adjacency.shape[1]
            assert np.count_nonzero(adjacency) > 0

    def test_node_edge_ratio_preserved(self):
        spec = PAPER_GRAPHS["LiveJournal"]
        adjacency = graph_like("LiveJournal", scale=2e-4, seed=2)
        nodes = adjacency.shape[0]
        edges = np.count_nonzero(adjacency)
        assert edges / nodes == pytest.approx(spec.average_degree, rel=0.5)

    def test_no_self_loops(self):
        adjacency = graph_like("soc-pokec", scale=1e-4, seed=3)
        assert np.trace(adjacency) == 0

    def test_binary_entries(self):
        adjacency = graph_like("cit-Patents", scale=1e-4, seed=4)
        assert set(np.unique(adjacency)) <= {0.0, 1.0}

    def test_unknown_graph_rejected(self):
        with pytest.raises(ReproError):
            graph_like("friendster")

    def test_degree_distribution_is_skewed(self):
        adjacency = graph_like("LiveJournal", scale=5e-4, seed=5)
        degrees = adjacency.sum(axis=1)
        assert degrees.max() > 4 * max(degrees.mean(), 1.0)

    def test_row_normalize(self):
        adjacency = graph_like("soc-pokec", scale=1e-4, seed=6)
        link = row_normalize(adjacency)
        sums = link.sum(axis=1)
        nonzero = sums > 0
        np.testing.assert_allclose(sums[nonzero], 1.0)

    def test_row_normalize_keeps_dangling_rows_zero(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1.0
        link = row_normalize(adjacency)
        assert link[1].sum() == 0.0


class TestNetflixLike:
    def test_aspect_ratio(self):
        ratings = netflix_like(scale=1e-3, seed=1)
        rows, cols = ratings.shape
        assert rows / cols == pytest.approx(480189 / 17770, rel=0.5)

    def test_ratings_in_range(self):
        ratings = netflix_like(scale=1e-3, seed=2)
        values = ratings[ratings != 0]
        assert values.min() >= 1.0 and values.max() <= 5.0

    def test_sparsity_close_to_netflix(self):
        ratings = netflix_like(scale=3e-3, seed=3, ensure_coverage=False)
        assert ratings.size * 0.005 < np.count_nonzero(ratings) < ratings.size * 0.03

    def test_coverage_guarantee(self):
        ratings = netflix_like(scale=1e-3, seed=4)
        assert (ratings.sum(axis=1) > 0).all()
        assert (ratings.sum(axis=0) > 0).all()

    def test_rejects_bad_scale(self):
        with pytest.raises(ReproError):
            netflix_like(scale=0.0)

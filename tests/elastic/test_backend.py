"""The elastic backend end to end: static equivalence, churn, recovery.

The determinism contract under test: an elastic run is a pure function of
``(program, inputs, timeline, elastic_seed, fault seed)``.  With no
timeline it is byte-identical to the static cluster; with one, same-seed
repeats are byte-identical to each other -- clean and under injected
faults alike.
"""

from collections import Counter
from unittest import mock

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.elastic import ElasticBackend, ElasticClusterContext, ElasticPool
from repro.errors import ClusterError, ExecutionError
from repro.faults import ChaosEngine, parse_fault_spec
from repro.matrix.distributed import DistributedMatrix
from repro.programs.registry import PAPER_APPS, WorkloadParams, build_workload
from repro.runtime.resources import ResourceManager

PARAMS = {"scale": 2e-3, "iterations": 3, "rows": 400, "features": 30}


def workload(app="gnmf"):
    return build_workload(app, WorkloadParams(**PARAMS))


def session_for(backend="simulated", elastic=None, elastic_seed=0, workers=4):
    return DMacSession(
        ClusterConfig(
            num_workers=workers,
            threads_per_worker=2,
            backend=backend,
            elastic=elastic,
            elastic_seed=elastic_seed,
        )
    )


def run(app="gnmf", elastic=None, elastic_seed=0, chaos_spec=None, fault_seed=0):
    load = workload(app)
    backend = "elastic" if elastic is not None else "simulated"
    session = session_for(backend, elastic, elastic_seed)
    chaos = None
    if chaos_spec is not None:
        chaos = ChaosEngine(fault_seed, parse_fault_spec(chaos_spec))
    result = session.run(load.program, load.inputs, chaos=chaos)
    return session, result


class TestStaticEquivalence:
    def test_empty_timeline_matches_the_static_cluster_exactly(self):
        """No events: same bytes, same simulated seconds, same arrays --
        the slot topology is invisible when nobody joins or leaves."""
        __, static = run(elastic=None)
        __, elastic = run(elastic="")
        assert elastic.comm_bytes == static.comm_bytes
        assert elastic.simulated_seconds == static.simulated_seconds
        for name in static.matrices:
            assert np.array_equal(elastic.matrices[name], static.matrices[name])

    def test_churn_preserves_numerics(self):
        __, static = run(elastic=None)
        __, elastic = run(elastic="join@2:count=2; leave@5:worker=0")
        for name in static.matrices:
            np.testing.assert_allclose(
                elastic.matrices[name], static.matrices[name], atol=1e-9
            )

    def test_systemml_baseline_refuses_the_elastic_backend(self):
        load = workload()
        session = session_for("elastic", "join@2")
        with pytest.raises(ExecutionError, match="static backend"):
            session.run_systemml(load.program, load.inputs)


class TestSessionPlumbing:
    def test_session_sizes_the_cluster_at_peak_membership(self):
        session = session_for("elastic", "join@2:count=3", workers=4)
        assert session.config.num_workers == 7  # slots = peak
        assert isinstance(session.context, ElasticClusterContext)
        assert session.context.pool.members == (0, 1, 2, 3)

    def test_timeline_requires_the_elastic_backend(self):
        with pytest.raises(ClusterError, match="elastic"):
            ClusterConfig(backend="simulated", elastic="join@2")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ClusterError, match="backend"):
            ClusterConfig(backend="spark")

    def test_result_carries_the_elastic_summary(self):
        __, result = run(elastic="join@2; leave@5")
        summary = result.elastic
        assert summary["slots"] == 5
        assert summary["initial_members"] == 4
        assert summary["final_members"] == 4
        assert len(summary["events"]) == 2
        assert summary["worker_seconds"] > 0
        assert summary["worker_seconds"] < summary["slot_seconds"]

    def test_static_backend_reports_no_elastic_summary(self):
        __, result = run(elastic=None)
        assert result.elastic is None


class TestJoin:
    def test_join_meters_rebalance_traffic(self):
        session, result = run(elastic="join@2")
        kinds = session.context.ledger.bytes_by_kind()
        assert kinds.get("rebalance", 0) > 0
        assert result.elastic["rebalance_bytes"] == kinds["rebalance"]

    def test_rebalance_traffic_rides_the_ordinary_ledger_links(self):
        session, __ = run(elastic="join@2")
        links = session.context.ledger.bytes_by_link()
        assert links, "rebalance transfers must record worker->worker links"

    def test_static_membership_run_has_no_rebalance(self):
        session, result = run(elastic="")
        assert "rebalance" not in session.context.ledger.bytes_by_kind()
        assert result.elastic["rebalance_bytes"] == 0


class TestLeaveAndRecovery:
    """Satellite matrix: the owner of a lost block has *left* the pool."""

    TIMELINE = "join@2; leave@5:worker=0"

    def test_departed_members_blocks_recover_through_lineage(self):
        __, result = run(elastic=self.TIMELINE)
        recovery = result.recovery
        assert recovery["blocks_lost"] > 0
        assert recovery["blocks_recovered"] == recovery["blocks_lost"]
        assert recovery["steps_recomputed"] > 0
        # ... and the numerics still match the static cluster.
        __, static = run(elastic=None)
        for name in static.matrices:
            np.testing.assert_allclose(
                result.matrices[name], static.matrices[name], atol=1e-9
            )

    def test_recomputation_lands_on_surviving_members(self):
        session, result = run(elastic="leave@3:worker=0", elastic_seed=3)
        pool = session.context.pool
        assert 0 not in pool.members
        assert result.recovery["blocks_recovered"] > 0
        # every slot -- including the departed member's -- is owned by a
        # survivor, so recovery recomputation can only charge survivors
        for slot in range(pool.slots):
            assert pool.member_for_slot(slot) in pool.members
        flops = {m: sum(f) for m, f in session.context.flops_snapshot().items()}
        assert flops[0] > 0, "member 0 worked stages 1-2 before leaving"
        assert max(flops[m] for m in pool.members) > flops[0], (
            "post-leave work (including recovery recomputation) must be "
            "charged to surviving members, whose totals keep growing"
        )

    def test_ledger_books_reconcile_when_a_block_owner_left(self):
        """Every publish balances against releases/losses/restores even
        when the worker owning the lost blocks is no longer in the pool."""
        created: list[ResourceManager] = []

        class Recording(ResourceManager):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        load = workload()
        session = session_for("elastic", self.TIMELINE)
        with mock.patch("repro.runtime.executor.ResourceManager", Recording):
            session.run(load.program, load.inputs)
        (manager,) = created
        assert manager.events_dropped == 0
        published = Counter(i for kind, i in manager.events if kind == "publish")
        released = Counter(i for kind, i in manager.events if kind == "release")
        losts = Counter(i for kind, i in manager.events if kind == "lost")
        restores = Counter(i for kind, i in manager.events if kind == "restore")
        assert losts, "the leave must actually lose blocks in this scenario"
        for instance, count in published.items():
            assert count == 1
            assert (
                released[instance] + losts[instance] - restores[instance] == 1
            ), f"books unbalanced for {instance}"
        assert manager.live_instances() == []


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        first_session, first = run(elastic="join@2; leave@5:worker=0")
        second_session, second = run(elastic="join@2; leave@5:worker=0")
        assert first.comm_bytes == second.comm_bytes
        assert first.simulated_seconds == second.simulated_seconds
        assert first.elastic == second.elastic
        assert (
            first_session.context.ledger.bytes_by_kind()
            == second_session.context.ledger.bytes_by_kind()
        )
        for name in first.matrices:
            assert first.matrices[name].tobytes() == second.matrices[name].tobytes()

    def test_same_seed_runs_are_byte_identical_under_faults(self):
        """Scale-while-failing: elastic churn and injected faults in one
        run, still a pure function of the seeds."""
        spec = "flaky:stage=3,p=1.0,times=1; lostblock:instance=H,iteration=2,times=1"
        timeline = "join@2; leave@6:worker=0"
        __, first = run(elastic=timeline, chaos_spec=spec, fault_seed=11)
        __, second = run(elastic=timeline, chaos_spec=spec, fault_seed=11)
        assert first.recovery["injected"] == second.recovery["injected"] > 0
        assert first.recovery["blocks_lost"] == second.recovery["blocks_lost"]
        assert first.comm_bytes == second.comm_bytes
        assert first.elastic == second.elastic
        for name in first.matrices:
            assert first.matrices[name].tobytes() == second.matrices[name].tobytes()
        # and the combined run still matches the clean static numerics
        __, static = run(elastic=None)
        for name in static.matrices:
            np.testing.assert_allclose(
                first.matrices[name], static.matrices[name], atol=1e-9
            )

    def test_elastic_seed_changes_the_assignment_not_the_answer(self):
        __, a = run(elastic="join@2; leave@5", elastic_seed=0)
        __, b = run(elastic="join@2; leave@5", elastic_seed=42)
        for name in a.matrices:
            np.testing.assert_allclose(a.matrices[name], b.matrices[name], atol=1e-9)

    def test_rebalance_transfers_are_fault_injectable(self):
        __, result = run(
            elastic="join@2",
            chaos_spec="flaky:at=rebalance,p=1.0,times=1",
        )
        assert result.recovery["injected"] == 1
        assert result.recovery["retries"] == 1
        __, static = run(elastic=None)
        for name in static.matrices:
            np.testing.assert_allclose(
                result.matrices[name], static.matrices[name], atol=1e-9
            )


@pytest.mark.parametrize("app", PAPER_APPS)
def test_every_paper_app_survives_churn(app):
    """The acceptance matrix: all seven applications run under a
    join/leave timeline and reproduce the static cluster's numerics."""
    __, static = run(app, elastic=None)
    __, elastic = run(app, elastic="join@2; leave@4")
    assert set(elastic.matrices) == set(static.matrices)
    for name in static.matrices:
        np.testing.assert_allclose(
            elastic.matrices[name], static.matrices[name], atol=1e-8
        )


class TestStagedPrograms:
    def test_staged_run_aggregates_elastic_summaries(self):
        load = build_workload("powiter", WorkloadParams(rows=200, eps=1e-3))
        session = session_for("elastic", "join@5; leave@20")
        result = session.run(load.program, load.inputs)
        summary = result.elastic
        assert summary is not None
        assert len(summary["events"]) == 2
        assert summary["worker_seconds"] > 0
        assert session.context.pool.stage_offset == sum(
            record.result.num_stages for record in result.segments
        )


class TestCacheAccounting:
    """Cache accounting keys off the live worker set, not range(K)."""

    def test_cached_bytes_follow_the_slot_owners(self):
        pool = ElasticPool("join@1", initial=3, seed=0)
        context = ElasticClusterContext(
            ClusterConfig(num_workers=pool.slots, backend="elastic"), pool
        )
        backend = ElasticBackend(context)
        matrix = DistributedMatrix.from_numpy(
            context, np.arange(64.0).reshape(8, 8), block_size=2
        )
        before = backend.cached_bytes(matrix)
        assert set(before) <= set(pool.members)
        total = sum(before.values())
        assert total > 0
        pool.commit(pool.next_transition(1))
        after = backend.cached_bytes(matrix)
        assert set(after) <= set(pool.members)
        assert sum(after.values()) == total, (
            "churn moves residency between members but never changes the "
            "total resident bytes"
        )

    def test_static_backend_accounts_by_context_workers(self):
        """The static SimulatedBackend keys its books off the context's
        worker set rather than a hardcoded range."""
        session = session_for("simulated")
        backend = session.context.make_backend()
        matrix = DistributedMatrix.from_numpy(
            session.context, np.arange(64.0).reshape(8, 8), block_size=2
        )
        cached = backend.cached_bytes(matrix)
        assert set(cached) <= set(session.context.workers())
        sources = backend.flop_sources()
        assert set(sources) == set(session.context.workers())

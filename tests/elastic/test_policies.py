"""Elasticity policies: stage weights in, valid deterministic timelines out."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.elastic import (
    CostCappedPolicy,
    ElasticPool,
    FixedPolicy,
    LoadTrackingPolicy,
    plan_stage_flop_weights,
    plan_stage_weights,
    timeline_spec,
)
from repro.elastic.spec import parse_elastic_spec
from repro.errors import ElasticSpecError
from repro.programs.registry import WorkloadParams, build_workload

WEIGHTS = [0.0, 2.0, 6.0, 6.0, 2.0, 1.0]  # stage 0 unused; peak at 2-3


def members_profile(events, initial, num_stages):
    pool = ElasticPool(events, initial=initial)
    return [len(pool.members_at(stage)) for stage in range(num_stages)]


class TestPlanStageWeights:
    def test_counts_steps_per_stage(self):
        load = build_workload("gnmf", WorkloadParams(scale=2e-3, iterations=2))
        plan = DMacSession(ClusterConfig(num_workers=4)).plan(load.program)
        weights = plan_stage_weights(plan)
        assert len(weights) == plan.num_stages + 1
        assert sum(weights) == len(plan.steps)
        assert weights[0] == 0.0  # stages are 1-indexed

    def test_deterministic(self):
        load = build_workload("pagerank", WorkloadParams(scale=1e-3, iterations=2))
        session = DMacSession(ClusterConfig(num_workers=4))
        assert plan_stage_weights(session.plan(load.program)) == plan_stage_weights(
            session.plan(load.program)
        )


class TestPlanStageFlopWeights:
    def _plan(self, app="gnmf", **params):
        load = build_workload(app, WorkloadParams(scale=2e-3, iterations=2, **params))
        return DMacSession(ClusterConfig(num_workers=4)).plan(load.program)

    def test_same_shape_as_step_counts(self):
        plan = self._plan()
        flops = plan_stage_flop_weights(plan)
        assert len(flops) == len(plan_stage_weights(plan))
        assert flops[0] == 0.0  # stages are 1-indexed
        assert sum(flops) > 0

    def test_multiply_stages_outweigh_bookkeeping_stages(self):
        """Step counts treat a scalar update and a dense multiply as equal
        load; the flop profile must not."""
        plan = self._plan()
        flops = plan_stage_flop_weights(plan)
        counts = plan_stage_weights(plan)
        peak_by_flops = max(range(len(flops)), key=flops.__getitem__)
        assert flops[peak_by_flops] > 100 * min(
            f for f, c in zip(flops, counts) if c > 0 and f > 0
        )

    def test_deterministic(self):
        plan = self._plan("pagerank")
        assert plan_stage_flop_weights(plan) == plan_stage_flop_weights(plan)

    def test_empty_plan(self):
        import dataclasses

        plan = self._plan()
        empty = dataclasses.replace(plan, steps=[])
        assert plan_stage_flop_weights(empty) == []


class TestFixedPolicy:
    def test_emits_no_events(self):
        assert FixedPolicy().timeline(WEIGHTS, initial=4) == ()
        assert FixedPolicy().name == "fixed"


class TestLoadTrackingPolicy:
    def test_membership_tracks_the_stage_profile(self):
        policy = LoadTrackingPolicy(max_members=6)
        events = policy.timeline(WEIGHTS, initial=1)
        profile = members_profile(events, 1, len(WEIGHTS))
        # heaviest stages get the most members; never below one
        assert profile[2] == profile[3] == 6
        assert profile[1] == 2
        assert min(profile) >= 1

    def test_timeline_round_trips_through_the_grammar(self):
        events = LoadTrackingPolicy(max_members=5).timeline(WEIGHTS, initial=1)
        assert parse_elastic_spec(timeline_spec(events)) == events

    def test_timeline_is_valid_for_a_pool(self):
        events = LoadTrackingPolicy(max_members=4).timeline(WEIGHTS, initial=2)
        pool = ElasticPool(events, initial=2)
        assert pool.slots >= 2

    def test_max_members_must_be_positive(self):
        with pytest.raises(ElasticSpecError):
            LoadTrackingPolicy(max_members=0).timeline(WEIGHTS, initial=1)

    def test_no_weights_no_events(self):
        assert LoadTrackingPolicy(max_members=4).timeline([], initial=2) == ()


class TestCostCappedPolicy:
    def test_budget_bounds_the_worker_stages(self):
        policy = CostCappedPolicy(max_members=6, budget_worker_stages=10.0)
        events = policy.timeline(WEIGHTS, initial=1)
        profile = members_profile(events, 1, len(WEIGHTS))
        assert sum(profile) <= 10.0

    def test_extra_members_go_to_the_heaviest_stages_first(self):
        policy = CostCappedPolicy(max_members=6, budget_worker_stages=8.0)
        profile = members_profile(policy.timeline(WEIGHTS, initial=1), 1, len(WEIGHTS))
        assert max(profile) in (profile[2], profile[3])
        assert profile[2] >= profile[1]

    def test_exhausted_budget_stays_at_one_member_everywhere(self):
        policy = CostCappedPolicy(max_members=6, budget_worker_stages=0.0)
        assert policy.timeline(WEIGHTS, initial=1) == ()

    def test_generous_budget_converges_to_load_tracking_shape(self):
        capped = CostCappedPolicy(max_members=4, budget_worker_stages=1e9)
        profile = members_profile(capped.timeline(WEIGHTS, initial=1), 1, len(WEIGHTS))
        assert profile[2] == profile[3] == 4


class TestPolicyDrivenRuns:
    def test_policy_timeline_executes_deterministically(self):
        load = build_workload("gnmf", WorkloadParams(scale=2e-3, iterations=2))
        session = DMacSession(ClusterConfig(num_workers=4))
        weights = plan_stage_weights(session.plan(load.program))
        events = LoadTrackingPolicy(max_members=6).timeline(weights, initial=4)
        spec = timeline_spec(events)

        def run():
            elastic_session = DMacSession(
                ClusterConfig(num_workers=4, backend="elastic", elastic=spec)
            )
            return elastic_session.run(load.program, load.inputs)

        first, second = run(), run()
        assert first.comm_bytes == second.comm_bytes
        assert first.elastic == second.elastic
        for name in first.matrices:
            assert first.matrices[name].tobytes() == second.matrices[name].tobytes()

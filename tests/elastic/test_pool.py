"""ElasticPool: slot topology, membership timeline, rendezvous assignment."""

import pytest

from repro.elastic import ElasticPool, parse_elastic_spec
from repro.errors import ElasticSpecError


class TestTopology:
    def test_slots_are_the_peak_membership(self):
        pool = ElasticPool("join@2:count=2; leave@5; leave@6", initial=4)
        assert pool.slots == 6
        assert pool.members_ever == (0, 1, 2, 3, 4, 5)

    def test_no_events_means_static_topology(self):
        pool = ElasticPool("", initial=3)
        assert pool.slots == 3
        assert pool.members == (0, 1, 2)

    def test_joiners_get_fresh_ids_in_timeline_order(self):
        pool = ElasticPool("join@1; leave@2; join@3:count=2", initial=2)
        assert pool.members_ever == (0, 1, 2, 3, 4)
        assert pool.members_at(1) == (0, 1, 2)
        assert pool.members_at(2) == (0, 1)  # youngest (2) left
        assert pool.members_at(3) == (0, 1, 3, 4)

    def test_members_at_is_pure_and_cursor_independent(self):
        pool = ElasticPool("join@2; leave@4:worker=0", initial=2)
        before = pool.members_at(10)
        transition = pool.next_transition(3)
        pool.commit(transition)
        assert pool.members_at(10) == before


class TestTimelineValidation:
    def test_leave_emptying_the_pool_rejected(self):
        with pytest.raises(ElasticSpecError, match="empty the pool"):
            ElasticPool("leave@1", initial=1)

    def test_leave_of_unknown_member_rejected(self):
        with pytest.raises(ElasticSpecError, match="not live"):
            ElasticPool("leave@1:worker=7", initial=2)

    def test_leave_of_already_departed_member_rejected(self):
        with pytest.raises(ElasticSpecError, match="not live"):
            ElasticPool("leave@1:worker=0; leave@2:worker=0", initial=3)

    def test_initial_must_be_positive(self):
        with pytest.raises(ElasticSpecError, match="initial"):
            ElasticPool("", initial=0)


class TestAssignment:
    def test_full_membership_is_one_slot_per_member(self):
        """At peak membership the bounded-load cap forces a perfect
        matching, so a churn-free elastic run costs the same simulated
        compute as the static cluster."""
        pool = ElasticPool("", initial=5)
        assignment = pool.assignment_for((0, 1, 2, 3, 4))
        assert sorted(assignment) == list(range(5))
        assert sorted(assignment.values()) == list(range(5))

    def test_assignment_is_balanced_under_any_membership(self):
        pool = ElasticPool("join@1:count=4", initial=4)  # 8 slots
        for members in [(0, 1, 2), (0, 2, 5, 7), tuple(range(8)), (3,)]:
            assignment = pool.assignment_for(members)
            loads = [list(assignment.values()).count(m) for m in members]
            assert max(loads) - min(loads) <= 1, (members, loads)
            assert sum(loads) == pool.slots

    def test_assignment_is_deterministic_in_the_seed(self):
        a = ElasticPool("join@1", initial=4, seed=7)
        b = ElasticPool("join@1", initial=4, seed=7)
        c = ElasticPool("join@1", initial=4, seed=8)
        members = (0, 1, 2, 4)
        assert a.assignment_for(members) == b.assignment_for(members)
        assert any(
            a.assignment_for(members) != c.assignment_for(members)
            for members in [(0, 1, 2, 4), (0, 1), (1, 2, 3, 4)]
        )

    def test_rendezvous_moves_few_slots_on_leave(self):
        """Only the departed member's slots change hands."""
        pool = ElasticPool("", initial=6)
        full = pool.assignment_for(tuple(range(6)))
        without = pool.assignment_for((0, 1, 2, 3, 4))
        moved = [slot for slot in range(6) if full[slot] != without[slot]]
        lost = [slot for slot, owner in full.items() if owner == 5]
        assert set(lost) <= set(moved)
        # bounded-load rebalancing may shuffle at most one extra slot per
        # survivor beyond the departed member's own
        assert len(moved) <= len(lost) + 5


class TestCursor:
    def test_transitions_fire_in_stage_order(self):
        pool = ElasticPool("join@1; leave@3", initial=2)
        assert pool.next_transition(0) is None
        t1 = pool.next_transition(1)
        assert t1.event.kind == "join" and t1.joined == (2,)
        pool.commit(t1)
        assert pool.members == (0, 1, 2)
        assert pool.next_transition(2) is None
        t2 = pool.next_transition(5)  # late stage still drains the event
        assert t2.event.kind == "leave" and t2.departed == 2
        pool.commit(t2)
        assert pool.members == (0, 1)
        assert pool.next_transition(99) is None

    def test_next_transition_does_not_mutate(self):
        pool = ElasticPool("join@1", initial=2)
        first = pool.next_transition(1)
        second = pool.next_transition(1)
        assert first == second
        assert pool.members == (0, 1)

    def test_moved_slots_map_to_previous_owners(self):
        pool = ElasticPool("join@1", initial=3)
        before = {slot: pool.member_for_slot(slot) for slot in range(pool.slots)}
        transition = pool.next_transition(1)
        for slot, owner in transition.moved_slots.items():
            assert before[slot] == owner
        pool.commit(transition)
        for slot in transition.moved_slots:
            assert pool.member_for_slot(slot) != transition.moved_slots[slot]

    def test_slots_of_departed_member_is_empty(self):
        pool = ElasticPool("leave@1:worker=0", initial=3)
        assert pool.slots_of(0)
        pool.commit(pool.next_transition(1))
        assert pool.slots_of(0) == ()

    def test_stage_offset_spans_segments(self):
        """Events index the cumulative stage count of a staged program."""
        pool = ElasticPool("join@7", initial=2)
        assert pool.next_transition(5) is None
        pool.finish_segment(5)
        transition = pool.next_transition(2)  # cumulative stage 7
        assert transition is not None and transition.event.stage == 7

    def test_applied_log_describes_committed_transitions(self):
        pool = ElasticPool("join@1:count=2", initial=2)
        pool.commit(pool.next_transition(1))
        assert pool.applied_log == [pool.applied_log[0]]
        assert "join@1:count=2" in pool.applied_log[0]
        assert "2 -> 4 members" in pool.applied_log[0]

    def test_accepts_pre_parsed_events(self):
        events = parse_elastic_spec("join@1")
        assert ElasticPool(events, initial=2).slots == 3

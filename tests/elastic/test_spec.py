"""The ``--elastic`` membership-timeline grammar."""

import pytest

from repro.elastic import ElasticEvent, parse_elastic_spec
from repro.errors import ElasticSpecError


class TestParse:
    def test_join_defaults(self):
        assert parse_elastic_spec("join@3") == (
            ElasticEvent(kind="join", stage=3, count=1),
        )

    def test_join_count(self):
        (event,) = parse_elastic_spec("join@3:count=2")
        assert (event.kind, event.stage, event.count) == ("join", 3, 2)

    def test_leave_default_targets_youngest(self):
        (event,) = parse_elastic_spec("leave@5")
        assert (event.kind, event.stage, event.worker) == ("leave", 5, None)

    def test_leave_named_worker(self):
        (event,) = parse_elastic_spec("leave@5:worker=1")
        assert event.worker == 1

    def test_semicolon_and_comma_separators(self):
        assert parse_elastic_spec("join@2; leave@5") == parse_elastic_spec(
            "join@2, leave@5"
        )

    def test_events_sorted_by_stage_stably(self):
        events = parse_elastic_spec("leave@5:worker=0; join@2; leave@5:worker=1")
        assert [e.stage for e in events] == [2, 5, 5]
        # same-stage events keep spec order
        assert [e.worker for e in events[1:]] == [0, 1]

    def test_empty_spec_is_a_valid_static_timeline(self):
        assert parse_elastic_spec("") == ()
        assert parse_elastic_spec(" ; ") == ()

    def test_whitespace_tolerated_around_at_sign(self):
        (event,) = parse_elastic_spec("  join @ 3:count=2 ")
        assert (event.stage, event.count) == (3, 2)

    def test_describe_round_trips(self):
        spec = "join@2:count=3; leave@5:worker=1; leave@7"
        events = parse_elastic_spec(spec)
        rendered = "; ".join(event.describe() for event in events)
        assert parse_elastic_spec(rendered) == events


class TestErrors:
    @pytest.mark.parametrize(
        "spec",
        [
            "join",  # no stage
            "join@",  # empty stage
            "join@x",  # non-integer stage
            "grow@3",  # unknown kind
            "join@-1",  # negative stage
            "join@3:count=0",  # count below 1
            "join@3:worker=1",  # worker is a leave option
            "leave@3:count=2",  # count is a join option
            "leave@3:worker=-1",  # negative member id
            "join@3:count=2:count=2",  # duplicate option
            "join@3:count=",  # malformed option
            "join@3:count=two",  # non-integer option
        ],
    )
    def test_malformed_clause_raises(self, spec):
        with pytest.raises(ElasticSpecError):
            parse_elastic_spec(spec)

    def test_error_names_the_clause(self):
        with pytest.raises(ElasticSpecError, match="grow"):
            parse_elastic_spec("join@1; grow@3")

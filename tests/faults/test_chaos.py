"""ChaosEngine: deterministic decisions, per-point budgets, and the
clean-run guarantee (an installed engine whose clauses never fire leaves
the run bit-identical to one without any engine)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession, TransferFault, WorkerCrashed
from repro.datasets import sparse_random
from repro.faults import ChaosEngine
from repro.programs import build_pagerank_program


def node(index=0, stage=1):
    return SimpleNamespace(index=index, stage=stage)


class TestDeterministicRolls:
    def test_roll_is_pure_function_of_seed_and_point(self):
        a = ChaosEngine(7, "crash")
        b = ChaosEngine(7, "crash")
        assert a._roll("crash/0/node=1/attempt=1") == b._roll(
            "crash/0/node=1/attempt=1"
        )

    def test_roll_varies_with_seed_and_point(self):
        engine = ChaosEngine(7, "crash")
        other = ChaosEngine(8, "crash")
        point = "crash/0/node=1/attempt=1"
        assert engine._roll(point) != other._roll(point)
        assert engine._roll(point) != engine._roll("crash/0/node=2/attempt=1")

    def test_roll_is_uniform_range(self):
        engine = ChaosEngine(3, "crash")
        rolls = [engine._roll(f"point/{i}") for i in range(200)]
        assert all(0.0 <= r < 1.0 for r in rolls)
        assert 0.3 < sum(rolls) / len(rolls) < 0.7  # no gross bias

    def test_crash_decision_is_repeatable(self):
        def injected_on(seed):
            engine = ChaosEngine(seed, "crash:p=0.5,times=0")
            fired = []
            for index in range(8):
                with engine.stage_scope(node(index=index)):
                    try:
                        engine.on_stage_start()
                    except WorkerCrashed:
                        fired.append(index)
            return fired

        first = injected_on(11)
        assert first == injected_on(11)
        assert 0 < len(first) < 8, "p=0.5 over 8 nodes should be mixed"


class TestBudgets:
    def test_times_caps_fires_per_point_family(self):
        engine = ChaosEngine(1, "crash:times=2")
        fired = 0
        for __ in range(5):
            with engine.stage_scope(node(index=4)):
                try:
                    engine.on_stage_start()
                except WorkerCrashed:
                    fired += 1
        assert fired == 2

    def test_budgets_are_per_node_not_global(self):
        engine = ChaosEngine(1, "crash:times=1")
        fired = []
        for index in (0, 1, 2):
            with engine.stage_scope(node(index=index)):
                try:
                    engine.on_stage_start()
                except WorkerCrashed:
                    fired.append(index)
        assert fired == [0, 1, 2], "each node has its own budget"

    def test_times_zero_is_unlimited(self):
        engine = ChaosEngine(1, "crash:times=0")
        fired = 0
        for __ in range(4):
            with engine.stage_scope(node(index=0)):
                try:
                    engine.on_stage_start()
                except WorkerCrashed:
                    fired += 1
        assert fired == 4


class TestHookFiltering:
    def test_crash_respects_stage_filter(self):
        engine = ChaosEngine(1, "crash:stage=3")
        with engine.stage_scope(node(index=0, stage=2)):
            engine.on_stage_start()  # no match: no raise
        with engine.stage_scope(node(index=1, stage=3)):
            with pytest.raises(WorkerCrashed) as info:
                engine.on_stage_start()
        assert info.value.retryable
        assert info.value.stage == 3

    def test_flaky_respects_transfer_kind(self):
        engine = ChaosEngine(1, "flaky:at=shuffle")
        with engine.stage_scope(node()):
            engine.on_transfer("broadcast", 128)  # wrong kind: no raise
            with pytest.raises(TransferFault) as info:
                engine.on_transfer("shuffle", 128)
        assert info.value.retryable

    def test_shuffle_entry_hook_is_a_shuffle_transfer(self):
        engine = ChaosEngine(1, "flaky:at=shuffle")
        with engine.stage_scope(node()):
            with pytest.raises(TransferFault):
                engine.on_shuffle_start(num_source_partitions=2)

    def test_straggler_reports_combined_factor(self):
        engine = ChaosEngine(1, "straggler:factor=3;straggler:factor=2")
        with engine.stage_scope(node()):
            assert engine.slowdown_factor() == pytest.approx(6.0)
        with engine.stage_scope(node()):  # budgets spent: healthy again
            assert engine.slowdown_factor() == 1.0

    def test_on_publish_matches_instance_name(self):
        engine = ChaosEngine(1, "lostblock:instance=rank@3")
        hit = SimpleNamespace(name="rank@3")
        miss = SimpleNamespace(name="rank@2")
        assert not engine.on_publish(miss)
        assert engine.on_publish(hit)
        assert not engine.on_publish(hit), "lostblock budget is once per instance"

    def test_attempts_are_counted_per_node(self):
        engine = ChaosEngine(1, "crash:times=0,p=0.0")
        for expected in (1, 2):
            with engine.stage_scope(node(index=5)):
                assert engine._node_attempts[5] == expected


class TestCleanRunIdentity:
    """ISSUE acceptance gate: with faults disabled the system is
    bit-identical to a run without the chaos machinery."""

    def run_pagerank(self, chaos):
        nodes = 48
        program = build_pagerank_program(nodes, 0.1, iterations=3)
        link = sparse_random(nodes, nodes, 0.1, seed=5, ensure_coverage=True)
        link = link / np.maximum(link.sum(axis=1, keepdims=True), 1e-12)
        session = DMacSession(
            ClusterConfig(num_workers=4, threads_per_worker=1, block_size=16)
        )
        return session.run(program, {"link": link}, chaos=chaos)

    def test_inert_engine_changes_nothing(self):
        baseline = self.run_pagerank(chaos=None)
        # Clauses that can never fire: wrong stage, zero probability.
        inert = self.run_pagerank(chaos=ChaosEngine(7, "crash:stage=9999;flaky:p=0.0"))
        assert inert.comm_bytes == baseline.comm_bytes
        assert inert.simulated_seconds == baseline.simulated_seconds
        assert inert.num_stages == baseline.num_stages
        for name, array in baseline.matrices.items():
            np.testing.assert_array_equal(inert.matrices[name], array)
        assert inert.recovery is not None
        assert inert.recovery["injected"] == 0
        assert inert.recovery["retries"] == 0

    def test_no_chaos_run_reports_no_recovery(self):
        assert self.run_pagerank(chaos=None).recovery is None

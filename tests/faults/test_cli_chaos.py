"""The ``repro chaos`` command: spec errors, report formats, exit codes
and the byte-identical JSON determinism gate CI enforces."""

import json

import pytest

from repro.cli import build_parser, main

FAST_PAGERANK = ["chaos", "pagerank", "--scale", "1e-3", "--iterations", "4"]


class TestParser:
    def test_faults_flag_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "pagerank"])

    def test_defaults(self):
        args = build_parser().parse_args(
            ["chaos", "pagerank", "--faults", "crash"]
        )
        assert args.faults == "crash"
        assert args.retries == 3
        assert args.checkpoint_every == 0
        assert args.speculation == 0.0
        assert args.format == "text"
        assert args.seed == 0


class TestExitCodes:
    def test_bad_spec_exits_2(self, capsys):
        assert main(FAST_PAGERANK + ["--faults", "meteor"]) == 2
        err = capsys.readouterr().err
        assert "fault spec error" in err
        assert "unknown fault kind" in err

    def test_recovered_run_exits_0(self, capsys):
        code = main(
            FAST_PAGERANK
            + ["--seed", "7", "--faults", "lostblock:instance=rank,iteration=3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "results match clean run" in out
        assert "1 block(s) lost" in out


class TestReports:
    def test_text_report_shape(self, capsys):
        main(
            FAST_PAGERANK
            + ["--seed", "7", "--faults", "crash:times=1",
               "--retries", "3"]
        )
        out = capsys.readouterr().out
        assert "chaos report: pagerank" in out
        assert "clean run:" in out
        assert "faulted run:" in out
        assert "overhead:" in out
        assert "retried" in out

    def test_json_report_is_valid_and_complete(self, capsys):
        main(
            FAST_PAGERANK
            + ["--seed", "7", "--format", "json",
               "--faults", "lostblock:instance=rank,iteration=3",
               "--checkpoint-every", "2"]
        )
        report = json.loads(capsys.readouterr().out)
        assert report["app"] == "pagerank"
        assert report["results_match"] is True
        assert report["recovery"]["blocks_recovered"] == 1
        assert report["recovery"]["checkpoints"] > 0
        assert report["overhead"]["extra_comm_bytes"] > 0
        assert report["faulted"]["simulated_seconds"] > report["clean"][
            "simulated_seconds"
        ]

    def test_same_seed_json_reports_are_byte_identical(self, capsys):
        """The CI determinism gate: two runs, same seed, identical bytes."""
        argv = FAST_PAGERANK + [
            "--seed", "11", "--format", "json",
            "--faults",
            "crash:times=1;flaky:p=0.9,times=1;lostblock:instance=rank,iteration=3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_different_seeds_can_differ(self, capsys):
        argv = FAST_PAGERANK + ["--format", "json", "--faults", "flaky:p=0.5,times=1"]
        main(argv + ["--seed", "1"])
        first = json.loads(capsys.readouterr().out)
        main(argv + ["--seed", "2"])
        second = json.loads(capsys.readouterr().out)
        assert first["seed"] != second["seed"]

"""LineageTracker: the recovery cone of a lost instance is minimal --
the producing step plus recursively-unavailable upstream producers only."""

import dataclasses

import pytest

from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import ShuffleBlockLost
from repro.faults import LineageTracker
from repro.matrix.schemes import Scheme
from repro.programs import build_pagerank_program


@pytest.fixture(scope="module")
def plan():
    program = build_pagerank_program(64, 0.05, iterations=4)
    return schedule_stages(DMacPlanner(program, 3).plan())


@pytest.fixture(scope="module")
def tracker(plan):
    return LineageTracker(plan)


def find_instance(plan, name):
    for step in plan.steps:
        output = step.output_instance()
        if output is not None and output.name == name:
            return output
    raise AssertionError(f"plan produces no instance named {name!r}")


class TestProducers:
    def test_every_produced_instance_has_a_producer(self, plan, tracker):
        for index, step in enumerate(plan.steps):
            output = step.output_instance()
            if output is None:
                continue
            producer = tracker.producing_step(output)
            assert producer is not None and producer <= index

    def test_first_producer_wins_for_replicated_instances(self, plan, tracker):
        """When an instance materialises under several schemes, the cone
        rebuilds from its first producing step."""
        seen = set()
        for index, step in enumerate(plan.steps):
            output = step.output_instance()
            if output is None or output in seen:
                continue
            seen.add(output)
            assert tracker.producing_step(output) == index


class TestRecoveryCone:
    def test_cone_with_everything_else_available_is_one_step(self, plan, tracker):
        lost = find_instance(plan, "rank@3")
        cone = tracker.recovery_cone(lost, available=lambda i: True)
        assert cone == [tracker.producing_step(lost)]

    def test_cone_is_sorted_and_closed_under_dependencies(self, plan, tracker):
        lost = find_instance(plan, "rank@4")
        cone = tracker.recovery_cone(lost, available=lambda i: False)
        assert cone == sorted(cone)
        members = set(cone)
        for index in cone:
            for upstream in plan.steps[index].inputs():
                producer = tracker.producing_step(upstream)
                assert producer in members, (
                    f"step {index} consumes {upstream} but its producer "
                    f"is outside the cone"
                )

    def test_nothing_available_means_full_history(self, plan, tracker):
        """With no instance available the cone of the last rank version
        spans every iteration back to the loads."""
        last = find_instance(plan, "rank@4")
        first = find_instance(plan, "rank")
        cone = tracker.recovery_cone(last, available=lambda i: False)
        assert tracker.producing_step(first) in cone

    def test_availability_prunes_the_cone(self, plan, tracker):
        """A checkpoint of rank@2 cuts the cone for rank@4 down to the
        steps after the checkpoint."""
        last = find_instance(plan, "rank@4")
        full = tracker.recovery_cone(last, available=lambda i: False)
        pruned = tracker.recovery_cone(
            last, available=lambda i: i.name in ("rank@2", "link", "D")
        )
        assert set(pruned) < set(full)
        first = find_instance(plan, "rank")
        assert tracker.producing_step(first) not in pruned

    def test_unknown_instance_raises_shuffle_block_lost(self, tracker):
        orphan = dataclasses.replace(
            find_instance(tracker.plan, "rank"), name="nosuch@9"
        )
        with pytest.raises(ShuffleBlockLost, match="no producing step"):
            tracker.recovery_cone(orphan, available=lambda i: False)

    def test_cone_stops_at_lost_instances_own_scheme_variants(self, plan, tracker):
        """Losing one scheme replica recomputes from the first producer --
        the cone never includes steps after it."""
        lost = find_instance(plan, "rank@2")
        cone = tracker.recovery_cone(lost, available=lambda i: True)
        assert max(cone) == tracker.producing_step(lost)

    def test_scheme_matters_for_identity(self, plan, tracker):
        lost = find_instance(plan, "rank")
        relabeled = lost.with_scheme(Scheme.COL)
        if lost.scheme != Scheme.COL and tracker.producing_step(relabeled) is None:
            with pytest.raises(ShuffleBlockLost):
                tracker.recovery_cone(relabeled, available=lambda i: False)

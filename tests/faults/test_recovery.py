"""End-to-end recovery: lineage recomputation, checkpoint replay, retries
and speculation on real applications under injected faults."""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession, RecoveryConfig
from repro.datasets import sparse_random
from repro.faults import ChaosEngine
from repro.faults.recovery import _ssa_version
from repro.programs import build_pagerank_program
from repro.programs.gnmf import build_gnmf_program

NODES = 64
ITERATIONS = 4


def pagerank_inputs():
    link = sparse_random(NODES, NODES, 0.05, seed=3, ensure_coverage=True)
    return {"link": link / np.maximum(link.sum(axis=1, keepdims=True), 1e-12)}


def run_pagerank(chaos=None, **recovery_kwargs):
    config = ClusterConfig(
        num_workers=3,
        threads_per_worker=1,
        block_size=16,
        recovery=RecoveryConfig(**recovery_kwargs) if recovery_kwargs else RecoveryConfig(),
    )
    program = build_pagerank_program(NODES, 0.05, iterations=ITERATIONS)
    return DMacSession(config).run(program, pagerank_inputs(), chaos=chaos)


def assert_results_match(faulted, clean):
    assert set(faulted.matrices) == set(clean.matrices)
    for name, array in clean.matrices.items():
        np.testing.assert_allclose(faulted.matrices[name], array, atol=1e-9)


class TestLostBlockRecovery:
    def test_lost_cone_recovery_beats_full_restart(self):
        """ISSUE acceptance: recomputing the lost block's upstream cone
        moves strictly fewer bytes than rerunning the program."""
        clean = run_pagerank()
        chaos = ChaosEngine(7, "lostblock:instance=rank,iteration=3")
        faulted = run_pagerank(chaos=chaos)
        recovery = faulted.recovery
        assert recovery["blocks_lost"] == 1
        assert recovery["blocks_recovered"] == 1
        assert recovery["steps_recomputed"] > 0
        assert 0 < recovery["bytes_recomputed"] < clean.comm_bytes, (
            "lineage recovery must be cheaper than a full restart"
        )
        assert_results_match(faulted, clean)

    def test_recovery_charges_the_ledger(self):
        clean = run_pagerank()
        chaos = ChaosEngine(7, "lostblock:instance=rank,iteration=3")
        faulted = run_pagerank(chaos=chaos)
        assert faulted.comm_bytes > clean.comm_bytes
        assert faulted.simulated_seconds > clean.simulated_seconds

    def test_losing_the_last_iteration_still_recovers(self):
        clean = run_pagerank()
        chaos = ChaosEngine(7, f"lostblock:instance=rank,iteration={ITERATIONS}")
        faulted = run_pagerank(chaos=chaos)
        assert faulted.recovery["blocks_recovered"] == 1
        assert_results_match(faulted, clean)


class TestCheckpointing:
    def test_checkpoints_shrink_the_recovery_cone(self):
        spec = "lostblock:instance=rank,iteration=3"
        plain = run_pagerank(chaos=ChaosEngine(7, spec))
        checked = run_pagerank(chaos=ChaosEngine(7, spec), checkpoint_every=2)
        assert checked.recovery["checkpoints"] > 0
        assert checked.recovery["checkpoint_bytes"] > 0
        assert (
            checked.recovery["steps_recomputed"]
            < plain.recovery["steps_recomputed"]
        )
        assert (
            checked.recovery["bytes_recomputed"]
            < plain.recovery["bytes_recomputed"]
        )
        assert_results_match(checked, run_pagerank())

    def test_checkpoint_io_costs_simulated_time(self):
        clean = run_pagerank()
        checked = run_pagerank(
            chaos=ChaosEngine(7, "crash:stage=9999"), checkpoint_every=2
        )
        assert checked.recovery["checkpoints"] > 0
        assert checked.simulated_seconds > clean.simulated_seconds
        assert_results_match(checked, clean)

    @pytest.mark.parametrize(
        "name, version",
        [("rank@3", 3), ("rank", None), ("W@12", 12), ("a@b", None), ("x@", None)],
    )
    def test_ssa_version_parsing(self, name, version):
        assert _ssa_version(name) == version


class TestRetries:
    def test_crash_is_retried_and_run_completes(self):
        clean = run_pagerank()
        chaos = ChaosEngine(7, "crash:times=1")
        faulted = run_pagerank(chaos=chaos, max_stage_attempts=3)
        assert faulted.recovery["injected"] >= 1
        assert faulted.recovery["retries"] >= 1
        assert faulted.simulated_seconds > clean.simulated_seconds, (
            "failed attempts and backoff must cost simulated time"
        )
        assert_results_match(faulted, clean)

    def test_flaky_transfer_is_retried(self):
        clean = run_pagerank()
        chaos = ChaosEngine(7, "flaky:times=1")
        faulted = run_pagerank(chaos=chaos, max_stage_attempts=3)
        assert faulted.recovery["injected"] >= 1
        assert faulted.recovery["retries"] >= 1
        assert_results_match(faulted, clean)


class TestSpeculation:
    def test_speculative_copies_cut_straggler_latency(self):
        # Seed 1 + p=0.4 slows exactly one of the three same-stage load
        # islands; its healthy siblings give speculation a sane median.
        spec = "straggler:stage=1,factor=8,p=0.4"
        slowed = run_pagerank(chaos=ChaosEngine(1, spec))
        mitigated = run_pagerank(
            chaos=ChaosEngine(1, spec), speculation_multiplier=2.0
        )
        assert mitigated.recovery["speculations"] > 0
        assert mitigated.simulated_seconds < slowed.simulated_seconds
        assert_results_match(mitigated, run_pagerank())


class TestGnmfUnderFaults:
    def test_gnmf_recovers_a_lost_factor(self):
        shape = (48, 32)
        program = build_gnmf_program(shape, 0.2, factors=4, iterations=2)
        data = sparse_random(*shape, 0.2, seed=5, ensure_coverage=True)
        config = ClusterConfig(
            num_workers=3, threads_per_worker=1, block_size=8
        )
        clean = DMacSession(config).run(program, {"V": data})
        chaos = ChaosEngine(5, "lostblock:instance=H,iteration=2")
        faulted = DMacSession(config).run(program, {"V": data}, chaos=chaos)
        assert faulted.recovery["blocks_recovered"] == 1
        assert set(faulted.matrices) == set(clean.matrices)
        for name, array in clean.matrices.items():
            np.testing.assert_allclose(faulted.matrices[name], array, atol=1e-9)

"""Fault-spec grammar: parsing, defaults, and rejection of malformed input."""

import pytest

from repro.errors import FaultSpecError
from repro.faults import FAULT_KINDS, FaultClause, parse_fault_spec


class TestParsing:
    def test_bare_kind(self):
        (clause,) = parse_fault_spec("crash")
        assert clause == FaultClause(kind="crash")
        assert clause.probability == 1.0
        assert clause.times == 1

    def test_all_kinds_parse(self):
        spec = "crash;lostblock:instance=rank;flaky;straggler"
        kinds = [clause.kind for clause in parse_fault_spec(spec)]
        assert kinds == list(FAULT_KINDS)

    def test_options_parsed_and_typed(self):
        (clause,) = parse_fault_spec("flaky:at=shuffle,p=0.25,times=3,stage=2")
        assert clause.at == "shuffle"
        assert clause.probability == 0.25
        assert clause.times == 3
        assert clause.stage == 2

    def test_iteration_sugar_builds_ssa_name(self):
        (clause,) = parse_fault_spec("lostblock:instance=rank,iteration=3")
        assert clause.instance == "rank@3"

    def test_iteration_one_keeps_bare_name(self):
        """The first SSA version of ``rank`` is plain ``rank``."""
        (clause,) = parse_fault_spec("lostblock:instance=rank,iteration=1")
        assert clause.instance == "rank"

    def test_explicit_ssa_instance_passes_through(self):
        (clause,) = parse_fault_spec("lostblock:instance=W@2")
        assert clause.instance == "W@2"

    def test_semicolons_and_whitespace_tolerated(self):
        clauses = parse_fault_spec(" crash:stage=1 ; ; straggler:factor=6 ")
        assert [c.kind for c in clauses] == ["crash", "straggler"]
        assert clauses[1].factor == 6.0

    def test_clause_matches_stage(self):
        (anywhere,) = parse_fault_spec("crash")
        (pinned,) = parse_fault_spec("crash:stage=2")
        assert anywhere.matches_stage(0) and anywhere.matches_stage(7)
        assert pinned.matches_stage(2) and not pinned.matches_stage(3)

    def test_describe_round_trips_the_interesting_bits(self):
        (clause,) = parse_fault_spec("lostblock:instance=rank,iteration=3,p=0.5")
        text = clause.describe()
        assert "lostblock" in text
        assert "instance=rank@3" in text
        assert "p=0.5" in text


class TestRejection:
    @pytest.mark.parametrize(
        "spec, message",
        [
            ("", "no clauses"),
            (" ; ", "no clauses"),
            ("meteor", "unknown fault kind"),
            ("crash:stage", "malformed option"),
            ("crash:stage=", "malformed option"),
            ("crash:oops=1", "not valid for fault kind"),
            ("crash:stage=1,stage=2", "duplicate option"),
            ("crash:stage=-1", "must be >= 0"),
            ("crash:stage=two", "must be an integer"),
            ("crash:p=1.5", "p must be in"),
            ("crash:p=high", "must be a number"),
            ("straggler:factor=1.0", "factor must be > 1"),
            ("flaky:at=disk", "at must be one of"),
            ("lostblock", "needs instance=NAME"),
            ("lostblock:instance=rank@2,iteration=2", "not both"),
            ("lostblock:instance=rank,iteration=0", "must be >= 1"),
            ("crash:iteration=2", "not valid for fault kind"),
            ("crash:instance=rank", "not valid for fault kind"),
        ],
    )
    def test_malformed_specs_rejected(self, spec, message):
        with pytest.raises(FaultSpecError, match=message):
            parse_fault_spec(spec)

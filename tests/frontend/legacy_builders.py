"""The hand-written ProgramBuilder factories the frontend replaced.

Verbatim copies of the seven application builders as they existed before
the :mod:`repro.frontend` migration (only renamed ``legacy_*``).  They
exist solely as the ground truth for the byte-identical equivalence
property tests in ``test_migration.py`` -- do not import them from
production code.
"""

from __future__ import annotations

from repro.lang.program import MatrixProgram, ProgramBuilder
from repro.programs.pagerank import DAMPING
from repro.programs.svd import LanczosScalars

DEFAULT_LAMBDA = 1e-6


def legacy_gnmf_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    factors: int = 200,
    iterations: int = 10,
    seed: int = 0,
) -> MatrixProgram:
    rows, cols = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (rows, cols), sparsity=v_sparsity)
    w = pb.random("W", (rows, factors), seed=seed)
    h = pb.random("H", (factors, cols), seed=seed + 1)
    for __ in range(iterations):
        h = pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
        w = pb.assign("W", w * (v @ h.T) / (w @ h @ h.T))
    pb.output(w)
    pb.output(h)
    return pb.build()


def legacy_pagerank_program(
    nodes: int,
    link_sparsity: float,
    iterations: int = 10,
    seed: int = 0,
    damping: float = DAMPING,
    normalize: bool = False,
) -> MatrixProgram:
    pb = ProgramBuilder()
    link = pb.load("link", (nodes, nodes), sparsity=link_sparsity)
    if normalize:
        ones = pb.full("ones", (1, nodes), 1.0)
        link = pb.assign("link_n", link / (link.row_sums() @ ones))
    rank = pb.random("rank", (1, nodes), seed=seed)
    teleport = pb.full("D", (1, nodes), 1.0 / nodes)
    for __ in range(iterations):
        rank = pb.assign("rank", (rank @ link) * damping + teleport * (1.0 - damping))
    pb.output(rank)
    return pb.build()


def legacy_jacobi_program(
    n: int,
    r_sparsity: float,
    iterations: int = 25,
) -> MatrixProgram:
    pb = ProgramBuilder()
    remainder = pb.load("R", (n, n), sparsity=r_sparsity)
    dinv = pb.load("dinv", (n, 1), sparsity=1.0)
    rhs = pb.load("b", (n, 1), sparsity=1.0)
    x = pb.full("x", (n, 1), 0.0)

    for __ in range(iterations):
        x = pb.assign("x", dinv * (rhs - remainder @ x))

    step = pb.assign("step", dinv * (rhs - remainder @ x) - x)
    delta2 = pb.scalar("delta2", (step * step).sum())
    pb.scalar_output(delta2)
    pb.output(x)
    return pb.build()


def legacy_linreg_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    seed: int = 0,
    ridge: float = DEFAULT_LAMBDA,
) -> MatrixProgram:
    examples, features = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (examples, features), sparsity=v_sparsity)
    y = pb.load("y", (examples, 1), sparsity=1.0)
    w = pb.full("w", (features, 1), 0.0)

    r = pb.assign("r", (v.T @ y) * -1.0)
    p = pb.assign("p", r * -1.0)
    norm_r2 = pb.scalar("norm_r2", (r * r).sum())

    for __ in range(iterations):
        q = pb.assign("q", (v.T @ (v @ p)) + p * ridge)
        alpha = pb.scalar("alpha", norm_r2 / (p.T @ q).value())
        w = pb.assign("w", w + p * alpha)
        old_norm_r2 = norm_r2
        r = pb.assign("r", r + q * alpha)
        norm_r2 = pb.scalar("norm_r2", (r * r).sum())
        beta = pb.scalar("beta", norm_r2 / old_norm_r2)
        p = pb.assign("p", r * -1.0 + p * beta)

    pb.output(w)
    pb.scalar_output(norm_r2)
    return pb.build()


def legacy_logreg_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    learning_rate: float = 0.5,
) -> MatrixProgram:
    examples, features = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (examples, features), sparsity=v_sparsity)
    y = pb.load("y", (examples, 1), sparsity=1.0)
    w = pb.full("w", (features, 1), 0.0)

    step = learning_rate / examples
    for __ in range(iterations):
        predictions = pb.assign("p", (v @ w).sigmoid())
        residual = pb.assign("r", predictions - y)
        gradient = pb.assign("g", v.T @ residual)
        w = pb.assign("w", w - gradient * step)

    sq_err = pb.scalar("sq_err", (residual * residual).sum())
    pb.scalar_output(sq_err)
    pb.output(w)
    return pb.build()


def legacy_cf_program(
    r_shape: tuple[int, int],
    r_sparsity: float,
) -> MatrixProgram:
    items, users = r_shape
    pb = ProgramBuilder()
    r = pb.load("R", (items, users), sparsity=r_sparsity)
    result = pb.assign("result", r @ r.T @ r)
    norm = pb.scalar("norm", (result * result).sum().sqrt())
    predict = pb.assign("predict", result * (1.0 / norm))
    pb.output(predict)
    return pb.build()


def legacy_svd_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    rank: int = 10,
    seed: int = 0,
) -> tuple[MatrixProgram, LanczosScalars]:
    rows, cols = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (rows, cols), sparsity=v_sparsity)
    vc = pb.random("vc", (cols, 1), seed=seed)
    start_norm = pb.scalar("start_norm", vc.norm2())
    vc = pb.assign("vc", vc * (1.0 / start_norm))
    vp = pb.full("vp", (cols, 1), 0.0)

    alphas: list[str] = []
    betas: list[str] = []
    beta_prev: object = 0.0
    for i in range(rank):
        w = pb.assign("w", v.T @ (v @ vc))
        alpha = pb.scalar("alpha", (vc.T @ w).value())
        pb.scalar_output(alpha)
        alphas.append(alpha.name)
        w = pb.assign("w", w - vp * beta_prev)
        w = pb.assign("w", w - vc * alpha)
        if i + 1 < rank:
            beta = pb.scalar("beta", w.norm2())
            pb.scalar_output(beta)
            betas.append(beta.name)
            vp = vc
            vc = pb.assign("vc", w * (1.0 / beta))
            beta_prev = beta
    pb.output(vc)
    return pb.build(), LanczosScalars(tuple(alphas), tuple(betas))

"""Lowering semantics of the ast frontend: decorated Python functions
compile to the same MatrixProgram IR ProgramBuilder produces, and the
compiled programs compute the right numbers on the simulated cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import (
    full,
    norm2,
    output,
    output_scalar,
    random,
    row_sums,
    sigmoid,
    sum,
    value,
    zeros,
)
from repro.lang.program import MatrixProgram, ProgramBuilder


def session() -> DMacSession:
    return DMacSession(ClusterConfig(num_workers=2, threads_per_worker=2))


def test_simple_program_matches_builder():
    @matrix_program
    def doubled(A: Matrix):
        B = A + A
        output(B)

    program = doubled.compile(A=matrix_input((3, 4)))
    assert isinstance(program, MatrixProgram)

    pb = ProgramBuilder()
    a = pb.load("A", (3, 4), sparsity=1.0)
    pb.output(pb.assign("B", a + a))
    assert program == pb.build()


def test_matrix_params_load_in_signature_order():
    @matrix_program
    def two(A: Matrix, B: Matrix):
        C = A @ B
        output(C)

    program = two.compile(A=matrix_input((2, 3)), B=matrix_input((3, 4)))
    loads = [op for op in program.ops if type(op).__name__ == "LoadOp"]
    assert [op.output for op in loads] == ["A", "B"]


def test_tuple_binding_coerced_to_dense_input():
    @matrix_program
    def ident(A: Matrix):
        output(A)

    program = ident.compile(A=(5, 7))
    load = program.ops[0]
    assert (load.rows, load.cols) == (5, 7)
    assert load.sparsity == 1.0


def test_for_loop_unrolls_with_ssa_versions():
    @matrix_program
    def iterate(A: Matrix, iterations: int):
        x = zeros(A.rows, 1)
        for _ in range(iterations):
            x = A @ x
        output(x)

    program = iterate.compile(A=matrix_input((4, 4)), iterations=3)
    versions = [op.output for op in program.ops if hasattr(op, "output")]
    assert "x@2" in versions and "x@3" in versions and "x@4" in versions


def test_static_if_prunes_untaken_branch():
    @matrix_program
    def maybe(A: Matrix, flag: bool):
        if flag:
            A = A + A
        else:
            A = A * 3.0
        output(A)

    on = maybe.compile(A=matrix_input((2, 2)), flag=True)
    off = maybe.compile(A=matrix_input((2, 2)), flag=False)
    assert on != off
    assert len(on.ops) == len(off.ops)


def test_bare_alias_emits_no_op():
    @matrix_program
    def aliased(A: Matrix):
        B = A + A
        C = B
        D = C + A
        output(D)

    pb = ProgramBuilder()
    a = pb.load("A", (2, 2), sparsity=1.0)
    b = pb.assign("B", a + a)
    pb.output(pb.assign("D", b + a))
    assert aliased.compile(A=matrix_input((2, 2))) == pb.build()


def test_scalar_defaults_apply():
    @matrix_program
    def scaled(A: Matrix, factor: Scalar = 2.0):
        B = A * factor
        output(B)

    default = scaled.compile(A=matrix_input((2, 2)))
    explicit = scaled.compile(A=matrix_input((2, 2)), factor=2.0)
    assert default == explicit


def test_shape_accessors_are_compile_time():
    @matrix_program
    def shaped(A: Matrix):
        o = full(A.cols, A.rows, 1.0)
        B = A @ o
        output(B)

    program = shaped.compile(A=matrix_input((3, 5)))
    ones_op = next(op for op in program.ops if op.output == "o")
    assert (ones_op.rows, ones_op.cols) == (5, 3)


def test_name_override():
    @matrix_program(name="renamed")
    def original(A: Matrix):
        output(A)

    assert original.name == "renamed"


def test_method_and_function_reductions_agree():
    @matrix_program
    def via_methods(A: Matrix):
        s = (A * A).sum()
        output_scalar(s)
        output(A)

    @matrix_program
    def via_functions(A: Matrix):
        s = sum(A * A)
        output_scalar(s)
        output(A)

    shape = matrix_input((3, 3))
    assert via_methods.compile(A=shape) == via_functions.compile(A=shape)


def test_execution_matches_numpy():
    @matrix_program
    def pipelineish(A: Matrix, y: Matrix):
        p = sigmoid(A @ y)
        rs = row_sums(A)
        q = p * 2.0 - y
        n = norm2(q)
        total = sum(rs)
        output(q)
        output_scalar(n)
        output_scalar(total)

    rng = np.random.default_rng(11)
    a = rng.random((6, 6))
    yv = rng.random((6, 1))
    program = pipelineish.compile(A=matrix_input((6, 6)), y=matrix_input((6, 1)))
    result = session().run(program, {"A": a, "y": yv})

    expected_p = 1.0 / (1.0 + np.exp(-(a @ yv)))
    expected_q = expected_p * 2.0 - yv
    np.testing.assert_allclose(result.matrices["q"], expected_q, atol=1e-12)
    assert result.scalars["n"] == pytest.approx(np.linalg.norm(expected_q))
    assert result.scalars["total"] == pytest.approx(a.sum())


def test_value_scalar_extraction():
    @matrix_program
    def dotself(x: Matrix):
        s = value(x.T @ x)
        output_scalar(s)
        output(x)

    rng = np.random.default_rng(5)
    xv = rng.random((7, 1))
    program = dotself.compile(x=matrix_input((7, 1)))
    result = session().run(program, {"x": xv})
    assert result.scalars["s"] == pytest.approx((xv.T @ xv).item())


def test_random_source_deterministic_per_seed():
    @matrix_program
    def seeded(n: int, seed: int = 0):
        x = random(n, 1, seed=seed)
        output(x)

    p1 = seeded.compile(n=4, seed=3)
    p2 = seeded.compile(n=4, seed=3)
    p3 = seeded.compile(n=4, seed=4)
    assert p1 == p2
    assert p1 != p3
    r1 = session().run(p1, {})
    r2 = session().run(p2, {})
    np.testing.assert_array_equal(r1.matrices["x"], r2.matrices["x"])


def test_static_arithmetic_folds():
    @matrix_program
    def folded(A: Matrix, k: int):
        step = 1.0 / (k * 2)
        B = A * step
        output(B)

    program = folded.compile(A=matrix_input((2, 2)), k=4)

    pb = ProgramBuilder()
    a = pb.load("A", (2, 2), sparsity=1.0)
    pb.output(pb.assign("B", a * 0.125))
    assert program == pb.build()

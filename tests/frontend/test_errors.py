"""Frontend diagnostics: every rejection names the offending source line.

A failed ``@matrix_program`` must read like a Python traceback -- function
name, file, 1-based absolute line -- so these tests assert not only the
message but that ``FrontendError.line`` points at the exact statement
(verified against the file's actual text via :mod:`linecache`).
"""

from __future__ import annotations

import linecache

import pytest

from repro.errors import ProgramError
from repro.frontend import FrontendError, Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import load, norm2, output, output_scalar, sum, value


def _line_text(exc: FrontendError) -> str:
    assert exc.filename is not None and exc.line is not None
    return linecache.getline(exc.filename, exc.line)


def compile_error(program, **bindings) -> FrontendError:
    with pytest.raises(FrontendError) as info:
        program.compile(**bindings)
    return info.value


def test_unsupported_statement_names_its_line():
    @matrix_program
    def bad(A: Matrix):
        x = A + A
        del x
        output(x)

    exc = compile_error(bad, A=matrix_input((3, 3)))
    assert "unsupported syntax: Delete" in str(exc)
    assert exc.function == "bad"
    assert "del x" in _line_text(exc)


def test_untyped_argument_rejected_at_decoration():
    with pytest.raises(FrontendError) as info:

        @matrix_program
        def bad(A, iterations: int):
            output(A)

    assert "untyped argument 'A'" in str(info.value)


def test_unsupported_annotation_rejected():
    with pytest.raises(FrontendError) as info:

        @matrix_program
        def bad(A: "list"):
            output(A)

    assert "bad" in str(info.value)


def test_shape_mismatch_points_at_the_matmul():
    @matrix_program
    def bad(A: Matrix, B: Matrix):
        C = A @ B
        output(C)

    exc = compile_error(bad, A=matrix_input((3, 4)), B=matrix_input((3, 4)))
    assert "matmul inner dimensions differ" in str(exc)
    assert "A @ B" in _line_text(exc)


def test_unknown_variable_names_its_line():
    @matrix_program
    def bad(A: Matrix):
        x = A + missing  # noqa: F821
        output(x)

    exc = compile_error(bad, A=matrix_input((2, 2)))
    assert "unknown variable 'missing'" in str(exc)
    assert "missing" in _line_text(exc)


def test_while_condition_must_reduce_matrices():
    @matrix_program
    def bad(A: Matrix, eps: Scalar):
        x = A + A
        while x > eps:
            x = x + A
        output(x)

    exc = compile_error(bad, A=matrix_input((2, 2)), eps=0.5)
    assert "must compare scalars" in str(exc)
    assert "norm2" in str(exc)  # the fix is suggested
    assert "while x > eps" in _line_text(exc)


def test_while_condition_must_be_a_comparison():
    @matrix_program
    def bad(A: Matrix):
        x = A + A
        while True:
            x = x + A
        output(x)

    exc = compile_error(bad, A=matrix_input((2, 2)))
    assert "single comparison" in str(exc)


def test_constant_while_condition_rejected():
    @matrix_program
    def bad(A: Matrix):
        x = A + A
        while 1.0 > 0.5:
            x = x + A
        output(x)

    exc = compile_error(bad, A=matrix_input((2, 2)))
    assert "constant at compile time" in str(exc)


def test_reserved_while_prefix_rejected():
    @matrix_program
    def bad(A: Matrix):
        _while_thing = A + A
        output(_while_thing)

    exc = compile_error(bad, A=matrix_input((2, 2)))
    assert "reserved" in str(exc)


def test_runtime_if_condition_rejected():
    @matrix_program
    def bad(A: Matrix):
        s = sum(A)
        if s > 1.0:
            A = A + A
        output(A)

    exc = compile_error(bad, A=matrix_input((2, 2)))
    assert "if" in str(exc) and "compile-time" in str(exc)
    assert "if s > 1.0" in _line_text(exc)


def test_output_inside_while_body_rejected():
    @matrix_program
    def bad(A: Matrix, eps: Scalar):
        y = A + A
        r = norm2(y)
        while r > eps:
            y = y + A
            output(y)
            r = norm2(y)
        output_scalar(r)

    exc = compile_error(bad, A=matrix_input((2, 2)), eps=0.1)
    assert "output" in str(exc)
    assert "output(y)" in _line_text(exc)


def test_source_call_only_as_whole_assignment():
    @matrix_program
    def bad(A: Matrix):
        x = A + load("B", 2, 2)
        output(x)

    exc = compile_error(bad, A=matrix_input((2, 2)))
    assert "load" in str(exc)


def test_unknown_binding_rejected():
    @matrix_program
    def ok(A: Matrix):
        output(A)

    with pytest.raises(FrontendError) as info:
        ok.compile(A=matrix_input((2, 2)), B=matrix_input((2, 2)))
    assert "B" in str(info.value)


def test_missing_matrix_binding_rejected():
    @matrix_program
    def ok(A: Matrix):
        output(A)

    with pytest.raises(FrontendError):
        ok.compile()


def test_matrix_binding_type_checked():
    @matrix_program
    def ok(A: Matrix, iterations: int):
        for _ in range(iterations):
            A = A + A
        output(A)

    with pytest.raises(FrontendError):
        ok.compile(A=matrix_input((2, 2)), iterations=2.5)


def test_calling_decorated_function_directly_is_an_error():
    @matrix_program
    def ok(A: Matrix):
        output(A)

    with pytest.raises(FrontendError) as info:
        ok(1)
    assert "compile" in str(info.value)


def test_frontend_error_is_a_program_error():
    assert issubclass(FrontendError, ProgramError)


def test_two_whiles_rejected():
    @matrix_program
    def bad(A: Matrix, eps: Scalar):
        y = A + A
        s = norm2(y)
        while s > eps:
            y = y + A
            s = norm2(y)
        while s > eps:
            y = y + A
            s = norm2(y)
        output(y)

    exc = compile_error(bad, A=matrix_input((2, 2)), eps=0.1)
    assert "while" in str(exc)


def test_value_requires_one_by_one():
    @matrix_program
    def bad(A: Matrix):
        s = value(A)
        output_scalar(s)
        output(A)

    with pytest.raises(FrontendError):
        bad.compile(A=matrix_input((3, 3)))

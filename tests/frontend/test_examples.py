"""Scenario coverage for the frontend example programs.

The two frontend demos (``powiter``, ``ridge``) are registered workloads,
so every CLI surface -- run, lint, verify (with execution), trace, fault
injection -- must handle them, including the staged while-convergence
path.  These tests drive the real CLI entry point at small scale.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

POWITER = ["--rows", "24", "--eps", "1e-4", "--seed", "2"]
RIDGE = ["--rows", "60", "--features", "6", "--sparsity", "0.5",
         "--iterations", "2"]


class TestRunScenarios:
    def test_powiter_runs_staged(self, capsys):
        assert main(["run", "powiter", *POWITER]) == 0
        out = capsys.readouterr().out
        assert "segment" in out

    def test_powiter_json_reports_segments(self, capsys):
        assert main(["run", "powiter", *POWITER, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["staged"] is True
        assert payload["segments"] >= 1

    def test_ridge_runs(self, capsys):
        assert main(["run", "ridge", *RIDGE]) == 0
        assert "ridge" in capsys.readouterr().out

    def test_powiter_compare_rejected(self, capsys):
        # the SystemML-S baseline has no dynamic-extension path
        assert main(["run", "powiter", *POWITER, "--compare"]) == 2

    def test_powiter_run_with_trace_reconciles(self, capsys):
        assert main(["run", "powiter", *POWITER, "--trace"]) == 0


class TestLintScenarios:
    @pytest.mark.parametrize("app,extra", [("powiter", POWITER),
                                           ("ridge", RIDGE)])
    def test_lint_clean(self, app, extra, capsys):
        assert main(["lint", app, *extra]) == 0

    def test_lint_powiter_json_covers_both_segments(self, capsys):
        assert main(["lint", "powiter", *POWITER, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["staged"] is True
        labels = [entry["segment"] for entry in payload["segments"]]
        assert labels == ["prologue", "body"]


class TestVerifyScenarios:
    @pytest.mark.parametrize("app,extra", [("powiter", POWITER),
                                           ("ridge", RIDGE)])
    def test_verify_sound(self, app, extra, capsys):
        assert main(["verify", app, *extra]) == 0

    def test_verify_powiter_execute_checks_every_segment(self, capsys):
        assert main(["verify", "powiter", *POWITER, "--execute",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["staged"] is True
        assert len(payload["segments"]) == 2
        execution = payload["execution"]
        assert execution["sound"] is True
        assert execution["segments"] >= 1

    def test_verify_ridge_execute(self, capsys):
        assert main(["verify", "ridge", *RIDGE, "--execute"]) == 0


class TestTraceScenarios:
    @pytest.mark.parametrize("app,extra", [("powiter", POWITER),
                                           ("ridge", RIDGE)])
    def test_trace_reconciles(self, app, extra, capsys):
        assert main(["trace", app, *extra]) == 0


class TestFaultScenarios:
    def test_powiter_verify_under_faults(self, capsys):
        # --faults implies --execute: the bound must hold on the faulted run
        assert main([
            "verify", "powiter", *POWITER,
            "--faults", "lostblock:instance=x,iteration=1",
        ]) == 0
        assert "faults" in capsys.readouterr().out

    def test_ridge_trace_under_faults(self, capsys):
        assert main([
            "trace", "ridge", *RIDGE,
            "--faults", "lostblock:instance=w,iteration=1",
        ]) == 0

    def test_powiter_chaos_results_match_clean_run(self, capsys):
        assert main([
            "chaos", "powiter", *POWITER,
            "--faults", "lostblock:instance=x,iteration=1",
        ]) == 0

"""The frontend migration is byte-identical to the hand-written builders.

Each of the seven paper applications used to be a hand-rolled
``ProgramBuilder`` factory (preserved verbatim in ``legacy_builders.py``).
They are now ``@matrix_program`` functions compiled by ``repro.frontend``.
These property tests prove the two pipelines produce *equal programs* --
same ops, same version names, same shapes, same declared sparsities, both
as dataclass equality and as serialized JSON -- and, as a belt-and-braces
check, identical execution results on the simulated cluster.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, DMacSession
from repro.lang.serialize import program_to_json
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_jacobi_program,
    build_linreg_program,
    build_logreg_program,
    build_pagerank_program,
    build_svd_program,
)

from .legacy_builders import (
    legacy_cf_program,
    legacy_gnmf_program,
    legacy_jacobi_program,
    legacy_linreg_program,
    legacy_logreg_program,
    legacy_pagerank_program,
    legacy_svd_program,
)

dims = st.integers(min_value=2, max_value=40)
sparsities = st.floats(min_value=0.01, max_value=1.0)
iteration_counts = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=10_000)


def assert_same_program(new, old) -> None:
    assert new == old
    assert program_to_json(new) == program_to_json(old)


@given(rows=dims, cols=dims, sparsity=sparsities, factors=dims,
       iterations=iteration_counts, seed=seeds)
def test_gnmf_identical(rows, cols, sparsity, factors, iterations, seed):
    new = build_gnmf_program((rows, cols), sparsity, factors=factors,
                             iterations=iterations, seed=seed)
    old = legacy_gnmf_program((rows, cols), sparsity, factors=factors,
                              iterations=iterations, seed=seed)
    assert_same_program(new, old)


@given(nodes=dims, sparsity=sparsities, iterations=iteration_counts,
       seed=seeds, damping=st.floats(min_value=0.01, max_value=0.99),
       normalize=st.booleans())
def test_pagerank_identical(nodes, sparsity, iterations, seed, damping,
                            normalize):
    new = build_pagerank_program(nodes, sparsity, iterations=iterations,
                                 seed=seed, damping=damping,
                                 normalize=normalize)
    old = legacy_pagerank_program(nodes, sparsity, iterations=iterations,
                                  seed=seed, damping=damping,
                                  normalize=normalize)
    assert_same_program(new, old)


@given(n=dims, sparsity=sparsities, iterations=iteration_counts)
def test_jacobi_identical(n, sparsity, iterations):
    assert_same_program(
        build_jacobi_program(n, sparsity, iterations=iterations),
        legacy_jacobi_program(n, sparsity, iterations=iterations),
    )


@given(examples=dims, features=dims, sparsity=sparsities,
       iterations=iteration_counts,
       ridge=st.floats(min_value=1e-9, max_value=1.0))
def test_linreg_identical(examples, features, sparsity, iterations, ridge):
    new = build_linreg_program((examples, features), sparsity,
                               iterations=iterations, ridge=ridge)
    old = legacy_linreg_program((examples, features), sparsity,
                                iterations=iterations, ridge=ridge)
    assert_same_program(new, old)


@given(examples=dims, features=dims, sparsity=sparsities,
       iterations=iteration_counts,
       learning_rate=st.floats(min_value=1e-3, max_value=2.0))
def test_logreg_identical(examples, features, sparsity, iterations,
                          learning_rate):
    new = build_logreg_program((examples, features), sparsity,
                               iterations=iterations,
                               learning_rate=learning_rate)
    old = legacy_logreg_program((examples, features), sparsity,
                                iterations=iterations,
                                learning_rate=learning_rate)
    assert_same_program(new, old)


@given(items=dims, users=dims, sparsity=sparsities)
def test_cf_identical(items, users, sparsity):
    assert_same_program(
        build_cf_program((items, users), sparsity),
        legacy_cf_program((items, users), sparsity),
    )


@given(rows=dims, cols=dims, sparsity=sparsities,
       rank=st.integers(min_value=1, max_value=6), seed=seeds)
def test_svd_identical(rows, cols, sparsity, rank, seed):
    new, new_names = build_svd_program((rows, cols), sparsity, rank=rank,
                                       seed=seed)
    old, old_names = legacy_svd_program((rows, cols), sparsity, rank=rank,
                                        seed=seed)
    assert_same_program(new, old)
    assert new_names == old_names


# -- execution equality: same plans AND same numbers ---------------------


def _session() -> DMacSession:
    return DMacSession(ClusterConfig(num_workers=2, threads_per_worker=2))


@settings(max_examples=5)
@given(seed=seeds)
def test_gnmf_execution_identical(seed):
    rng = np.random.default_rng(seed)
    data = rng.random((12, 9))
    new = build_gnmf_program(data.shape, 1.0, factors=4, iterations=2,
                             seed=seed)
    old = legacy_gnmf_program(data.shape, 1.0, factors=4, iterations=2,
                              seed=seed)
    new_result = _session().run(new, {"V": data})
    old_result = _session().run(old, {"V": data})
    assert set(new_result.matrices) == set(old_result.matrices)
    for name in new_result.matrices:
        np.testing.assert_array_equal(
            new_result.matrices[name], old_result.matrices[name]
        )
    assert new_result.comm_bytes == old_result.comm_bytes


@settings(max_examples=5)
@given(seed=seeds)
def test_linreg_execution_identical(seed):
    rng = np.random.default_rng(seed)
    design = rng.random((16, 5))
    target = rng.random((16, 1))
    new = build_linreg_program(design.shape, 1.0, iterations=2)
    old = legacy_linreg_program(design.shape, 1.0, iterations=2)
    inputs = {"V": design, "y": target}
    new_result = _session().run(new, inputs)
    old_result = _session().run(old, inputs)
    assert set(new_result.matrices) == set(old_result.matrices)
    for name in new_result.matrices:
        np.testing.assert_array_equal(new_result.matrices[name],
                                      old_result.matrices[name])
    assert new_result.scalars == old_result.scalars


@pytest.mark.parametrize("rank", [1, 2, 5])
def test_svd_scalar_names_roundtrip(rank):
    __, names = build_svd_program((8, 6), 1.0, rank=rank)
    assert len(names.alphas) == rank
    assert len(names.betas) == rank - 1

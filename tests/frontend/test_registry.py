"""The program registry is the single source of truth for app workloads.

The CLI, the benchmark harness, and the verification test helpers all
read :mod:`repro.programs.registry`; these tests pin the table's shape
(names, order, tiers, staged flags), prove every registered workload
actually builds at small scale, and check the argparse bridge.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.frontend.staged import StagedProgram
from repro.lang.program import MatrixProgram
from repro.programs.registry import (
    ALL_APPS,
    PAPER_APPS,
    SPECS,
    TIER_EXAMPLE,
    TIER_PAPER,
    WorkloadParams,
    build_workload,
    get_spec,
    registered_names,
)

SMALL = WorkloadParams(
    scale=2e-3, seed=3, factors=4, iterations=2, graph="LiveJournal",
    rows=40, features=8, sparsity=0.2, rank=3, eps=1e-2, ridge=1e-2,
)


def test_paper_apps_preserve_cli_order():
    # the historic CLI APPS tuple, now derived from the registry
    assert PAPER_APPS == ("gnmf", "pagerank", "linreg", "logreg", "jacobi",
                         "cf", "svd")


def test_all_apps_is_paper_then_examples():
    assert ALL_APPS[: len(PAPER_APPS)] == PAPER_APPS
    assert set(ALL_APPS) - set(PAPER_APPS) == {"powiter", "ridge"}


def test_names_unique_and_tiers_valid():
    assert len(set(ALL_APPS)) == len(ALL_APPS)
    assert {spec.tier for spec in SPECS} == {TIER_PAPER, TIER_EXAMPLE}


def test_registered_names_filters_by_tier():
    assert registered_names() == ALL_APPS
    assert registered_names(TIER_PAPER) == PAPER_APPS
    assert set(registered_names(TIER_EXAMPLE)) == {"powiter", "ridge"}


def test_get_spec_unknown_name_lists_registered():
    with pytest.raises(ProgramError, match="gnmf"):
        get_spec("nope")


@pytest.mark.parametrize("name", ALL_APPS)
def test_every_workload_builds_at_small_scale(name):
    workload = build_workload(name, SMALL)
    spec = get_spec(name)
    expected = StagedProgram if spec.staged else MatrixProgram
    assert isinstance(workload.program, expected)
    assert workload.inputs
    for array in workload.inputs.values():
        assert isinstance(array, np.ndarray)
    if name == "svd":
        assert workload.extra is not None


def test_only_powiter_is_staged():
    assert [spec.name for spec in SPECS if spec.staged] == ["powiter"]


def test_workload_params_from_namespace_partial():
    ns = argparse.Namespace(rows=7, seed=99)
    params = WorkloadParams.from_namespace(ns)
    assert params.rows == 7
    assert params.seed == 99
    assert params.iterations == WorkloadParams().iterations


def test_workload_params_from_namespace_ignores_extras():
    ns = argparse.Namespace(rows=5, app="gnmf", verbosity=3)
    assert WorkloadParams.from_namespace(ns).rows == 5


def test_same_params_build_identical_datasets():
    a = build_workload("linreg", SMALL)
    b = build_workload("linreg", SMALL)
    assert a.program == b.program
    assert set(a.inputs) == set(b.inputs)
    for name in a.inputs:
        np.testing.assert_array_equal(a.inputs[name], b.inputs[name])


def test_cli_workload_goes_through_registry():
    from repro import cli

    args = argparse.Namespace(
        app="jacobi", scale=2e-3, seed=1, factors=4, iterations=2,
        graph="LiveJournal", rows=30, features=6, sparsity=0.3, rank=3,
        eps=1e-2, ridge=1e-2,
    )
    program, inputs, extra = cli._workload(args)
    direct = build_workload("jacobi", WorkloadParams.from_namespace(args))
    assert program == direct.program
    assert set(inputs) == set(direct.inputs)
    assert extra is None

    args.app = "nope"
    with pytest.raises(SystemExit):
        cli._workload(args)

"""Segment-wise execution of while-convergence programs.

A staged program's loop body is planned exactly once; the session then
extends the run segment by segment, rebinding carried variables, until the
driver evaluates the condition scalars to false.  These tests pin down the
structure (carried vars, condition, outputs), the numerics (against a pure
numpy reference), the zero-segment path, non-convergence, per-segment
lint/verify/trace, and fault recovery across segment boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.errors import ExecutionError, PlanError
from repro.frontend import Matrix, Scalar, StagedProgram, matrix_input, matrix_program
from repro.frontend.dsl import full, norm2, output, output_scalar, value
from repro.programs.power_iteration import (
    build_power_iteration_program,
    dominant_eigen_dataset,
)

N = 24


def strict_session(**kwargs) -> DMacSession:
    return DMacSession(
        ClusterConfig(num_workers=2, threads_per_worker=2), **kwargs
    )


@pytest.fixture()
def staged() -> StagedProgram:
    return build_power_iteration_program(N, eps=1e-6)


@pytest.fixture()
def data() -> np.ndarray:
    return dominant_eigen_dataset(N, seed=2)


def numpy_power_iteration(a: np.ndarray, eps: float):
    n = a.shape[0]
    x = np.full((n, 1), 1.0 / n)
    y = a @ x
    lam = (x.T @ y).item()
    segments = 0
    while np.linalg.norm(y - x * lam) > eps:
        x = y / np.linalg.norm(y)
        y = a @ x
        lam = (x.T @ y).item()
        segments += 1
    return x, lam, segments


def test_staged_structure(staged):
    assert isinstance(staged, StagedProgram)
    assert staged.condition.op == ">"
    labels = [label for label, __ in staged.segments()]
    assert labels == ["prologue", "body"]
    carried_names = {var.name for var in staged.carried}
    assert "y" in carried_names  # loop-carried iterate
    assert {out.name for out in staged.matrix_outputs} == {"x"}
    assert {out.name for out in staged.scalar_outputs} == {"lam"}


def test_converges_and_matches_numpy(staged, data):
    result = strict_session().run(staged, {"A": data})
    ref_x, ref_lam, ref_segments = numpy_power_iteration(data, 1e-6)
    assert result.num_segments == ref_segments
    assert result.num_segments >= 2  # the dataset needs real iteration
    assert result.scalars["lam"] == pytest.approx(ref_lam, rel=1e-12)
    np.testing.assert_allclose(result.matrices["x"], ref_x, atol=1e-12)
    # the dominant eigenvalue of the planted dataset
    assert result.scalars["lam"] == pytest.approx(
        np.linalg.eigvalsh(data)[-1], rel=1e-4
    )


def test_final_condition_scalars_reported(staged, data):
    result = strict_session().run(staged, {"A": data})
    # eps was bound at compile time, so the rhs is a constant in the spec;
    # the lhs residual is re-evaluated (and reported) every segment.
    assert isinstance(staged.condition.rhs, float)
    assert result.scalars["_while_lhs"] <= staged.condition.rhs
    last = result.segments[-1]
    assert last.continued is False
    assert all(record.continued for record in result.segments[:-1])


def test_zero_segments_returns_prologue_outputs(data):
    loose = build_power_iteration_program(N, eps=1e9)
    result = strict_session().run(loose, {"A": data})
    assert result.num_segments == 0
    n = data.shape[0]
    x0 = np.full((n, 1), 1.0 / n)
    np.testing.assert_allclose(result.matrices["x"], x0)
    assert result.scalars["lam"] == pytest.approx((x0.T @ data @ x0).item())


def test_non_convergence_raises(data):
    stuck = build_power_iteration_program(N, eps=1e-300)
    stuck = type(stuck)(**{**stuck.__dict__, "max_segments": 3})
    with pytest.raises(ExecutionError, match="did not converge within 3"):
        strict_session().run(stuck, {"A": data})


def test_lint_verify_trace_fire_per_segment(staged, data):
    session = strict_session(lint="error", verify="error", trace=True)
    result = session.run(staged, {"A": data})
    from repro.trace import assert_reconciled

    assert len(result.segments) == result.num_segments + 1
    for record in result.segments:
        assert record.result.tracing is not None
        assert_reconciled(record.result.tracing)


def test_costs_aggregate_over_segments(staged, data):
    result = strict_session().run(staged, {"A": data})
    assert result.comm_bytes == sum(
        record.result.comm_bytes for record in result.segments
    )
    assert result.num_stages == sum(
        record.result.num_stages for record in result.segments
    )
    assert result.peak_memory_bytes == max(
        record.result.peak_memory_bytes for record in result.segments
    )
    assert result.simulated_seconds > 0


def test_static_memory_bound_holds_over_all_segments(staged, data):
    result = strict_session().run(staged, {"A": data})
    assert result.predicted_peak_memory_bytes is not None
    assert result.peak_memory_bytes <= result.predicted_peak_memory_bytes


def test_chaos_recovery_spans_segments(staged, data):
    from repro.faults import ChaosEngine, parse_fault_spec

    clean = strict_session().run(staged, {"A": data})
    engine = ChaosEngine(3, parse_fault_spec("lostblock:instance=x,iteration=1"))
    faulted = strict_session().run(staged, {"A": data}, chaos=engine)
    assert faulted.recovery is not None
    assert faulted.recovery["injected"] >= 1
    np.testing.assert_allclose(
        faulted.matrices["x"], clean.matrices["x"], atol=1e-9
    )


def test_tracer_kwarg_rejected_for_staged(staged, data):
    from repro.trace import TraceCollector

    with pytest.raises(PlanError, match="trace=True"):
        strict_session().run(staged, {"A": data}, tracer=TraceCollector())


def test_plan_kwarg_rejected_for_staged(staged, data):
    session = strict_session()
    prologue_plan = session.plan(staged.prologue)
    with pytest.raises(PlanError, match="pre-built plan"):
        session.run(staged, {"A": data}, plan=prologue_plan)


def test_missing_input_names_the_load(staged):
    with pytest.raises(ExecutionError, match="A"):
        strict_session().run(staged, {})


def test_loop_invariant_input_stays_bound_every_segment():
    # `A` is read inside the body but never assigned: every segment must
    # re-read the runtime input, not a stale prologue copy.
    @matrix_program
    def drift(A: Matrix, eps: Scalar):
        x = full(A.rows, 1, 1.0)
        r = norm2(A @ x - x)
        while r > eps:
            x = A @ x
            r = norm2(A @ x - x)
        output(x)
        output_scalar(r)

    staged = drift.compile(A=matrix_input((4, 4)), eps=1e-9)
    a = np.eye(4) * 0.5
    result = strict_session().run(staged, {"A": a})
    # x halves every segment until A @ x - x is tiny; final x must be a
    # power of 0.5, proving A was re-applied each segment.
    final = result.matrices["x"][0, 0]
    assert final == pytest.approx(0.5 ** (result.num_segments + 0), rel=1e-12) or (
        final == pytest.approx(0.5 ** result.num_segments, rel=1e-12)
    )


def test_scalar_condition_recomputed_in_body():
    # The condition can read a runtime scalar as long as the body
    # recomputes it each segment.
    @matrix_program
    def shrink(A: Matrix, tol: Scalar):
        x = full(A.rows, 1, 1.0)
        x = A @ x
        cur = value(x.T @ x)
        while cur > tol:
            x = A @ x
            cur = value(x.T @ x)
        output(x)
        output_scalar(cur)

    staged = shrink.compile(A=matrix_input((3, 3)), tol=1e-4)
    a = np.eye(3) * 0.25
    result = strict_session().run(staged, {"A": a})
    assert result.scalars["cur"] <= 1e-4
    assert result.num_segments >= 1


def test_loop_carried_scalar_rejected_with_guidance():
    from repro.frontend import FrontendError

    @matrix_program
    def carried(A: Matrix, tol: Scalar):
        x = full(A.rows, 1, 1.0)
        cur = value(x.T @ x)
        while cur > tol:
            prev = cur  # noqa: F841 -- reads a prologue scalar in the body
            x = A @ x
            cur = value(x.T @ x)
        output(x)
        output_scalar(cur)

    with pytest.raises(FrontendError, match="recompute it in the body"):
        carried.compile(A=matrix_input((3, 3)), tol=1e-4)

"""Tests for the 2-D block-cyclic extension (layout + SUMMA)."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import SchemeError, ShapeError
from repro.grid2d import (
    BlockCyclicPartitioner,
    Grid2DMatrix,
    GridLayout,
    one_d_imbalance,
    summa_matmul,
    summa_predicted_bytes,
    summa_stage_count,
)
from repro.rdd.context import ClusterContext
from tests.conftest import random_sparse


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))


class TestGridLayout:
    def test_near_square(self):
        assert GridLayout.near_square(4) == GridLayout(2, 2)
        assert GridLayout.near_square(8) == GridLayout(2, 4)
        assert GridLayout.near_square(7) == GridLayout(1, 7)

    def test_cyclic_ownership(self):
        layout = GridLayout(2, 2)
        assert layout.owner((0, 0)) == 0
        assert layout.owner((0, 1)) == 1
        assert layout.owner((1, 0)) == 2
        assert layout.owner((3, 5)) == layout.owner((1, 1))

    def test_cell_roundtrip(self):
        layout = GridLayout(2, 3)
        for worker in range(6):
            row, col = layout.cell(worker)
            assert row * 3 + col == worker

    def test_cell_out_of_range(self):
        with pytest.raises(SchemeError):
            GridLayout(2, 2).cell(4)

    def test_rejects_empty_grid(self):
        with pytest.raises(SchemeError):
            GridLayout(0, 2)

    def test_partitioner_equality(self):
        assert BlockCyclicPartitioner(GridLayout(2, 2)) == BlockCyclicPartitioner(
            GridLayout(2, 2)
        )
        assert BlockCyclicPartitioner(GridLayout(2, 2)) != BlockCyclicPartitioner(
            GridLayout(1, 4)
        )


class TestGrid2DMatrix:
    def test_roundtrip(self, ctx, rng):
        array = rng.random((40, 28))
        matrix = Grid2DMatrix.from_numpy(ctx, array, 8)
        np.testing.assert_array_equal(matrix.to_numpy(), array)

    def test_load_is_free(self, ctx, rng):
        Grid2DMatrix.from_numpy(ctx, rng.random((16, 16)), 4)
        assert ctx.ledger.total_bytes == 0

    def test_blocks_live_on_their_owner(self, ctx, rng):
        matrix = Grid2DMatrix.from_numpy(ctx, rng.random((40, 40)), 4)
        for worker in range(4):
            for key in matrix.worker_grid(worker):
                assert matrix.layout.owner(key) == worker

    def test_grid_larger_than_cluster_rejected(self, ctx, rng):
        with pytest.raises(SchemeError):
            Grid2DMatrix.from_numpy(ctx, rng.random((8, 8)), 4, GridLayout(3, 3))

    def test_2d_balances_a_skewed_matrix_better_than_1d(self, ctx, rng):
        """The paper's motivation for 2-D: better balance.  A matrix whose
        mass concentrates in a few block rows is badly skewed under Row
        partitioning but evened out by cyclic 2-D placement."""
        array = np.zeros((64, 64))
        array[:8, :] = rng.random((8, 64))  # all mass in block-row 0
        two_d = Grid2DMatrix.from_numpy(ctx, array, 8, GridLayout(2, 2)).imbalance()
        one_d = one_d_imbalance(ctx, array, 8, row_scheme=True)
        assert two_d < one_d


class TestSumma:
    @pytest.mark.parametrize("layout", [GridLayout(2, 2), GridLayout(1, 4), GridLayout(4, 1)])
    def test_correctness(self, ctx, rng, layout):
        a, b = rng.random((40, 32)), rng.random((32, 24))
        ga = Grid2DMatrix.from_numpy(ctx, a, 8, layout)
        gb = Grid2DMatrix.from_numpy(ctx, b, 8, layout)
        np.testing.assert_allclose(summa_matmul(ga, gb).to_numpy(), a @ b, atol=1e-9)

    def test_sparse_operands(self, ctx, rng):
        a = random_sparse(rng, 32, 32, 0.2)
        b = random_sparse(rng, 32, 16, 0.4)
        ga = Grid2DMatrix.from_numpy(ctx, a, 8)
        gb = Grid2DMatrix.from_numpy(ctx, b, 8)
        np.testing.assert_allclose(summa_matmul(ga, gb).to_numpy(), a @ b, atol=1e-9)

    def test_metered_bytes_match_prediction(self, ctx, rng):
        ga = Grid2DMatrix.from_numpy(ctx, rng.random((32, 32)), 8)
        gb = Grid2DMatrix.from_numpy(ctx, rng.random((32, 32)), 8)
        predicted = summa_predicted_bytes(ga, gb)
        mark = ctx.ledger.snapshot()
        summa_matmul(ga, gb)
        assert ctx.ledger.snapshot() - mark == predicted

    def test_result_is_block_cyclic(self, ctx, rng):
        ga = Grid2DMatrix.from_numpy(ctx, rng.random((32, 32)), 8)
        gb = Grid2DMatrix.from_numpy(ctx, rng.random((32, 32)), 8)
        result = summa_matmul(ga, gb)
        for worker in range(4):
            for key in result.worker_grid(worker):
                assert result.layout.owner(key) == worker

    def test_mismatched_layouts_rejected(self, ctx, rng):
        ga = Grid2DMatrix.from_numpy(ctx, rng.random((16, 16)), 4, GridLayout(2, 2))
        gb = Grid2DMatrix.from_numpy(ctx, rng.random((16, 16)), 4, GridLayout(1, 4))
        with pytest.raises(ShapeError):
            summa_matmul(ga, gb)

    def test_shape_mismatch_rejected(self, ctx, rng):
        ga = Grid2DMatrix.from_numpy(ctx, rng.random((16, 8)), 4)
        gb = Grid2DMatrix.from_numpy(ctx, rng.random((16, 8)), 4)
        with pytest.raises(ShapeError):
            summa_matmul(ga, gb)

    def test_stage_count_is_inner_panels(self, ctx, rng):
        ga = Grid2DMatrix.from_numpy(ctx, rng.random((32, 24)), 8)
        assert summa_stage_count(ga) == 3  # ceil(24 / 8)

    def test_flops_attributed(self, ctx, rng):
        ga = Grid2DMatrix.from_numpy(ctx, rng.random((32, 32)), 8)
        gb = Grid2DMatrix.from_numpy(ctx, rng.random((32, 32)), 8)
        summa_matmul(ga, gb)
        assert sum(e.stats.flops for e in ctx.engines) >= 2 * 32 * 32 * 32


class TestTradeoffVsOneD:
    def test_summa_beats_rmm_on_square_matrices(self, ctx, rng):
        """Square x square on 4 workers: SUMMA's (sqrt(K)-1)(|A|+|B|) beats
        RMM's K x |operand| and CPMM's K x |C|."""
        from repro.core.optimal import optimal_cost
        from repro.lang.program import ProgramBuilder

        n = 64
        a, b = rng.random((n, n)), rng.random((n, n))
        ga = Grid2DMatrix.from_numpy(ctx, a, 16, GridLayout(2, 2))
        gb = Grid2DMatrix.from_numpy(ctx, b, 16, GridLayout(2, 2))
        summa_bytes = summa_predicted_bytes(ga, gb)

        pb = ProgramBuilder()
        left = pb.load("A", (n, n))
        right = pb.load("B", (n, n))
        pb.output(pb.assign("C", left @ right))
        one_d_bytes = optimal_cost(pb.build(), 4)
        assert summa_bytes < one_d_bytes

    def test_rmm_beats_summa_on_skinny_operand(self, ctx, rng):
        """A tall-skinny right operand: broadcasting it (1-D RMM) moves far
        less than SUMMA's panel traffic over the big left operand."""
        from repro.core.optimal import optimal_cost
        from repro.lang.program import ProgramBuilder

        a, b = rng.random((256, 256)), rng.random((256, 4))
        ga = Grid2DMatrix.from_numpy(ctx, a, 32, GridLayout(2, 2))
        gb = Grid2DMatrix.from_numpy(ctx, b, 32, GridLayout(2, 2))
        summa_bytes = summa_predicted_bytes(ga, gb)

        pb = ProgramBuilder()
        left = pb.load("A", (256, 256))
        right = pb.load("B", (256, 4))
        pb.output(pb.assign("C", left @ right))
        one_d_bytes = optimal_cost(pb.build(), 4)
        assert one_d_bytes < summa_bytes


class TestLayoutVariants:
    def test_six_worker_grid(self, rng):
        ctx6 = ClusterContext(ClusterConfig(num_workers=6, threads_per_worker=1))
        layout = GridLayout.near_square(6)
        assert layout == GridLayout(2, 3)
        a, b = rng.random((24, 24)), rng.random((24, 24))
        ga = Grid2DMatrix.from_numpy(ctx6, a, 4, layout)
        gb = Grid2DMatrix.from_numpy(ctx6, b, 4, layout)
        np.testing.assert_allclose(summa_matmul(ga, gb).to_numpy(), a @ b, atol=1e-9)

    def test_nine_worker_square_grid(self, rng):
        ctx9 = ClusterContext(ClusterConfig(num_workers=9, threads_per_worker=1))
        layout = GridLayout.near_square(9)
        assert layout == GridLayout(3, 3)
        a, b = rng.random((18, 18)), rng.random((18, 18))
        ga = Grid2DMatrix.from_numpy(ctx9, a, 3, layout)
        gb = Grid2DMatrix.from_numpy(ctx9, b, 3, layout)
        np.testing.assert_allclose(summa_matmul(ga, gb).to_numpy(), a @ b, atol=1e-9)

    def test_worker_bytes_sum_to_matrix_size(self, ctx, rng):
        from repro.rdd.sizeof import model_sizeof

        array = rng.random((32, 32))
        matrix = Grid2DMatrix.from_numpy(ctx, array, 8)
        per_worker = matrix.worker_bytes()
        total = sum(model_sizeof(b) for __, b in matrix.rdd.collect())
        assert sum(per_worker) == total

    def test_imbalance_of_uniform_matrix_near_one(self, ctx, rng):
        matrix = Grid2DMatrix.from_numpy(
            ctx, rng.random((64, 64)), 8, GridLayout(2, 2), storage="dense"
        )
        assert matrix.imbalance() == pytest.approx(1.0, abs=0.01)

"""Unit tests for the batched BLAS dispatch layer (repro.kernels.batch)."""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.batch import (
    BATCH_MAX_DIM,
    BATCH_MIN_TASKS,
    GridProductPlan,
    StackBufferCache,
    plan_grid_product,
    stacked_matmul,
)
from repro.localexec.engine import _row_slabs


@dataclass(frozen=True)
class FakeBlock:
    """The minimal _BlockLike the planner inspects."""

    shape: tuple
    sparse: bool = False

    @property
    def is_sparse(self):
        return self.sparse


def grid(rows, cols, shape, sparse_at=()):
    return {
        (i, j): FakeBlock(shape, sparse=(i, j) in sparse_at)
        for i in range(rows)
        for j in range(cols)
    }


class TestPlanGridProduct:
    def test_regular_product_plans(self):
        plan = plan_grid_product(grid(2, 3, (8, 4)), grid(3, 2, (4, 8)))
        assert plan == GridProductPlan((0, 1), (0, 1, 2), (0, 1), 8, 4, 8)
        assert plan.tasks == 4
        assert plan.pairs == 12
        assert plan.flops_per_task == 2 * 8 * 4 * 8 * 3

    def test_inner_is_ascending_intersection(self):
        a = {(0, k): FakeBlock((4, 4)) for k in (5, 1, 3)}
        a.update({(1, k): FakeBlock((4, 4)) for k in (5, 1, 3)})
        b = {(k, j): FakeBlock((4, 4)) for k in (3, 1, 5) for j in (0, 1)}
        plan = plan_grid_product(a, b)
        assert plan is not None and plan.inner == (1, 3, 5)

    def test_empty_grid_is_unplanned(self):
        assert plan_grid_product({}, grid(2, 2, (4, 4))) is None
        assert plan_grid_product(grid(2, 2, (4, 4)), {}) is None

    def test_partial_grid_is_unplanned(self):
        a = grid(2, 2, (4, 4))
        del a[(1, 0)]
        assert plan_grid_product(a, grid(2, 2, (4, 4))) is None

    def test_sparse_block_is_unplanned(self):
        a = grid(2, 2, (4, 4), sparse_at={(1, 1)})
        assert plan_grid_product(a, grid(2, 2, (4, 4))) is None

    def test_ragged_shapes_are_unplanned(self):
        a = grid(2, 2, (4, 4))
        a[(1, 1)] = FakeBlock((4, 3))
        assert plan_grid_product(a, grid(2, 2, (4, 4))) is None

    def test_oversized_blocks_are_unplanned(self):
        big = (BATCH_MAX_DIM + 1, BATCH_MAX_DIM + 1)
        assert plan_grid_product(grid(2, 2, big), grid(2, 2, big)) is None
        assert plan_grid_product(grid(2, 2, big), grid(2, 2, big),
                                 max_dim=BATCH_MAX_DIM + 1) is not None

    def test_disjoint_inner_indices_are_unplanned(self):
        a = {(0, 0): FakeBlock((4, 4)), (1, 0): FakeBlock((4, 4))}
        b = {(7, 0): FakeBlock((4, 4)), (7, 1): FakeBlock((4, 4))}
        assert plan_grid_product(a, b) is None

    def test_narrow_stages_are_unplanned(self):
        """A block dot product (1x1 result over many inner levels) has no
        parallel width -- the measured losing shape the gate excludes."""
        assert BATCH_MIN_TASKS == 4
        assert plan_grid_product(grid(1, 8, (4, 4)), grid(8, 1, (4, 4))) is None
        assert plan_grid_product(grid(1, 2, (4, 4)), grid(2, 2, (4, 4))) is None
        assert plan_grid_product(grid(2, 2, (4, 4)), grid(2, 2, (4, 4))) is not None
        assert plan_grid_product(grid(1, 8, (4, 4)), grid(8, 1, (4, 4)),
                                 min_tasks=1) is not None


class TestStackBufferCache:
    def test_checkout_shape_and_capacity(self):
        cache = StackBufferCache()
        buffer = cache.checkout(5, (8, 4))
        assert buffer.shape == (5, 8, 4) and buffer.dtype == np.float64

    def test_checkin_then_checkout_reuses(self):
        cache = StackBufferCache()
        buffer = cache.checkout(5, (8, 4))
        cache.checkin(buffer)
        assert cache.checkout(3, (8, 4)) is buffer

    def test_concurrent_checkouts_are_distinct(self):
        cache = StackBufferCache()
        assert cache.checkout(2, (4, 4)) is not cache.checkout(2, (4, 4))

    def test_too_small_idle_buffer_is_not_reused(self):
        cache = StackBufferCache()
        cache.checkin(cache.checkout(2, (4, 4)))
        grown = cache.checkout(9, (4, 4))
        assert grown.shape[0] >= 9

    def test_reuse_is_keyed_by_slice_shape(self):
        cache = StackBufferCache()
        buffer = cache.checkout(4, (8, 4))
        cache.checkin(buffer)
        assert cache.checkout(4, (4, 8)) is not buffer


class TestStackedMatmul:
    def test_bitwise_matches_individual_products(self):
        rng = np.random.default_rng(3)
        lefts = [rng.standard_normal((5, 7)) for _ in range(9)]
        rights = [rng.standard_normal((7, 3)) for _ in range(9)]
        out = stacked_matmul(lefts, rights)
        assert out.shape == (9, 5, 3)
        for index in range(9):
            assert out[index].tobytes() == (lefts[index] @ rights[index]).tobytes()

    def test_rejects_mismatched_counts(self):
        a = np.ones((2, 2))
        with pytest.raises(ValueError, match="pairwise"):
            stacked_matmul([a, a], [a])

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one"):
            stacked_matmul([], [])


class TestRowSlabs:
    @given(num_rows=st.integers(1, 64), threads=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_slabs_partition_the_row_range(self, num_rows, threads):
        slabs = _row_slabs(num_rows, threads)
        assert slabs[0][0] == 0 and slabs[-1][1] == num_rows
        for (_, stop), (start, _) in zip(slabs, slabs[1:]):
            assert stop == start
        assert all(stop > start for start, stop in slabs)
        assert len(slabs) <= min(threads, num_rows)

    def test_even_split(self):
        assert _row_slabs(8, 2) == [(0, 4), (4, 8)]

    def test_more_threads_than_rows(self):
        assert _row_slabs(2, 8) == [(0, 1), (1, 2)]

"""Engine- and session-level behaviour of the kernel layer: when the
batched path engages, its byte-identity to the serial fold, the Strassen
strategy's tolerance contract, and the ``--show-rewrites`` audit trail."""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.cli import main
from repro.core.cost import naive_matmul_flops
from repro.core.strategies import choose_local_matmul
from repro.kernels.strassen import (
    recursion_base,
    strassen_flops,
    strassen_matmul,
    strassen_temp_bytes,
)
from repro.lang.program import ProgramBuilder

CONFIG = dict(num_workers=2, threads_per_worker=2)


def matmul_program(shape_x, shape_a):
    pb = ProgramBuilder()
    x = pb.load("X", shape_x)
    a = pb.load("A", shape_a)
    pb.output(pb.assign("P", x @ a))
    return pb.build()


def run_matmul(shape_x, shape_a, *, block_size, batched, seed=11, **config):
    program = matmul_program(shape_x, shape_a)
    rng = np.random.default_rng(seed)
    inputs = {
        "X": rng.standard_normal(shape_x),
        "A": rng.standard_normal(shape_a),
    }
    session = DMacSession(
        ClusterConfig(
            block_size=block_size, batched_matmul=batched, **CONFIG, **config
        )
    )
    return session.run(program, inputs)


class TestBatchedEngine:
    def test_dense_product_batches_and_is_byte_identical(self):
        serial = run_matmul((256, 256), (256, 256), block_size=32, batched=False)
        batched = run_matmul((256, 256), (256, 256), block_size=32, batched=True)
        assert serial.batched_pairs == 0
        assert batched.batched_pairs > 0
        assert serial.matrices["P"].tobytes() == batched.matrices["P"].tobytes()

    def test_narrow_product_stays_serial(self):
        """A single-result-block dot product lacks batching width."""
        result = run_matmul((32, 256), (256, 32), block_size=32, batched=True)
        assert result.batched_pairs == 0

    def test_memory_limit_disables_batching(self):
        limited = run_matmul(
            (256, 256),
            (256, 256),
            block_size=32,
            batched=True,
            memory_limit_bytes=1 << 30,
        )
        free = run_matmul((256, 256), (256, 256), block_size=32, batched=True)
        assert limited.batched_pairs == 0
        assert free.batched_pairs > 0
        assert limited.matrices["P"].tobytes() == free.matrices["P"].tobytes()

    def test_large_blocks_stay_serial(self):
        result = run_matmul((512, 512), (512, 512), block_size=128, batched=True)
        assert result.batched_pairs == 0

    def test_nonsquare_batched_product_is_byte_identical(self):
        serial = run_matmul((128, 192), (192, 256), block_size=32, batched=False)
        batched = run_matmul((128, 192), (192, 256), block_size=32, batched=True)
        assert batched.batched_pairs > 0
        assert serial.matrices["P"].tobytes() == batched.matrices["P"].tobytes()


class TestStrassenKernel:
    @pytest.mark.parametrize("m,k,n", [(200, 200, 200), (130, 170, 150), (256, 128, 192)])
    def test_matches_naive_within_tolerance(self, m, k, n):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        out = strassen_matmul(a, b, recursion_base(128))
        np.testing.assert_allclose(out, a @ b, rtol=1e-8, atol=1e-8)

    def test_small_product_is_exactly_naive(self):
        rng = np.random.default_rng(6)
        a, b = rng.standard_normal((32, 32)), rng.standard_normal((32, 32))
        assert strassen_matmul(a, b, 64).tobytes() == (a @ b).tobytes()

    def test_priced_flops_undercut_naive_above_crossover(self):
        base = recursion_base(128)
        assert strassen_flops(512, 512, 512, base) < naive_matmul_flops(512, 512, 512)

    def test_temp_bytes_positive_and_bounded(self):
        temps = strassen_temp_bytes(256, 256, 256)
        assert 0 < temps < 8 * 256 * 256 * 32

    def test_strategy_is_opt_in_and_sized(self):
        assert choose_local_matmul(256, 256, 256).name == "naive"
        assert choose_local_matmul(
            256, 256, 256, strassen=True, crossover=128
        ).name == "strassen"
        assert choose_local_matmul(
            64, 256, 256, strassen=True, crossover=128
        ).name == "naive"

    def test_session_strassen_run_matches_naive(self):
        naive = run_matmul((256, 256), (256, 256), block_size=256, batched=False)
        fancy = run_matmul(
            (256, 256),
            (256, 256),
            block_size=256,
            batched=False,
            strassen=True,
            strassen_min_size=128,
        )
        np.testing.assert_allclose(
            fancy.matrices["P"], naive.matrices["P"], rtol=1e-8, atol=1e-8
        )


class TestShowRewritesAudit:
    def test_gnmf_plan_lists_fusion_rewrites(self, capsys):
        assert main(
            ["plan", "gnmf", "--iterations", "1", "--factors", "4",
             "--scale", "1.5e-3", "--show-rewrites"]
        ) == 0
        out = capsys.readouterr().out
        assert "# applied rewrites" in out
        assert "[fuse] fused" in out
        assert "composed kernel" in out

"""Property: the kernel layer never changes results, only speed.

Three equivalence families, each byte-identical (``tobytes`` — bitwise,
NaN patterns included):

* batched BLAS vs the serial fold, on every built-in application, with a
  clean run and under injected transient faults;
* the fusion pass vs step-by-step cellwise execution under injected
  faults (the clean case is covered app-by-app in
  ``tests/planopt/test_equivalence.py``);
* hypothesis-generated cellwise chains and grid products.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, DMacSession
from repro.faults import ChaosEngine
from repro.lang.program import ProgramBuilder

from tests.planopt.test_equivalence import PROGRAMS, inputs_for

FAULT_SPEC = "flaky:p=0.25,times=2"


def assert_bitwise_equal(left, right, context):
    assert set(left.matrices) == set(right.matrices)
    for name in left.matrices:
        a, b = left.matrices[name], right.matrices[name]
        assert a.shape == b.shape and a.dtype == b.dtype
        assert a.tobytes() == b.tobytes(), f"{context}: output {name!r} diverged"
    assert set(left.scalars) == set(right.scalars)
    for name in left.scalars:
        a, b = left.scalars[name], right.scalars[name]
        assert np.float64(a).tobytes() == np.float64(b).tobytes(), (
            f"{context}: scalar {name!r} diverged"
        )


def run_app(name, *, batched, optimize=False, chaos=None):
    program = PROGRAMS[name]()
    config = ClusterConfig(
        num_workers=4, threads_per_worker=2, block_size=16, batched_matmul=batched
    )
    session = DMacSession(config, optimize=optimize)
    return session.run(program, inputs_for(program), chaos=chaos)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_batched_matches_serial_on_every_app(name):
    serial = run_app(name, batched=False)
    batched = run_app(name, batched=True)
    assert serial.batched_pairs == 0
    assert_bitwise_equal(serial, batched, name)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_batched_matches_serial_under_faults(name):
    serial = run_app(name, batched=False, chaos=ChaosEngine(9, FAULT_SPEC))
    batched = run_app(name, batched=True, chaos=ChaosEngine(9, FAULT_SPEC))
    assert_bitwise_equal(serial, batched, f"{name} (faults)")


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_fused_matches_unfused_under_faults(name):
    plain = run_app(name, batched=False, chaos=ChaosEngine(9, FAULT_SPEC))
    fused = run_app(name, batched=False, optimize=True,
                    chaos=ChaosEngine(9, FAULT_SPEC))
    assert_bitwise_equal(plain, fused, f"{name} (fused, faults)")


class TestPropertyEquivalence:
    """Hypothesis-generated workloads: any cellwise chain fuses without
    changing a byte; any dense grid product batches without changing a
    byte."""

    @given(
        ops=st.lists(
            st.sampled_from(["*", "/", "+", "-"]), min_size=2, max_size=5
        ),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_fused_cellwise_chain_is_byte_identical(self, ops, seed):
        size = 48
        pb = ProgramBuilder()
        value = pb.load("X", (size, size))
        a = pb.load("A", (size, size))
        b = pb.load("B", (size, size))
        for position, op in enumerate(ops):
            operand = a if position % 2 == 0 else b
            expr = {
                "*": value * operand,
                "/": value / operand,
                "+": value + operand,
                "-": value - operand,
            }[op]
            value = pb.assign("X", expr)
        pb.output(value)
        program = pb.build()
        rng = np.random.default_rng(seed)
        inputs = {
            name: rng.random((size, size)) + 0.5 for name in ("X", "A", "B")
        }
        results = {}
        for optimize in (False, True):
            config = ClusterConfig(num_workers=2, block_size=16)
            results[optimize] = DMacSession(config, optimize=optimize).run(
                program, inputs
            )
        assert_bitwise_equal(results[False], results[True], f"chain {ops}")

    @given(
        rows=st.integers(1, 4),
        inner=st.integers(1, 4),
        cols=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_batched_grid_product_is_byte_identical(self, rows, inner, cols, seed):
        bs = 16
        pb = ProgramBuilder()
        x = pb.load("X", (rows * bs, inner * bs))
        a = pb.load("A", (inner * bs, cols * bs))
        pb.output(pb.assign("P", x @ a))
        program = pb.build()
        rng = np.random.default_rng(seed)
        inputs = {
            "X": rng.standard_normal((rows * bs, inner * bs)),
            "A": rng.standard_normal((inner * bs, cols * bs)),
        }
        results = {}
        for batched in (False, True):
            config = ClusterConfig(
                num_workers=2, block_size=bs, batched_matmul=batched
            )
            results[batched] = DMacSession(config).run(program, inputs)
        assert results[False].batched_pairs == 0
        assert_bitwise_equal(
            results[False], results[True], f"grid {rows}x{inner}x{cols}"
        )

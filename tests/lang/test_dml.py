"""Tests for the DML-style script parser."""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.baselines.rlocal import run_local
from repro.datasets import sparse_random
from repro.errors import ProgramError
from repro.lang.dml import load_names, parse_program
from repro.lang.program import CellwiseOp, MatMulOp, UnaryMatrixOp


def run_script(script, inputs=None, block=8, workers=4):
    program = parse_program(script)
    session = DMacSession(ClusterConfig(workers, 1, block_size=block))
    bound = {}
    names = load_names(program)
    for user, array in (inputs or {}).items():
        bound[names[user]] = array
    return program, session.run(program, bound)


class TestBasics:
    def test_simple_pipeline(self, rng):
        array = rng.random((12, 12))
        program, result = run_script(
            "A = load(12, 12)\nB = A %*% A + A\noutput(B)", {"A": array}
        )
        np.testing.assert_allclose(
            result.matrices[program.bindings["B"]], array @ array + array, atol=1e-9
        )

    def test_comments_and_whitespace(self):
        program = parse_program(
            "# leading comment\n\nA = random(4, 4)  # trailing\noutput(A)\n"
        )
        assert program.outputs

    def test_r_precedence_matmul_binds_tighter(self, rng):
        """`A %*% B * 2` must parse as `(A %*% B) * 2`."""
        array = rng.random((6, 6))
        program, result = run_script(
            "A = load(6, 6)\nC = A %*% A * 2\noutput(C)", {"A": array}
        )
        np.testing.assert_allclose(
            result.matrices[program.bindings["C"]], (array @ array) * 2, atol=1e-9
        )

    def test_unary_minus(self, rng):
        array = rng.random((4, 4))
        program, result = run_script(
            "A = load(4, 4)\nB = -A + A\noutput(B)", {"A": array}
        )
        np.testing.assert_allclose(result.matrices[program.bindings["B"]], 0 * array)

    def test_transpose_function(self, rng):
        array = rng.random((4, 6))
        program, result = run_script(
            "A = load(4, 6)\nG = t(A) %*% A\noutput(G)", {"A": array}
        )
        np.testing.assert_allclose(
            result.matrices[program.bindings["G"]], array.T @ array, atol=1e-9
        )

    def test_scalar_assignment_and_use(self, rng):
        array = rng.random((5, 5))
        program, result = run_script(
            "A = load(5, 5)\ns = sum(A)\nB = A * (1 / s)\noutput(B)\noutputScalar(s)",
            {"A": array},
        )
        assert result.scalars["s"] == pytest.approx(array.sum())
        np.testing.assert_allclose(
            result.matrices[program.bindings["B"]], array / array.sum(), atol=1e-12
        )

    def test_plain_float_constants(self):
        program = parse_program("A = random(3, 3)\nB = A * (2 + 3 * 4)\noutput(B)")
        local = run_local(program)
        expected = np.random.default_rng(0).random((3, 3)) * 14
        np.testing.assert_allclose(local.matrices[program.bindings["B"]], expected)


class TestFunctions:
    def test_unary_functions_parse(self):
        program = parse_program(
            "A = random(4, 4)\nB = sigmoid(exp(abs(A)))\noutput(B)"
        )
        funcs = [op.func for op in program.ops if isinstance(op, UnaryMatrixOp)]
        assert funcs == ["abs", "exp", "sigmoid"]

    def test_row_col_sums(self, rng):
        array = rng.random((6, 4))
        program, result = run_script(
            "A = load(6, 4)\nR = rowSums(A)\nC = colSums(A)\noutput(R)\noutput(C)",
            {"A": array},
        )
        np.testing.assert_allclose(
            result.matrices[program.bindings["R"]], array.sum(1, keepdims=True)
        )
        np.testing.assert_allclose(
            result.matrices[program.bindings["C"]], array.sum(0, keepdims=True)
        )

    def test_norm2_and_value(self, rng):
        array = rng.random((5, 1))
        program, result = run_script(
            "p = load(5, 1)\nn = norm2(p)\nv = value(t(p) %*% p)\n"
            "outputScalar(n)\noutputScalar(v)",
            {"p": array},
        )
        assert result.scalars["n"] == pytest.approx(np.linalg.norm(array))
        assert result.scalars["v"] == pytest.approx(float((array.T @ array)[0, 0]))

    def test_full_source(self):
        program = parse_program("D = full(2, 3, 0.5)\nE = D * 2\noutput(E)")
        local = run_local(program)
        np.testing.assert_allclose(
            local.matrices[program.bindings["E"]], np.ones((2, 3))
        )

    def test_random_seed_keyword(self):
        first = parse_program("A = random(4, 4, seed=7)\noutput(A)")
        second = parse_program("A = random(4, 4, seed=7)\noutput(A)")
        np.testing.assert_array_equal(
            run_local(first).matrices[first.bindings["A"]],
            run_local(second).matrices[second.bindings["A"]],
        )


class TestLoops:
    def test_loop_unrolls(self):
        program = parse_program(
            "A = random(4, 4)\nfor (i in 1:3) {\n  A = A %*% A\n}\noutput(A)"
        )
        assert sum(isinstance(op, MatMulOp) for op in program.ops) == 3
        # `A = random(...)` aliases; the three updates create A, A@2, A@3
        assert program.bindings["A"] == "A@3"

    def test_loop_variable_usable_as_scalar(self):
        program = parse_program(
            "A = random(2, 2)\nfor (i in 1:2) {\n  A = A + i\n}\noutput(A)"
        )
        local = run_local(program)
        expected = np.random.default_rng(0).random((2, 2)) + 1 + 2
        np.testing.assert_allclose(local.matrices[program.bindings["A"]], expected)

    def test_nested_loops(self):
        program = parse_program(
            "A = random(2, 2)\nfor (i in 1:2) {\n  for (j in 1:2) {\n"
            "    A = A * 2\n  }\n}\noutput(A)"
        )
        assert sum(isinstance(op, CellwiseOp) for op in program.ops) == 0
        assert program.bindings["A"] == "A@4"  # alias + 4 updates: A..A@4

    def test_empty_range_rejected(self):
        with pytest.raises(ProgramError):
            parse_program("A = random(2, 2)\nfor (i in 3:1) { A = A * 2 }\noutput(A)")


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(ProgramError, match="unknown variable"):
            parse_program("B = A %*% A")

    def test_unknown_function(self):
        with pytest.raises(ProgramError, match="unknown function"):
            parse_program("A = random(2,2)\nB = cholesky(A)")

    def test_matmul_needs_matrices(self):
        with pytest.raises(ProgramError, match="matrix operands"):
            parse_program("A = random(2,2)\ns = sum(A)\nB = s %*% A")

    def test_unexpected_character(self):
        with pytest.raises(ProgramError, match="unexpected character"):
            parse_program("A = random(2,2) $ 3")

    def test_unclosed_loop(self):
        with pytest.raises(ProgramError, match="unclosed"):
            parse_program("A = random(2,2)\nfor (i in 1:2) {\n  A = A * 2\n")

    def test_output_of_scalar_rejected(self):
        with pytest.raises(ProgramError, match="needs a matrix"):
            parse_program("A = random(2,2)\ns = sum(A)\noutput(s)")

    def test_outputscalar_of_matrix_rejected(self):
        with pytest.raises(ProgramError, match="needs a scalar"):
            parse_program("A = random(2,2)\noutputScalar(A)")

    def test_error_messages_carry_line_numbers(self):
        with pytest.raises(ProgramError, match="line 3"):
            parse_program("A = random(2,2)\nB = A + A\nC = ghost %*% A")


class TestEquivalenceWithBuilderPrograms:
    def test_script_gnmf_matches_builder_gnmf(self):
        from repro.programs import build_gnmf_program

        script = """
        V = load(48, 32, sparsity=0.2)
        W = random(48, 4)
        H = random(4, 32, seed=1)
        for (i in 1:2) {
            H = H * (t(W) %*% V) / (t(W) %*% W %*% H)
            W = W * (V %*% t(H)) / (W %*% H %*% t(H))
        }
        output(W)
        output(H)
        """
        script_program = parse_program(script)
        builder_program = build_gnmf_program((48, 32), 0.2, factors=4, iterations=2)
        data = sparse_random(48, 32, 0.2, seed=5, ensure_coverage=True)
        script_result = run_local(
            script_program, {load_names(script_program)["V"]: data}
        )
        builder_result = run_local(builder_program, {"V": data})
        np.testing.assert_allclose(
            script_result.matrices[script_program.bindings["H"]],
            builder_result.matrices[builder_program.bindings["H"]],
            atol=1e-9,
        )

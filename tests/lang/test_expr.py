"""Tests for the expression AST and operator overloading."""

import pytest

from repro.errors import ProgramError
from repro.lang.expr import (
    AggExpr,
    CellwiseExpr,
    MatMulExpr,
    MatrixRefExpr,
    ScalarBinaryExpr,
    ScalarConst,
    ScalarMatrixExpr,
    ScalarRefExpr,
    ScalarUnaryExpr,
    TransposeExpr,
    as_scalar_expr,
)

A = MatrixRefExpr("A")
B = MatrixRefExpr("B")


class TestMatrixOverloads:
    def test_matmul(self):
        expr = A @ B
        assert isinstance(expr, MatMulExpr)
        assert expr.left is A and expr.right is B

    def test_matmul_rejects_scalar(self):
        with pytest.raises(ProgramError):
            A @ 2.0  # type: ignore[operator]

    def test_cellwise_multiply(self):
        assert isinstance(A * B, CellwiseExpr)
        assert (A * B).op == "multiply"

    def test_cellwise_all_ops(self):
        assert (A + B).op == "add"
        assert (A - B).op == "subtract"
        assert (A / B).op == "divide"

    def test_scalar_multiply(self):
        expr = A * 0.85
        assert isinstance(expr, ScalarMatrixExpr)
        assert expr.scalar == ScalarConst(0.85)

    def test_reflected_scalar_multiply(self):
        expr = 0.85 * A
        assert isinstance(expr, ScalarMatrixExpr)
        assert expr.op == "multiply"

    def test_reflected_subtract_rejected(self):
        with pytest.raises(ProgramError):
            1.0 - A

    def test_reflected_divide_rejected(self):
        with pytest.raises(ProgramError):
            1.0 / A

    def test_negation(self):
        expr = -A
        assert isinstance(expr, ScalarMatrixExpr)
        assert expr.scalar == ScalarConst(-1.0)

    def test_transpose(self):
        assert isinstance(A.T, TransposeExpr)

    def test_double_transpose_cancels(self):
        assert A.T.T is A


class TestAggregates:
    def test_sum(self):
        expr = A.sum()
        assert isinstance(expr, AggExpr)
        assert expr.kind == "sum"

    def test_sq_sum(self):
        assert A.sq_sum().kind == "sqsum"

    def test_value(self):
        assert A.value().kind == "value"

    def test_norm2_is_sqrt_of_sqsum(self):
        expr = A.norm2()
        assert isinstance(expr, ScalarUnaryExpr)
        assert expr.op == "sqrt"
        assert isinstance(expr.child, AggExpr)

    def test_bad_kind_rejected(self):
        with pytest.raises(ProgramError):
            AggExpr("median", A)


class TestScalarExpressions:
    def test_arithmetic(self):
        s = A.sum()
        expr = s / 2.0 + 1.0
        assert isinstance(expr, ScalarBinaryExpr)

    def test_reflected_arithmetic(self):
        expr = 2.0 / A.sum()
        assert isinstance(expr, ScalarBinaryExpr)
        assert expr.left == ScalarConst(2.0)

    def test_scalar_times_matrix(self):
        expr = A.sum() * B
        assert isinstance(expr, ScalarMatrixExpr)
        assert expr.child is B

    def test_negate(self):
        expr = -A.sum()
        assert isinstance(expr, ScalarUnaryExpr)
        assert expr.op == "negate"

    def test_as_scalar_expr(self):
        assert as_scalar_expr(2) == ScalarConst(2.0)
        assert as_scalar_expr(ScalarRefExpr("x")) == ScalarRefExpr("x")
        assert as_scalar_expr("nope") is None
        assert as_scalar_expr(True) is None  # bools are not scalars

    def test_bad_binary_op(self):
        with pytest.raises(ProgramError):
            ScalarBinaryExpr("pow", ScalarConst(1.0), ScalarConst(2.0))

    def test_bad_unary_op(self):
        with pytest.raises(ProgramError):
            ScalarUnaryExpr("log", ScalarConst(1.0))

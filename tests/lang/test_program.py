"""Tests for program building: flattening, versioning, reordering."""

import pytest

from repro.errors import ProgramError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    MatMulOp,
    ProgramBuilder,
    ScalarComputeOp,
    ScalarMatrixOp,
    op_input_names,
)


class TestSources:
    def test_load_records_dims_and_sparsity(self):
        pb = ProgramBuilder()
        pb.load("V", (100, 50), sparsity=0.01)
        prog = pb.build()
        assert prog.dims["V"] == (100, 50)
        assert prog.input_sparsity["V"] == 0.01

    def test_load_rejects_bad_sparsity(self):
        with pytest.raises(ProgramError):
            ProgramBuilder().load("V", (10, 10), sparsity=1.5)

    def test_load_rejects_bad_dims(self):
        with pytest.raises(ProgramError):
            ProgramBuilder().load("V", (0, 10))

    def test_reserved_version_character(self):
        with pytest.raises(ProgramError):
            ProgramBuilder().load("V@2", (10, 10))


class TestFlattening:
    def test_binary_decomposition(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        b = pb.load("B", (4, 4))
        pb.assign("C", a @ b @ a)
        ops = [op for op in pb.build().ops if isinstance(op, MatMulOp)]
        assert len(ops) == 2  # two binary multiplications

    def test_transpose_marks_operand_not_operator(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 6))
        b = pb.load("B", (4, 5))
        pb.assign("C", a.T @ b)
        matmul = next(op for op in pb.build().ops if isinstance(op, MatMulOp))
        assert matmul.left.transposed
        assert not matmul.right.transposed

    def test_matmul_dim_check(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 6))
        b = pb.load("B", (5, 4))
        with pytest.raises(ProgramError):
            pb.assign("C", a @ b)

    def test_cellwise_dim_check(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 6))
        b = pb.load("B", (6, 4))
        with pytest.raises(ProgramError):
            pb.assign("C", a + b)

    def test_cellwise_with_transposed_operand(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 6))
        b = pb.load("B", (6, 4))
        pb.assign("C", a + b.T)  # dims match via transpose
        cellwise = next(op for op in pb.build().ops if isinstance(op, CellwiseOp))
        assert cellwise.right.transposed

    def test_unknown_ref_rejected(self):
        from repro.lang.expr import MatrixRefExpr

        pb = ProgramBuilder()
        with pytest.raises(ProgramError):
            pb.assign("C", MatrixRefExpr("ghost") @ MatrixRefExpr("ghost"))

    def test_dims_of_transposed_operand(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 6))
        pb.assign("B", a.T @ a)
        prog = pb.build()
        matmul = next(op for op in prog.ops if isinstance(op, MatMulOp))
        assert prog.dims_of(matmul.left) == (6, 4)


class TestVersioning:
    def test_reassignment_creates_versions(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        x = pb.assign("X", a @ a)
        x = pb.assign("X", x @ a)
        prog = pb.build()
        assert "X" in prog.dims and "X@2" in prog.dims
        assert prog.bindings["X"] == "X@2"

    def test_plain_alias(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        alias = pb.assign("B", a)
        assert alias.name == "A"
        assert pb.build().bindings["B"] == "A"

    def test_transposed_assignment_emits_identity_op(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 6))
        out = pb.assign("B", a.T)
        prog = pb.build()
        assert prog.dims[out.name] == (6, 4)
        identity = next(op for op in prog.ops if isinstance(op, ScalarMatrixOp))
        assert identity.operand.transposed


class TestMultiplicationsFirst:
    def test_ready_matmuls_precede_cellwise(self):
        pb = ProgramBuilder()
        v = pb.load("V", (10, 8))
        w = pb.random("W", (10, 3))
        h = pb.random("H", (3, 8))
        pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
        ops = pb.build().ops
        kinds = [type(op).__name__ for op in ops if type(op).__name__ in ("MatMulOp", "CellwiseOp")]
        # all three multiplications come before both cell-wise operators
        assert kinds[:3] == ["MatMulOp"] * 3
        assert kinds[3:] == ["CellwiseOp", "CellwiseOp"]

    def test_dependencies_respected(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        pb.assign("X", (a + a) @ a)  # the add must run before the matmul
        ops = pb.build().ops
        produced = set()
        for op in ops:
            for name in op_input_names(op):
                if name.startswith("_t") or "@" in name:
                    assert name in produced
            produced.add(op.output)


class TestScalars:
    def test_aggregate_statement(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        s = pb.scalar("total", a.sum())
        prog = pb.build()
        agg = next(op for op in prog.ops if isinstance(op, AggregateOp))
        assert agg.output == s.name == "total"

    def test_scalar_arithmetic_emits_compute_op(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        pb.scalar("half", a.sum() / 2.0)
        assert any(isinstance(op, ScalarComputeOp) for op in pb.build().ops)

    def test_constant_folding(self):
        pb = ProgramBuilder()
        pb.load("A", (4, 4))
        pb.scalar("k", (ProgramBuilder and 2.0) * 3.0 + 1.0)  # pure literals
        ops = pb.build().ops
        compute = next(op for op in ops if isinstance(op, ScalarComputeOp))
        from repro.lang.expr import ScalarConst

        assert compute.expr == ScalarConst(7.0)

    def test_value_requires_1x1(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        with pytest.raises(ProgramError):
            pb.scalar("v", a.value())

    def test_value_on_1x1_product(self):
        pb = ProgramBuilder()
        p = pb.load("p", (5, 1))
        q = pb.load("q", (5, 1))
        pb.scalar("alpha", (p.T @ q).value())
        assert any(isinstance(op, AggregateOp) and op.kind == "value" for op in pb.build().ops)

    def test_scalar_used_in_matrix_op(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        s = pb.scalar("s", a.sum())
        pb.assign("B", a * s)
        op = next(op for op in pb.build().ops if isinstance(op, ScalarMatrixOp))
        assert op.scalar == "s"

    def test_unknown_scalar_rejected(self):
        from repro.lang.expr import ScalarRefExpr

        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        with pytest.raises(ProgramError):
            pb.assign("B", a * ScalarRefExpr("ghost"))

    def test_scalar_division_by_zero_folds_to_error(self):
        from repro.lang.expr import ScalarConst

        pb = ProgramBuilder()
        pb.load("A", (4, 4))
        with pytest.raises(ProgramError):
            pb.scalar("bad", ScalarConst(1.0) / (ScalarConst(2.0) - 2.0))


class TestOutputs:
    def test_output_by_handle(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        x = pb.assign("X", a @ a)
        pb.output(x)
        assert pb.build().outputs == ("X",)

    def test_output_by_user_name_resolves_version(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        pb.assign("X", a @ a)
        pb.assign("X", a + a)
        pb.output("X")
        assert pb.build().outputs == ("X@2",)

    def test_output_unknown_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder().output("ghost")

    def test_scalar_output(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        s = pb.scalar("s", a.sum())
        pb.scalar_output(s)
        assert pb.build().scalar_outputs == ("s",)

    def test_describe_lists_every_op(self):
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        pb.assign("X", a @ a + a)
        prog = pb.build()
        assert len(prog.describe().splitlines()) == len(prog.ops)

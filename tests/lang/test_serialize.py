"""Tests for MatrixProgram JSON serialisation."""

import json

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.lang.program import ProgramBuilder
from repro.lang.serialize import program_from_json, program_to_json
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_linreg_program,
    build_pagerank_program,
    build_svd_program,
)


def all_application_programs():
    svd_program, __ = build_svd_program((40, 20), 0.3, rank=3)
    return [
        build_gnmf_program((40, 30), 0.2, factors=4, iterations=2),
        build_pagerank_program(32, 0.1, iterations=2),
        build_linreg_program((50, 10), 0.2, iterations=2),
        build_cf_program((10, 40), 0.1),
        svd_program,
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("index", range(5))
    def test_application_programs_round_trip(self, index):
        program = all_application_programs()[index]
        restored = program_from_json(program_to_json(program))
        assert restored == program

    def test_rowagg_and_scalars_round_trip(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 8), sparsity=0.3)
        s = pb.scalar("s", (a * a).sum().sqrt() / 2.0 + 1.0)
        pb.scalar_output(s)
        pb.output(pb.assign("R", a.row_sums() * s))
        pb.output(pb.assign("C", a.T.col_sums()))
        program = pb.build()
        assert program_from_json(program_to_json(program)) == program

    def test_restored_program_executes_identically(self, rng):
        from repro import ClusterConfig, DMacSession

        program = build_gnmf_program((32, 24), 0.2, factors=4, iterations=2)
        restored = program_from_json(program_to_json(program))
        data = rng.random((32, 24))
        data[data < 0.8] = 0.0
        data[data != 0] += 0.1
        first = DMacSession(ClusterConfig(4, 1, block_size=8)).run(program, {"V": data})
        second = DMacSession(ClusterConfig(4, 1, block_size=8)).run(restored, {"V": data})
        for name in program.outputs:
            np.testing.assert_array_equal(first.matrices[name], second.matrices[name])

    def test_indentation_option(self):
        program = build_pagerank_program(16, 0.1, iterations=1)
        pretty = program_to_json(program, indent=2)
        assert "\n" in pretty
        assert program_from_json(pretty) == program


class TestValidation:
    def test_rejects_non_json(self):
        with pytest.raises(ProgramError):
            program_from_json("not json at all {")

    def test_rejects_wrong_format_tag(self):
        with pytest.raises(ProgramError):
            program_from_json(json.dumps({"format": "something-else", "version": 1}))

    def test_rejects_wrong_version(self):
        program = build_pagerank_program(8, 0.1, iterations=1)
        payload = json.loads(program_to_json(program))
        payload["version"] = 99
        with pytest.raises(ProgramError):
            program_from_json(json.dumps(payload))

    def test_rejects_unknown_operator(self):
        program = build_pagerank_program(8, 0.1, iterations=1)
        payload = json.loads(program_to_json(program))
        payload["ops"][0]["op"] = "teleport"
        with pytest.raises(ProgramError):
            program_from_json(json.dumps(payload))

    def test_rejects_missing_fields(self):
        with pytest.raises(ProgramError):
            program_from_json(
                json.dumps({"format": "repro.matrix-program", "version": 1})
            )

"""CLI behaviour of ``repro lint`` and the shared plan/lint conventions:
distinct exit codes for parse vs lint failures, ``--format json``,
per-rule suppression, and the self-test entry point."""

import json

import pytest

from repro.cli import EXIT_LINT_ERRORS, EXIT_OK, EXIT_PARSE_ERROR, main

CLEAN_DML = "A = random(20, 30)\nB = A %*% t(A)\noutput(B)\n"
BROKEN_DML = "A = random(20, 30\noutput(A)\n"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, "p.dml", CLEAN_DML)]) == EXIT_OK
        assert "0 error(s)" in capsys.readouterr().out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        code = main(["lint", write(tmp_path, "p.dml", BROKEN_DML)])
        assert code == EXIT_PARSE_ERROR
        assert "parse error" in capsys.readouterr().err

    def test_lint_errors_exit_one(self, capsys):
        """A one-byte memory budget turns every broadcast into a DM106."""
        code = main(["lint", "gnmf", "--iterations", "1", "--factors", "4",
                     "--scale", "1.5e-3", "--memory-limit", "1"])
        assert code == EXIT_LINT_ERRORS
        assert "DM106" in capsys.readouterr().out

    def test_plan_parse_error_exits_two(self, tmp_path, capsys):
        code = main(["plan", write(tmp_path, "p.dml", BROKEN_DML)])
        assert code == EXIT_PARSE_ERROR
        assert "parse error" in capsys.readouterr().err

    def test_plan_and_lint_parse_codes_agree(self, tmp_path, capsys):
        path = write(tmp_path, "p.dml", BROKEN_DML)
        assert main(["plan", path]) == main(["lint", path]) == EXIT_PARSE_ERROR
        capsys.readouterr()

    def test_missing_target_without_selftest(self, capsys):
        assert main(["lint"]) == EXIT_PARSE_ERROR
        assert "required" in capsys.readouterr().err


class TestJsonFormat:
    def test_lint_json_report(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, "p.dml", CLEAN_DML),
                     "--format", "json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["diagnostics"] == []

    def test_lint_json_carries_structured_findings(self, capsys):
        code = main(["lint", "gnmf", "--iterations", "1", "--factors", "4",
                     "--scale", "1.5e-3", "--memory-limit", "1",
                     "--format", "json"])
        assert code == EXIT_LINT_ERRORS
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] > 0
        finding = payload["diagnostics"][0]
        assert finding["rule"] == "DM106"
        assert finding["severity"] == "error"
        assert finding["hint"]

    def test_plan_json_report(self, tmp_path, capsys):
        assert main(["plan", write(tmp_path, "p.dml", CLEAN_DML),
                     "--format", "json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_stages"] >= 1
        assert payload["predicted_bytes"] >= 0
        assert all("description" in step for step in payload["steps"])


class TestSuppression:
    def test_suppressed_rule_does_not_fire_or_fail(self, capsys):
        code = main(["lint", "gnmf", "--iterations", "1", "--factors", "4",
                     "--scale", "1.5e-3", "--memory-limit", "1",
                     "--suppress", "DM106"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "DM106" in out  # listed as suppressed in the summary
        assert "error: DM106" not in out

    def test_unknown_suppress_rule_rejected(self, capsys):
        code = main(["lint", "gnmf", "--iterations", "1", "--factors", "4",
                     "--scale", "1.5e-3", "--suppress", "DM999"])
        assert code == EXIT_PARSE_ERROR
        assert "DM999" in capsys.readouterr().err


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["lint", "--selftest"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "all rules fire" in out
        assert "FAIL" not in out


class TestApps:
    @pytest.mark.parametrize(
        "argv",
        [
            ["lint", "gnmf", "--iterations", "1", "--factors", "4",
             "--scale", "1.5e-3"],
            ["lint", "pagerank", "--scale", "1e-4", "--iterations", "1"],
            ["lint", "linreg", "--rows", "200", "--features", "20",
             "--iterations", "1"],
            ["lint", "cf", "--scale", "1e-3"],
            ["lint", "svd", "--scale", "1.5e-3", "--rank", "3"],
        ],
    )
    def test_paper_apps_lint_error_clean(self, argv, capsys):
        assert main(argv) == EXIT_OK
        assert "0 error(s)" in capsys.readouterr().out

    def test_unknown_target_rejected(self, capsys):
        assert main(["lint", "kmeans"]) == EXIT_PARSE_ERROR
        assert "unknown lint target" in capsys.readouterr().err

    def test_python_builder_file(self, tmp_path, capsys):
        script = tmp_path / "builder.py"
        script.write_text(
            "from repro import ClusterConfig, DMacSession, ProgramBuilder\n"
            "pb = ProgramBuilder()\n"
            "a = pb.random('A', (10, 12))\n"
            "pb.output(pb.assign('B', a.T @ a))\n"
            "DMacSession(ClusterConfig(num_workers=3)).plan(pb.build())\n"
        )
        assert main(["lint", str(script)]) == EXIT_OK
        assert "0 error(s)" in capsys.readouterr().out

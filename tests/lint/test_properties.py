"""Property-based guarantees of the static analyzer.

Two families:

* **Soundness w.r.t. the runtime checks** -- over random programs, a plan
  that lints with zero error-severity findings also satisfies the existing
  *dynamic* invariant checks: the stage scheduler's purity validation and
  the planner's predicted-bytes/ledger decomposition.  The lint is a
  superset of what execution would catch.
* **Corruption detection** -- over random programs (not just the fixed
  selftest reference), every applicable corruption is caught by exactly
  its rule.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.estimator import SizeEstimator
from repro.core.plan import ExtendedStep, MatMulStep, RowAggStep
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages, validate_stage_invariant
from repro.lang.program import ProgramBuilder
from repro.lint import LintContext, lint_plan
from repro.lint.selftest import CORRUPTIONS

CORRUPTION_BY_RULE = {c.rule: c for c in CORRUPTIONS}


@st.composite
def programs(draw):
    """Random programs exercising every operator class (mirrors the
    planner-invariant suite's generator)."""
    pb = ProgramBuilder()
    m = draw(st.integers(2, 8))
    n = draw(st.integers(2, 8))
    a = pb.load("A", (m, n), sparsity=draw(st.sampled_from([0.1, 0.5, 1.0])))
    b = pb.load("B", (m, n))
    pool = [(a, (m, n)), (b, (m, n))]
    for index in range(draw(st.integers(1, 6))):
        kind = draw(
            st.sampled_from(["gram", "cell", "scalar", "unary", "rowsum", "agg"])
        )
        handle, shape = pool[draw(st.integers(0, len(pool) - 1))]
        name = f"X{index}"
        if kind == "gram":
            out = pb.assign(name, handle.T @ handle)
            pool.append((out, (shape[1], shape[1])))
        elif kind == "cell":
            peers = [(h, s) for h, s in pool if s == shape]
            other, __ = peers[draw(st.integers(0, len(peers) - 1))]
            out = pb.assign(name, handle * other)
            pool.append((out, shape))
        elif kind == "scalar":
            out = pb.assign(name, handle * draw(st.floats(-2, 2, allow_nan=False)))
            pool.append((out, shape))
        elif kind == "unary":
            func = draw(st.sampled_from(["abs", "sigmoid", "exp"]))
            from repro.lang.expr import UnaryExpr

            out = pb.assign(name, UnaryExpr(func, handle))
            pool.append((out, shape))
        elif kind == "rowsum":
            out = pb.assign(name, handle.row_sums())
            pool.append((out, (shape[0], 1)))
        else:
            pb.scalar(f"s{index}", handle.sum())
    pb.output(pool[-1][0])
    return pb.build()


workers_strategy = st.integers(1, 6)


def planned(program, workers):
    return schedule_stages(DMacPlanner(program, workers).plan())


@given(programs(), workers_strategy)
def test_planner_output_always_lints_error_clean(program, workers):
    """Algorithm 1 never emits a plan the analyzer rejects."""
    plan = planned(program, workers)
    report = lint_plan(plan, LintContext(num_workers=workers))
    assert not report.errors, report.format_human()


@given(programs(), workers_strategy)
def test_lint_clean_implies_runtime_stage_invariant(program, workers):
    """Zero error findings => the runtime stage-purity check passes."""
    plan = planned(program, workers)
    report = lint_plan(plan, LintContext(num_workers=workers))
    if not report.errors:
        validate_stage_invariant(plan)  # must not raise


@given(programs(), workers_strategy)
def test_lint_clean_implies_ledger_decomposition(program, workers):
    """Zero error findings => predicted bytes decompose over the plan's
    communicating steps exactly as the runtime ledger accounts them."""
    plan = planned(program, workers)
    report = lint_plan(plan, LintContext(num_workers=workers))
    assume(not report.errors)
    estimator = SizeEstimator(program)
    total = 0
    for step in plan.steps:
        if isinstance(step, ExtendedStep) and step.communicates:
            nbytes = estimator.nbytes(step.source.name)
            total += (workers - 1) * nbytes if step.kind == "broadcast" else nbytes
        elif isinstance(step, (MatMulStep, RowAggStep)) and step.communicates:
            total += (workers - 1) * estimator.nbytes(step.output.name)
    assert total == plan.predicted_bytes


@settings(
    max_examples=25,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
@given(programs(), st.integers(2, 6), st.sampled_from(sorted(CORRUPTION_BY_RULE)))
def test_corruptions_caught_by_exactly_their_rule(program, workers, rule_id):
    """Applying a corruption to a *random* plan adds exactly the
    corruption's rule to the baseline findings -- no false positives from
    the other rules.  A corruption that does not apply to this plan (no
    broadcast to duplicate, say) raises AssertionError and the example is
    discarded."""
    context = LintContext(num_workers=workers)
    plan = planned(program, workers)
    baseline = lint_plan(plan, context)
    assume(not baseline.errors)  # the planner's own output is error-clean
    assume(rule_id not in baseline.rule_ids())
    try:
        bad_plan, bad_context = CORRUPTION_BY_RULE[rule_id].apply(plan, context)
    except AssertionError:
        assume(False)
    report = lint_plan(bad_plan, bad_context)
    if bad_plan is plan:
        expected = baseline.rule_ids() | {rule_id}
    else:
        expected = {rule_id}  # the corruption substituted its own plan
    assert report.rule_ids() == expected, report.format_human()

"""Per-rule tests: every rule has a case where it fires and one where it
stays silent.

Firing cases reuse the self-test corruption helpers (the canonical minimal
defect per rule); silent cases lint the clean reference plan -- or a plan
specifically shaped to sit just on the legal side of the rule's condition.
"""

import dataclasses

import pytest

from repro.core.plan import ExtendedStep, MatMulStep, MatrixInstance, Plan, SourceStep
from repro.lang.program import MatMulOp, ProgramBuilder
from repro.lint import LintContext, RULES, Severity, lint_plan, lint_program, plan_for
from repro.lint.selftest import CORRUPTIONS, reference_program
from repro.matrix.schemes import Scheme

CORRUPTION_BY_RULE = {c.rule: c for c in CORRUPTIONS}


@pytest.fixture()
def context():
    return LintContext()


def fresh_plan(context):
    return plan_for(reference_program(), context)


# ---------------------------------------------------------------------------
# Registry sanity
# ---------------------------------------------------------------------------


def test_at_least_ten_rules_across_both_families():
    invariant = [r for r in RULES.values() if r.family == "invariant"]
    inefficiency = [r for r in RULES.values() if r.family == "inefficiency"]
    assert len(RULES) >= 10
    assert len(invariant) >= 6 and len(inefficiency) >= 5
    assert all(r.severity is Severity.ERROR for r in invariant)
    assert all(r.severity is Severity.WARNING for r in inefficiency)


def test_every_rule_documents_itself():
    for rule in RULES.values():
        assert rule.title and rule.paper and rule.hint


# ---------------------------------------------------------------------------
# Each rule fires on its corruption ...
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_rule_fires_on_its_corruption(rule_id, context):
    corruption = CORRUPTION_BY_RULE[rule_id]
    plan, ctx = corruption.apply(fresh_plan(context), context)
    report = lint_plan(plan, ctx)
    assert rule_id in report.rule_ids()
    severity = RULES[rule_id].severity
    assert any(d.rule == rule_id and d.severity is severity for d in report)


# ---------------------------------------------------------------------------
# ... and stays silent on the clean reference plan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_rule_silent_on_clean_plan(rule_id, context):
    report = lint_plan(fresh_plan(context), context)
    assert rule_id not in report.rule_ids()


# ---------------------------------------------------------------------------
# Targeted silent cases: just on the legal side of each rule's condition
# ---------------------------------------------------------------------------


def test_block_size_at_the_bound_is_legal(context):
    """DM105 allows a block size exactly at the Equation-3 bound."""
    from repro.blocks.memory import max_block_size

    program = reference_program()
    rows, cols = max(program.dims.values(), key=lambda s: s[0] * s[1])
    bound = max_block_size(
        rows, cols, context.num_workers, context.threads_per_worker
    )
    at_bound = dataclasses.replace(context, block_size=bound)
    report = lint_plan(plan_for(program, at_bound), at_bound)
    assert "DM105" not in report.rule_ids()
    over = dataclasses.replace(context, block_size=bound + 1)
    report = lint_plan(plan_for(program, over), over)
    assert "DM105" in report.rule_ids()


def test_broadcast_within_budget_is_legal(context):
    """DM106 stays quiet when every replica fits the budget."""
    generous = dataclasses.replace(context, memory_limit_bytes=10**12)
    report = lint_plan(fresh_plan(context), generous)
    assert "DM106" not in report.rule_ids()


def test_cpmm_where_it_wins_is_legal(context):
    """DM204 stays quiet when CPMM's floor beats the best RMM ceiling:
    a small output with huge inputs."""
    pb = ProgramBuilder()
    a = pb.random("A", (4, 1000))
    b = pb.random("B", (1000, 4))
    c = pb.assign("C", a @ b)  # tiny 4x4 output: cpmm is the right call
    pb.output(c)
    program = pb.build()
    plan = plan_for(program, context)
    assert any(
        isinstance(s, MatMulStep) and s.strategy == "cpmm" for s in plan.steps
    )
    report = lint_plan(plan, context)
    assert "DM204" not in report.rule_ids()
    assert not report.errors


def test_partition_to_a_new_scheme_is_not_redundant(context):
    """DM201 only fires for same-scheme repartitions, not real ones."""
    pb = ProgramBuilder()
    a = pb.random("A", (40, 40))
    b = pb.random("B", (40, 40))
    pb.output(pb.assign("C", a @ b))
    plan = plan_for(pb.build(), context)
    partitions = [
        s for s in plan.steps
        if isinstance(s, ExtendedStep) and s.kind == "partition"
    ]
    report = lint_plan(plan, context)
    assert "DM201" not in report.rule_ids()
    assert all(s.source.scheme is not s.target.scheme for s in partitions)


def test_single_transpose_is_legal(context):
    """DM203 needs a cancelling *pair*; the reference plan's transposes
    are all productive."""
    plan = fresh_plan(context)
    assert any(
        isinstance(s, ExtendedStep) and s.kind == "transpose" for s in plan.steps
    )
    assert "DM203" not in lint_plan(plan, context).rule_ids()


def test_program_level_shape_mismatch_detected(context):
    """DM101 works on a bare program (no plan) too."""
    from repro.lang.program import MatrixProgram, Operand, RandomOp

    bad = MatrixProgram(
        ops=(
            RandomOp("A", 4, 5),
            RandomOp("B", 4, 5),
            MatMulOp("C", Operand("A"), Operand("B")),  # 4x5 @ 4x5: inner mismatch
        ),
        dims={"A": (4, 5), "B": (4, 5), "C": (4, 5)},
        input_sparsity={},
        outputs=("C",),
        scalar_outputs=(),
        bindings={},
    )
    report = lint_program(bad, context)
    assert "DM101" in report.rule_ids()


def test_program_level_dead_operator_detected(context):
    """DM202 works on a bare program: an op feeding nothing is flagged."""
    pb = ProgramBuilder()
    a = pb.random("A", (6, 6))
    pb.assign("dead", a * 2.0)  # never consumed, never output
    pb.output(pb.assign("live", a * 3.0))
    report = lint_program(pb.build(), context)
    assert "DM202" in report.rule_ids()
    clean = ProgramBuilder()
    x = clean.random("X", (6, 6))
    clean.output(clean.assign("Y", x * 2.0))
    assert "DM202" not in lint_program(clean.build(), context).rule_ids()


def test_rebroadcast_of_new_version_is_legal(context):
    """DM205 keys on (name, transposed): broadcasting *different* versions
    of a logical matrix across iterations is the normal loop pattern."""
    plan = fresh_plan(context)
    broadcast_sources = [
        s.source.name
        for s in plan.steps
        if isinstance(s, ExtendedStep) and s.kind == "broadcast"
    ]
    assert len(broadcast_sources) == len(set(broadcast_sources))
    assert "DM205" not in lint_plan(plan, context).rule_ids()


def test_scheme_rule_checks_every_compute_family(context):
    """DM102 validates matmul strategies against the Table-2 catalog."""
    pb = ProgramBuilder()
    a = pb.random("A", (30, 30))
    pb.output(pb.assign("C", a @ a))
    plan = plan_for(pb.build(), context)
    step = next(s for s in plan.steps if isinstance(s, MatMulStep))
    step.strategy = "summa"  # not a DMac strategy
    report = lint_plan(plan, context)
    assert any(
        d.rule == "DM102" and "unknown matmul strategy" in d.message
        for d in report
    )


def test_ghost_input_reported_once_per_step(context):
    """DM107 pins the consuming step for never-produced instances."""
    pb = ProgramBuilder()
    a = pb.random("A", (8, 8))
    pb.output(pb.assign("C", a @ a))
    plan = plan_for(pb.build(), context)
    step = next(s for s in plan.steps if isinstance(s, MatMulStep))
    step.left = MatrixInstance("ghost", False, step.left.scheme)
    report = lint_plan(plan, context)
    assert any(d.rule == "DM107" and d.step is not None for d in report)


def test_hand_built_clean_plan_lints_clean(context):
    """A minimal hand-built plan satisfying every contract is clean."""
    pb = ProgramBuilder()
    a = pb.random("A", (4, 100))
    b = pb.random("B", (100, 4))
    pb.output(pb.assign("C", a @ b))
    program = pb.build()
    a_name, b_name, c_name = (
        program.bindings["A"], program.bindings["B"], program.bindings["C"]
    )
    matmul = next(op for op in program.ops if isinstance(op, MatMulOp))
    ai = MatrixInstance(a_name, False, Scheme.COL)
    bi = MatrixInstance(b_name, False, Scheme.ROW)
    ci = MatrixInstance(c_name, False, Scheme.ROW)
    from repro.core.estimator import SizeEstimator

    plan = Plan(
        program=program,
        steps=[
            SourceStep(next(o for o in program.ops if o.output == a_name), ai),
            SourceStep(next(o for o in program.ops if o.output == b_name), bi),
            MatMulStep(matmul, "cpmm", ai, bi, ci),
        ],
        outputs={c_name: ci},
        predicted_bytes=(context.num_workers - 1)
        * SizeEstimator(program).nbytes(c_name),
    )
    report = lint_plan(plan, context)
    assert not report.diagnostics, report.format_human()

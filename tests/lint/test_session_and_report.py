"""The session lint hook, report/diagnostic plumbing, and DOT rendering
of findings."""

import dataclasses
import json

import pytest

from repro import ClusterConfig, DMacSession, ProgramBuilder
from repro.core.viz import plan_to_dot
from repro.errors import LintError, PlanError
from repro.lint import (
    Diagnostic,
    LintContext,
    LintReport,
    Severity,
    lint_plan,
    plan_for,
)
from repro.lint.selftest import CORRUPTIONS, reference_program


def small_program():
    pb = ProgramBuilder()
    a = pb.random("A", (12, 12))
    pb.output(pb.assign("B", a @ a))
    return pb.build()


def corrupted_plan(session):
    """A plan whose predicted-bytes ledger disagrees with its steps (DM104)."""
    plan = session.plan(small_program())
    plan.predicted_bytes += 999
    return plan


# ---------------------------------------------------------------------------
# Session hook
# ---------------------------------------------------------------------------


class TestSessionHook:
    def test_invalid_mode_rejected(self):
        with pytest.raises(PlanError, match="lint mode"):
            DMacSession(ClusterConfig(), lint="strict")

    def test_error_mode_refuses_bad_plan(self):
        session = DMacSession(ClusterConfig(num_workers=3), lint="error")
        with pytest.raises(LintError, match="DM104"):
            session.run(small_program(), plan=corrupted_plan(session))

    def test_error_mode_runs_clean_plan(self):
        session = DMacSession(ClusterConfig(num_workers=3), lint="error")
        result = session.run(small_program())
        assert "B" in result.matrices

    def test_warn_mode_prints_but_runs(self, capsys):
        session = DMacSession(ClusterConfig(num_workers=3), lint="warn")
        result = session.run(small_program(), plan=corrupted_plan(session))
        assert "B" in result.matrices
        assert "DM104" in capsys.readouterr().err

    def test_off_mode_is_silent(self, capsys):
        session = DMacSession(ClusterConfig(num_workers=3), lint="off")
        session.run(small_program(), plan=corrupted_plan(session))
        assert capsys.readouterr().err == ""


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


def sample_report():
    return LintReport(
        diagnostics=[
            Diagnostic("DM201", Severity.WARNING, "late warning", step=9),
            Diagnostic("DM101", Severity.ERROR, "late error", step=5,
                       subject="W@3", hint="fix the shapes"),
            Diagnostic("DM104", Severity.ERROR, "plan-wide error"),
        ]
    )


class TestReport:
    def test_sorted_orders_errors_first_then_by_step(self):
        ordered = sample_report().sorted()
        assert [d.rule for d in ordered] == ["DM104", "DM101", "DM201"]

    def test_json_round_trips(self):
        payload = json.loads(sample_report().to_json_string())
        assert payload["errors"] == 2 and payload["warnings"] == 1
        first = payload["diagnostics"][0]
        assert first == {
            "rule": "DM104",
            "severity": "error",
            "message": "plan-wide error",
            "hint": "",
            "step": None,
            "subject": None,
        }

    def test_format_human_shows_location_and_hint(self):
        text = sample_report().format_human()
        assert "error: DM101 [step 5, W@3] late error" in text
        assert "hint: fix the shapes" in text
        assert "2 error(s), 1 warning(s)" in text

    def test_location_defaults_to_plan(self):
        assert Diagnostic("DM104", Severity.ERROR, "x").location() == "plan"

    def test_suppression_removes_findings_and_fails_on_unknown(self):
        context = LintContext()
        plan = plan_for(reference_program(), context)
        tight = dataclasses.replace(context, memory_limit_bytes=1)
        assert "DM106" in lint_plan(plan, tight).rule_ids()
        report = lint_plan(plan, tight, suppress=("DM106",))
        assert "DM106" not in report.rule_ids()
        assert report.suppressed == ("DM106",)
        with pytest.raises(ValueError, match="DM999"):
            lint_plan(plan, tight, suppress=("DM999",))


# ---------------------------------------------------------------------------
# DOT rendering of findings
# ---------------------------------------------------------------------------


class TestVizDiagnostics:
    def test_clean_plan_has_no_highlighting(self):
        context = LintContext()
        plan = plan_for(reference_program(), context)
        dot = plan_to_dot(plan, diagnostics=lint_plan(plan, context))
        assert "lightsalmon" not in dot and "khaki" not in dot

    def test_error_findings_color_their_subjects(self):
        context = LintContext()
        plan = plan_for(reference_program(), context)
        corruption = next(c for c in CORRUPTIONS if c.rule == "DM106")
        bad_plan, bad_context = corruption.apply(plan, context)
        report = lint_plan(bad_plan, bad_context)
        dot = plan_to_dot(bad_plan, diagnostics=report)
        assert "lightsalmon" in dot
        assert "DM106" in dot

    def test_warning_findings_use_warning_color(self):
        context = LintContext()
        plan = plan_for(reference_program(), context)
        corruption = next(c for c in CORRUPTIONS if c.rule == "DM205")
        bad_plan, bad_context = corruption.apply(plan, context)
        report = lint_plan(bad_plan, bad_context)
        assert not report.errors
        dot = plan_to_dot(bad_plan, diagnostics=report)
        assert "khaki" in dot
        assert "DM205" in dot

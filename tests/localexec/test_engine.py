"""Tests for the per-worker local engine (In-Place vs Buffer, Section 5.3)."""

import numpy as np
import pytest

from repro.blocks import assemble, split
from repro.errors import BlockError, MemoryLimitExceeded
from repro.localexec.engine import LocalEngine
from tests.conftest import random_sparse


def make_grids(rng, m=20, k=16, n=12, block=5, density=1.0):
    a = random_sparse(rng, m, k, density) if density < 1 else rng.random((m, k))
    b = rng.random((k, n))
    return a, b, split(a, block), split(b, block)


class TestMatmulGrids:
    @pytest.mark.parametrize("inplace", [True, False])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_correctness(self, rng, inplace, threads):
        a, b, ga, gb = make_grids(rng)
        engine = LocalEngine(threads=threads, inplace=inplace)
        gc = engine.matmul_grids(ga, gb)
        np.testing.assert_allclose(assemble(gc, (20, 12), 5), a @ b, atol=1e-9)

    def test_inplace_equals_buffer(self, rng):
        a, b, ga, gb = make_grids(rng, density=0.3)
        inplace = LocalEngine(inplace=True).matmul_grids(ga, gb)
        buffer = LocalEngine(inplace=False).matmul_grids(ga, gb)
        for key in inplace:
            np.testing.assert_allclose(
                inplace[key].to_numpy(), buffer[key].to_numpy(), atol=1e-9
            )

    def test_inplace_peak_memory_not_above_buffer(self, rng):
        __, __, ga, gb = make_grids(rng, m=40, k=40, n=40, block=5)
        peaks = {}
        for inplace in (True, False):
            engine = LocalEngine(inplace=inplace)
            engine.register_grid(ga)
            engine.register_grid(gb)
            engine.matmul_grids(ga, gb)
            peaks[inplace] = engine.tracker.peak_bytes
        assert peaks[True] < peaks[False]

    def test_memory_limit_stops_buffer_mode(self, rng):
        """Reproduces the paper's 'Buffer cannot run Wikipedia' failure mode."""
        __, __, ga, gb = make_grids(rng, m=40, k=40, n=40, block=5)
        limit_probe = LocalEngine(inplace=True)
        limit_probe.matmul_grids(ga, gb)
        limit = limit_probe.tracker.peak_bytes + 100
        # In-Place fits within the limit...
        LocalEngine(inplace=True, memory_limit_bytes=limit).matmul_grids(ga, gb)
        # ...Buffer does not.
        with pytest.raises(MemoryLimitExceeded):
            LocalEngine(inplace=False, memory_limit_bytes=limit).matmul_grids(ga, gb)

    def test_flops_recorded(self, rng):
        __, __, ga, gb = make_grids(rng)
        engine = LocalEngine()
        engine.matmul_grids(ga, gb)
        assert engine.stats.flops > 0
        assert engine.stats.tasks > 0

    def test_sparse_flops_classified(self, rng):
        a, b, __, gb = make_grids(rng)
        ga = split(random_sparse(rng, 20, 16, 0.1), 5, storage="sparse")
        engine = LocalEngine()
        engine.matmul_grids(ga, gb)
        assert engine.stats.sparse_flops > 0

    def test_rejects_zero_threads(self):
        with pytest.raises(BlockError):
            LocalEngine(threads=0)


class TestOtherGridOps:
    def test_cellwise_ops(self, rng):
        a, b = rng.random((12, 10)), rng.random((12, 10)) + 0.5
        ga, gb = split(a, 4), split(b, 4)
        engine = LocalEngine(threads=2)
        for op, expected in [
            ("add", a + b),
            ("subtract", a - b),
            ("multiply", a * b),
            ("divide", a / b),
        ]:
            out = engine.cellwise_grids(op, ga, gb)
            np.testing.assert_allclose(assemble(out, (12, 10), 4), expected)

    def test_cellwise_add_union_of_keys(self, rng):
        a = rng.random((8, 8))
        ga = split(a, 4)
        gb = dict(ga)
        del gb[(0, 0)]  # missing block treated as zero
        out = LocalEngine().cellwise_grids("add", ga, gb)
        expected = a * 2
        expected[:4, :4] = a[:4, :4]
        np.testing.assert_allclose(assemble(out, (8, 8), 4), expected)

    def test_cellwise_multiply_intersection_of_keys(self, rng):
        a = rng.random((8, 8))
        ga = split(a, 4)
        gb = dict(ga)
        del gb[(0, 0)]
        out = LocalEngine().cellwise_grids("multiply", ga, gb)
        assert (0, 0) not in out

    def test_cellwise_divide_requires_denominator(self, rng):
        ga = split(rng.random((8, 8)), 4)
        gb = dict(ga)
        del gb[(0, 0)]
        with pytest.raises(BlockError):
            LocalEngine().cellwise_grids("divide", ga, gb)

    def test_cellwise_subtract_missing_left_negates(self, rng):
        a = rng.random((4, 4))
        out = LocalEngine().cellwise_grids("subtract", {}, split(a, 4))
        np.testing.assert_allclose(assemble(out, (4, 4), 4), -a)

    def test_scalar_grids(self, rng):
        a = rng.random((8, 6))
        out = LocalEngine().scalar_grids("multiply", split(a, 4), 2.5)
        np.testing.assert_allclose(assemble(out, (8, 6), 4), a * 2.5)

    def test_transpose_grid(self, rng):
        a = rng.random((8, 6))
        out = LocalEngine(threads=2).transpose_grid(split(a, 4))
        np.testing.assert_allclose(assemble(out, (6, 8), 4), a.T)

    def test_sum_and_sq_sum(self, rng):
        a = rng.random((8, 6))
        engine = LocalEngine()
        grid = split(a, 4)
        assert engine.sum_grid(grid) == pytest.approx(a.sum())
        assert engine.sq_sum_grid(grid) == pytest.approx((a * a).sum())

    def test_unknown_cellwise_op(self, rng):
        ga = split(rng.random((4, 4)), 4)
        with pytest.raises(BlockError):
            LocalEngine().cellwise_grids("xor", ga, ga)

    def test_register_release_roundtrip(self, rng):
        grid = split(rng.random((8, 8)), 4)
        engine = LocalEngine()
        engine.register_grid(grid)
        before = engine.tracker.current_bytes
        assert before > 0
        engine.release_grid(grid)
        assert engine.tracker.current_bytes == 0

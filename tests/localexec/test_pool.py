"""Tests for the memory tracker and result-buffer pool."""

import threading

import pytest

from repro.errors import MemoryLimitExceeded
from repro.localexec.pool import MemoryTracker, ResultBufferPool


class TestMemoryTracker:
    def test_allocate_release(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        assert tracker.current_bytes == 100
        tracker.release(40)
        assert tracker.current_bytes == 60

    def test_peak_is_high_water_mark(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        tracker.release(100)
        tracker.allocate(30)
        assert tracker.peak_bytes == 100
        assert tracker.current_bytes == 30

    def test_limit_enforced(self):
        tracker = MemoryTracker(limit_bytes=50)
        tracker.allocate(40)
        with pytest.raises(MemoryLimitExceeded):
            tracker.allocate(20)
        # The failed allocation is not recorded.
        assert tracker.current_bytes == 40

    def test_release_never_goes_negative(self):
        tracker = MemoryTracker()
        tracker.release(10)
        assert tracker.current_bytes == 0

    def test_negative_amounts_rejected(self):
        tracker = MemoryTracker()
        with pytest.raises(ValueError):
            tracker.allocate(-1)
        with pytest.raises(ValueError):
            tracker.release(-1)

    def test_reset_peak(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        tracker.release(90)
        tracker.reset_peak()
        assert tracker.peak_bytes == 10

    def test_thread_safety(self):
        tracker = MemoryTracker()

        def worker():
            for __ in range(1000):
                tracker.allocate(1)
                tracker.release(1)

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.current_bytes == 0


class TestResultBufferPool:
    def test_acquire_charges_tracker(self):
        tracker = MemoryTracker()
        pool = ResultBufferPool(tracker)
        block = pool.acquire(10, 10)
        assert tracker.current_bytes == block.model_nbytes

    def test_release_then_acquire_reuses_block(self):
        tracker = MemoryTracker()
        pool = ResultBufferPool(tracker)
        block = pool.acquire(5, 5)
        block.data[0, 0] = 9.0
        pool.release(block)
        again = pool.acquire(5, 5)
        assert again is block
        assert again.data[0, 0] == 0.0  # zeroed on reuse

    def test_pooled_blocks_stay_charged(self):
        tracker = MemoryTracker()
        pool = ResultBufferPool(tracker)
        block = pool.acquire(5, 5)
        pool.release(block)
        assert tracker.current_bytes == block.model_nbytes
        assert pool.cached_blocks == 1

    def test_eviction_past_cap_releases_memory(self):
        tracker = MemoryTracker()
        pool = ResultBufferPool(tracker, max_per_shape=1)
        a, b = pool.acquire(4, 4), pool.acquire(4, 4)
        pool.release(a)
        pool.release(b)  # beyond the cap: freed
        assert pool.cached_blocks == 1
        assert tracker.current_bytes == a.model_nbytes

    def test_different_shapes_pooled_separately(self):
        tracker = MemoryTracker()
        pool = ResultBufferPool(tracker)
        a = pool.acquire(2, 3)
        pool.release(a)
        b = pool.acquire(3, 2)
        assert b is not a

    def test_drain_frees_everything(self):
        tracker = MemoryTracker()
        pool = ResultBufferPool(tracker)
        pool.release(pool.acquire(4, 4))
        pool.release(pool.acquire(2, 2))
        pool.drain()
        assert pool.cached_blocks == 0
        assert tracker.current_bytes == 0

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            ResultBufferPool(MemoryTracker(), max_per_shape=-1)

"""Tests for task cutting (In-Place vs Buffer granularity)."""


from repro.blocks import split
from repro.localexec.tasks import buffered_matmul_tasks, inplace_matmul_tasks


def grids(rng, m=8, k=8, n=8, block=4):
    a = split(rng.random((m, k)), block, storage="dense")
    b = split(rng.random((k, n)), block, storage="dense")
    return a, b


class TestInPlaceTasks:
    def test_one_task_per_result_block(self, rng):
        a, b = grids(rng)
        tasks = inplace_matmul_tasks(a, b)
        assert len(tasks) == 4  # 2x2 result grid
        assert {t.result_key for t in tasks} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_pairs_cover_inner_dimension(self, rng):
        a, b = grids(rng)
        for task in inplace_matmul_tasks(a, b):
            assert len(task.pairs) == 2  # two inner blocks

    def test_result_shape_recorded(self, rng):
        a, b = grids(rng, m=10, n=6, block=4)
        tasks = {t.result_key: t for t in inplace_matmul_tasks(a, b)}
        assert tasks[(2, 1)].result_shape == (2, 2)

    def test_missing_inner_blocks_skipped(self, rng):
        a, b = grids(rng)
        del a[(0, 1)]  # drop one inner block of block-row 0
        tasks = {t.result_key: t for t in inplace_matmul_tasks(a, b)}
        assert len(tasks[(0, 0)].pairs) == 1
        assert len(tasks[(1, 0)].pairs) == 2

    def test_empty_intersection_yields_no_tasks(self, rng):
        a, b = grids(rng)
        only_k0 = {key: blk for key, blk in a.items() if key[1] == 0}
        only_k1 = {key: blk for key, blk in b.items() if key[0] == 1}
        assert inplace_matmul_tasks(only_k0, only_k1) == []


class TestBufferTasks:
    def test_one_task_per_partial_product(self, rng):
        a, b = grids(rng)
        tasks = buffered_matmul_tasks(a, b)
        # MA x NA x NB = 2 x 2 x 2 partial multiplications
        assert len(tasks) == 8

    def test_buffer_task_count_exceeds_inplace(self, rng):
        a, b = grids(rng, k=16)
        assert len(buffered_matmul_tasks(a, b)) > len(inplace_matmul_tasks(a, b))

    def test_deterministic_order(self, rng):
        a, b = grids(rng)
        first = [(t.result_key) for t in buffered_matmul_tasks(a, b)]
        second = [(t.result_key) for t in buffered_matmul_tasks(a, b)]
        assert first == second

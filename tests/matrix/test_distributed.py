"""Tests for DistributedMatrix construction and views."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import ShapeError
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext
from tests.conftest import random_sparse


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))


class TestFromNumpy:
    def test_roundtrip_row(self, ctx, rng):
        array = rng.random((20, 12))
        mat = DistributedMatrix.from_numpy(ctx, array, 4, Scheme.ROW)
        np.testing.assert_array_equal(mat.to_numpy(), array)

    def test_roundtrip_col(self, ctx, rng):
        array = rng.random((20, 12))
        mat = DistributedMatrix.from_numpy(ctx, array, 4, Scheme.COL)
        np.testing.assert_array_equal(mat.to_numpy(), array)

    def test_load_1d_is_free(self, ctx, rng):
        DistributedMatrix.from_numpy(ctx, rng.random((8, 8)), 4, Scheme.ROW)
        assert ctx.ledger.total_bytes == 0

    def test_load_broadcast_charges(self, ctx, rng):
        DistributedMatrix.from_numpy(ctx, rng.random((8, 8)), 4, Scheme.BROADCAST)
        assert ctx.ledger.bytes_by_kind().get("broadcast", 0) > 0

    def test_empty_blocks_dropped(self, ctx):
        array = np.zeros((8, 8))
        array[0, 0] = 1.0
        mat = DistributedMatrix.from_numpy(ctx, array, 4, Scheme.ROW)
        assert len(mat.driver_grid()) == 1
        np.testing.assert_array_equal(mat.to_numpy(), array)

    def test_row_placement_invariant(self, ctx, rng):
        mat = DistributedMatrix.from_numpy(ctx, rng.random((32, 32)), 4, Scheme.ROW)
        for p in range(4):
            for (i, __), __b in mat.rdd.partition(p):
                assert i % 4 == p

    def test_rejects_bad_dims(self, ctx):
        with pytest.raises(ShapeError):
            DistributedMatrix(ctx, None, 0, 5, 4, Scheme.ROW)
        with pytest.raises(ShapeError):
            DistributedMatrix(ctx, None, 5, 5, 0, Scheme.ROW)


class TestRandom:
    def test_deterministic_by_seed(self, ctx):
        a = DistributedMatrix.random(ctx, 10, 10, 4, seed=7)
        b = DistributedMatrix.random(ctx, 10, 10, 4, seed=7)
        np.testing.assert_array_equal(a.to_numpy(), b.to_numpy())

    def test_different_seeds_differ(self, ctx):
        a = DistributedMatrix.random(ctx, 10, 10, 4, seed=1)
        b = DistributedMatrix.random(ctx, 10, 10, 4, seed=2)
        assert not np.array_equal(a.to_numpy(), b.to_numpy())


class TestViews:
    def test_worker_grid_partitions_data(self, ctx, rng):
        array = rng.random((32, 8))
        mat = DistributedMatrix.from_numpy(ctx, array, 4, Scheme.ROW)
        all_keys = set()
        for w in range(4):
            keys = set(mat.worker_grid(w))
            assert not (keys & all_keys)
            all_keys |= keys
        assert all_keys == set(mat.driver_grid())

    def test_broadcast_worker_grid_is_full(self, ctx, rng):
        array = rng.random((16, 16))
        mat = DistributedMatrix.from_numpy(ctx, array, 4, Scheme.BROADCAST)
        for w in range(4):
            assert len(mat.worker_grid(w)) == 16

    def test_driver_grid_dedups_broadcast(self, ctx, rng):
        array = rng.random((16, 16))
        mat = DistributedMatrix.from_numpy(ctx, array, 4, Scheme.BROADCAST)
        assert len(mat.driver_grid()) == 16
        np.testing.assert_array_equal(mat.to_numpy(), array)


class TestStatistics:
    def test_nnz_and_sparsity(self, ctx, rng):
        array = random_sparse(rng, 20, 20, 0.2)
        mat = DistributedMatrix.from_numpy(ctx, array, 4)
        assert mat.nnz() == np.count_nonzero(array)
        assert mat.sparsity() == pytest.approx(np.count_nonzero(array) / 400)

    def test_is_sparse_detection(self, ctx, rng):
        sparse = DistributedMatrix.from_numpy(ctx, random_sparse(rng, 16, 16, 0.05), 4)
        dense = DistributedMatrix.from_numpy(ctx, rng.random((16, 16)), 4)
        assert sparse.is_sparse()
        assert not dense.is_sparse()

    def test_value_on_1x1(self, ctx):
        mat = DistributedMatrix.from_numpy(ctx, np.array([[3.5]]), 4)
        assert mat.value() == 3.5

    def test_value_rejects_larger(self, ctx, rng):
        mat = DistributedMatrix.from_numpy(ctx, rng.random((2, 2)), 4)
        with pytest.raises(ShapeError):
            mat.value()

    def test_block_grid_shape(self, ctx, rng):
        mat = DistributedMatrix.from_numpy(ctx, rng.random((10, 7)), 4)
        assert mat.block_grid_shape == (3, 2)

"""Regression tests for implicit-zero handling: all-zero blocks are dropped
from RDDs, but operations with ``f(0) != 0`` must still act on them."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.primitives import scalar_op_matrix, unary_op_matrix
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))


def matrix_with_dropped_blocks(ctx, scheme=Scheme.ROW):
    """A 16x16 matrix whose only non-zeros sit in one corner block: the
    other 15 blocks are dropped from the RDD."""
    array = np.zeros((16, 16))
    array[0, 0] = 2.0
    matrix = DistributedMatrix.from_numpy(ctx, array, 4, scheme)
    assert len(matrix.driver_grid()) == 1  # precondition: blocks dropped
    return array, matrix


class TestUnaryOnDroppedBlocks:
    @pytest.mark.parametrize("scheme", [Scheme.ROW, Scheme.COL])
    def test_sigmoid_fills_implicit_zeros(self, ctx, scheme):
        array, matrix = matrix_with_dropped_blocks(ctx, scheme)
        result = unary_op_matrix("sigmoid", matrix)
        np.testing.assert_allclose(result.to_numpy(), 1 / (1 + np.exp(-array)))

    def test_exp_fills_implicit_zeros(self, ctx):
        array, matrix = matrix_with_dropped_blocks(ctx)
        result = unary_op_matrix("exp", matrix)
        np.testing.assert_allclose(result.to_numpy(), np.exp(array))

    def test_broadcast_scheme_also_completed(self, ctx):
        from repro.matrix.primitives import broadcast_matrix

        array, matrix = matrix_with_dropped_blocks(ctx)
        replica = broadcast_matrix(matrix)
        result = unary_op_matrix("sigmoid", replica)
        np.testing.assert_allclose(result.to_numpy(), 1 / (1 + np.exp(-array)))

    def test_zero_preserving_funcs_skip_materialisation(self, ctx):
        __, matrix = matrix_with_dropped_blocks(ctx)
        result = unary_op_matrix("abs", matrix)
        # no reason to materialise: dropped blocks stay dropped
        assert len(result.driver_grid()) == 1

    def test_ragged_edge_blocks_get_right_shape(self, ctx):
        array = np.zeros((10, 7))  # 4-blocks: ragged edges (2x3 block at corner)
        array[0, 0] = 1.0
        matrix = DistributedMatrix.from_numpy(ctx, array, 4)
        result = unary_op_matrix("exp", matrix)
        np.testing.assert_allclose(result.to_numpy(), np.exp(array))


class TestScalarAddOnDroppedBlocks:
    def test_add_shifts_implicit_zeros(self, ctx):
        array, matrix = matrix_with_dropped_blocks(ctx)
        result = scalar_op_matrix("add", matrix, 1.5)
        np.testing.assert_allclose(result.to_numpy(), array + 1.5)

    def test_subtract_shifts_implicit_zeros(self, ctx):
        array, matrix = matrix_with_dropped_blocks(ctx)
        result = scalar_op_matrix("subtract", matrix, 0.25)
        np.testing.assert_allclose(result.to_numpy(), array - 0.25)

    def test_multiply_leaves_dropped_blocks_alone(self, ctx):
        __, matrix = matrix_with_dropped_blocks(ctx)
        result = scalar_op_matrix("multiply", matrix, 3.0)
        assert len(result.driver_grid()) == 1

    def test_add_zero_is_structure_preserving(self, ctx):
        __, matrix = matrix_with_dropped_blocks(ctx)
        result = scalar_op_matrix("add", matrix, 0.0)
        assert len(result.driver_grid()) == 1


class TestEndToEnd:
    def test_program_over_dropped_blocks(self, ctx, rng):
        """sigmoid(V @ w) with w = 0: the product's blocks are all zero and
        dropped; the sigmoid must still produce the all-0.5 matrix."""
        from repro.lang.program import ProgramBuilder
        from repro.session import DMacSession

        pb = ProgramBuilder()
        v = pb.load("V", (32, 8))
        w = pb.full("w", (8, 1), 0.0)
        pb.output(pb.assign("p", (v @ w).sigmoid()))
        result = DMacSession(ClusterConfig(4, 1, block_size=8)).run(
            pb.build(), {"V": rng.random((32, 8))}
        )
        np.testing.assert_allclose(result.matrices["p"], np.full((32, 1), 0.5))

"""Tests for distributed-matrix persistence."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import ReproError
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.io import save_matrix, load_matrix
from repro.matrix.primitives import broadcast_matrix
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext
from tests.conftest import random_sparse


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))


class TestRoundTrip:
    def test_dense_roundtrip(self, ctx, rng, tmp_path):
        array = rng.random((20, 14))
        matrix = DistributedMatrix.from_numpy(ctx, array, 4)
        save_matrix(tmp_path / "m.npz", matrix)
        loaded = load_matrix(ctx, tmp_path / "m.npz", block_size=4)
        np.testing.assert_array_equal(loaded.to_numpy(), array)

    def test_sparse_roundtrip(self, ctx, rng, tmp_path):
        array = random_sparse(rng, 30, 22, 0.1)
        matrix = DistributedMatrix.from_numpy(ctx, array, 8)
        save_matrix(tmp_path / "m.npz", matrix)
        loaded = load_matrix(ctx, tmp_path / "m.npz", block_size=8)
        np.testing.assert_array_equal(loaded.to_numpy(), array)

    def test_reload_with_different_block_size_and_scheme(self, ctx, rng, tmp_path):
        array = random_sparse(rng, 24, 24, 0.2)
        matrix = DistributedMatrix.from_numpy(ctx, array, 4)
        save_matrix(tmp_path / "m.npz", matrix)
        loaded = load_matrix(ctx, tmp_path / "m.npz", block_size=6, scheme=Scheme.COL)
        assert loaded.block_size == 6
        assert loaded.scheme is Scheme.COL
        np.testing.assert_array_equal(loaded.to_numpy(), array)

    def test_broadcast_matrix_saves_one_copy(self, ctx, rng, tmp_path):
        array = rng.random((12, 12))
        replica = broadcast_matrix(DistributedMatrix.from_numpy(ctx, array, 4))
        save_matrix(tmp_path / "m.npz", replica)
        loaded = load_matrix(ctx, tmp_path / "m.npz", block_size=4)
        np.testing.assert_array_equal(loaded.to_numpy(), array)

    def test_all_zero_matrix(self, ctx, tmp_path):
        matrix = DistributedMatrix.from_numpy(ctx, np.zeros((8, 8)), 4)
        save_matrix(tmp_path / "z.npz", matrix)
        loaded = load_matrix(ctx, tmp_path / "z.npz", block_size=4)
        assert np.all(loaded.to_numpy() == 0)

    def test_load_is_free(self, ctx, rng, tmp_path):
        array = rng.random((12, 12))
        save_matrix(tmp_path / "m.npz", DistributedMatrix.from_numpy(ctx, array, 4))
        mark = ctx.ledger.snapshot()
        load_matrix(ctx, tmp_path / "m.npz", block_size=4)
        assert ctx.ledger.snapshot() == mark

    def test_bare_name_gets_npz_suffix(self, ctx, rng, tmp_path):
        array = rng.random((6, 6))
        save_matrix(tmp_path / "bare", DistributedMatrix.from_numpy(ctx, array, 4))
        loaded = load_matrix(ctx, tmp_path / "bare", block_size=4)
        np.testing.assert_array_equal(loaded.to_numpy(), array)


class TestValidation:
    def test_missing_file(self, ctx, tmp_path):
        with pytest.raises(ReproError):
            load_matrix(ctx, tmp_path / "ghost.npz", block_size=4)

    def test_foreign_npz_rejected(self, ctx, tmp_path):
        np.savez(tmp_path / "other.npz", data=np.zeros(3))
        with pytest.raises(ReproError):
            load_matrix(ctx, tmp_path / "other.npz", block_size=4)

"""Tests for the physical distributed-matrix primitives: correctness,
communication accounting, and placement invariants."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import SchemeError, ShapeError
from repro.matrix import primitives as prim
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext
from tests.conftest import random_sparse


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))


def dist(ctx, array, scheme=Scheme.ROW, block=4):
    return DistributedMatrix.from_numpy(ctx, array, block, scheme)


class TestRepartition:
    def test_row_to_col(self, ctx, rng):
        array = rng.random((16, 16))
        out = prim.repartition(dist(ctx, array), Scheme.COL)
        assert out.scheme is Scheme.COL
        np.testing.assert_array_equal(out.to_numpy(), array)

    def test_meters_bytes(self, ctx, rng):
        mat = dist(ctx, rng.random((16, 16)))
        prim.repartition(mat, Scheme.COL)
        assert ctx.ledger.total_bytes > 0

    def test_same_scheme_is_free_reference(self, ctx, rng):
        mat = dist(ctx, rng.random((16, 16)))
        out = prim.repartition(mat, Scheme.ROW)
        assert out is mat
        assert ctx.ledger.total_bytes == 0

    def test_placement_after_repartition(self, ctx, rng):
        out = prim.repartition(dist(ctx, rng.random((32, 32))), Scheme.COL)
        for p in range(4):
            for (__, j), __b in out.rdd.partition(p):
                assert j % 4 == p

    def test_rejects_broadcast_source(self, ctx, rng):
        mat = prim.broadcast_matrix(dist(ctx, rng.random((8, 8))))
        with pytest.raises(SchemeError):
            prim.repartition(mat, Scheme.ROW)

    def test_rejects_broadcast_target(self, ctx, rng):
        with pytest.raises(SchemeError):
            prim.repartition(dist(ctx, rng.random((8, 8))), Scheme.BROADCAST)

    def test_moved_bytes_at_most_matrix_size(self, ctx, rng):
        """The cost model's |A| is an upper bound on the physical shuffle."""
        array = rng.random((32, 32))
        mat = dist(ctx, array)
        size = mat.model_nbytes()
        prim.repartition(mat, Scheme.COL)
        assert ctx.ledger.total_bytes <= size * 1.2  # + record framing


class TestBroadcastAndExtract:
    def test_broadcast_replicates(self, ctx, rng):
        array = rng.random((16, 16))
        out = prim.broadcast_matrix(dist(ctx, array))
        assert out.scheme is Scheme.BROADCAST
        for w in range(4):
            assert len(out.worker_grid(w)) == len(out.driver_grid())
        np.testing.assert_array_equal(out.to_numpy(), array)

    def test_broadcast_charges_k_minus_1_copies(self, ctx, rng):
        mat = dist(ctx, rng.random((16, 16)))
        size = mat.model_nbytes()
        prim.broadcast_matrix(mat)
        assert ctx.ledger.total_bytes == 3 * size

    def test_broadcast_idempotent(self, ctx, rng):
        mat = prim.broadcast_matrix(dist(ctx, rng.random((8, 8))))
        mark = ctx.ledger.snapshot()
        assert prim.broadcast_matrix(mat) is mat
        assert ctx.ledger.snapshot() == mark

    def test_extract_is_free(self, ctx, rng):
        array = rng.random((16, 16))
        replica = prim.broadcast_matrix(dist(ctx, array))
        mark = ctx.ledger.snapshot()
        out = prim.extract(replica, Scheme.COL)
        assert ctx.ledger.snapshot() == mark
        assert out.scheme is Scheme.COL
        np.testing.assert_array_equal(out.to_numpy(), array)

    def test_extract_placement(self, ctx, rng):
        replica = prim.broadcast_matrix(dist(ctx, rng.random((32, 32))))
        out = prim.extract(replica, Scheme.ROW)
        for p in range(4):
            for (i, __), __b in out.rdd.partition(p):
                assert i % 4 == p

    def test_extract_requires_broadcast(self, ctx, rng):
        with pytest.raises(SchemeError):
            prim.extract(dist(ctx, rng.random((8, 8))), Scheme.COL)

    def test_extract_rejects_broadcast_target(self, ctx, rng):
        replica = prim.broadcast_matrix(dist(ctx, rng.random((8, 8))))
        with pytest.raises(SchemeError):
            prim.extract(replica, Scheme.BROADCAST)


class TestLocalTranspose:
    def test_row_becomes_col(self, ctx, rng):
        array = rng.random((12, 20))
        out = prim.local_transpose(dist(ctx, array))
        assert out.scheme is Scheme.COL
        assert out.shape == (20, 12)
        np.testing.assert_array_equal(out.to_numpy(), array.T)

    def test_col_becomes_row(self, ctx, rng):
        array = rng.random((12, 20))
        out = prim.local_transpose(dist(ctx, array, Scheme.COL))
        assert out.scheme is Scheme.ROW
        np.testing.assert_array_equal(out.to_numpy(), array.T)

    def test_broadcast_stays_broadcast(self, ctx, rng):
        array = rng.random((8, 8))
        replica = prim.broadcast_matrix(dist(ctx, array))
        out = prim.local_transpose(replica)
        assert out.scheme is Scheme.BROADCAST
        np.testing.assert_array_equal(out.to_numpy(), array.T)

    def test_is_free(self, ctx, rng):
        mat = dist(ctx, rng.random((16, 16)))
        mark = ctx.ledger.snapshot()
        prim.local_transpose(mat)
        assert ctx.ledger.snapshot() == mark

    def test_blocks_stay_on_their_worker(self, ctx, rng):
        mat = dist(ctx, rng.random((32, 32)))
        out = prim.local_transpose(mat)
        # transposed block (j, i) under Column scheme maps back to worker i%K
        for p in range(4):
            for (__, i), __b in out.rdd.partition(p):
                assert i % 4 == p


class TestMultiplicationStrategies:
    def test_rmm1(self, ctx, rng):
        a, b = rng.random((16, 12)), rng.random((12, 8))
        replica = prim.broadcast_matrix(dist(ctx, a))
        cols = dist(ctx, b, Scheme.COL)
        mark = ctx.ledger.snapshot()
        out = prim.rmm1(replica, cols)
        assert ctx.ledger.snapshot() == mark  # RMM itself is comm-free
        assert out.scheme is Scheme.COL
        np.testing.assert_allclose(out.to_numpy(), a @ b, atol=1e-9)

    def test_rmm2(self, ctx, rng):
        a, b = rng.random((16, 12)), rng.random((12, 8))
        rows = dist(ctx, a, Scheme.ROW)
        replica = prim.broadcast_matrix(dist(ctx, b))
        mark = ctx.ledger.snapshot()
        out = prim.rmm2(rows, replica)
        assert ctx.ledger.snapshot() == mark
        assert out.scheme is Scheme.ROW
        np.testing.assert_allclose(out.to_numpy(), a @ b, atol=1e-9)

    @pytest.mark.parametrize("out_scheme", [Scheme.ROW, Scheme.COL])
    def test_cpmm(self, ctx, rng, out_scheme):
        a, b = rng.random((16, 12)), rng.random((12, 8))
        left = dist(ctx, a, Scheme.COL)
        right = dist(ctx, b, Scheme.ROW)
        mark = ctx.ledger.snapshot()
        out = prim.cpmm(left, right, out_scheme)
        assert ctx.ledger.snapshot() > mark  # aggregation shuffles
        assert out.scheme is out_scheme
        np.testing.assert_allclose(out.to_numpy(), a @ b, atol=1e-9)

    def test_cpmm_sparse_inputs(self, ctx, rng):
        a = random_sparse(rng, 16, 12, 0.2)
        b = random_sparse(rng, 12, 8, 0.3)
        out = prim.cpmm(dist(ctx, a, Scheme.COL), dist(ctx, b, Scheme.ROW))
        np.testing.assert_allclose(out.to_numpy(), a @ b, atol=1e-9)

    def test_strategies_agree(self, ctx, rng):
        a, b = rng.random((16, 12)), rng.random((12, 8))
        r1 = prim.rmm1(prim.broadcast_matrix(dist(ctx, a)), dist(ctx, b, Scheme.COL))
        r2 = prim.rmm2(dist(ctx, a), prim.broadcast_matrix(dist(ctx, b)))
        r3 = prim.cpmm(dist(ctx, a, Scheme.COL), dist(ctx, b, Scheme.ROW))
        np.testing.assert_allclose(r1.to_numpy(), r2.to_numpy(), atol=1e-9)
        np.testing.assert_allclose(r1.to_numpy(), r3.to_numpy(), atol=1e-9)

    def test_rmm1_requires_schemes(self, ctx, rng):
        a = dist(ctx, rng.random((8, 8)))
        b = dist(ctx, rng.random((8, 8)), Scheme.COL)
        with pytest.raises(SchemeError):
            prim.rmm1(a, b)  # a not broadcast

    def test_shape_mismatch(self, ctx, rng):
        a = prim.broadcast_matrix(dist(ctx, rng.random((8, 6))))
        b = dist(ctx, rng.random((8, 8)), Scheme.COL)
        with pytest.raises(ShapeError):
            prim.rmm1(a, b)

    def test_block_size_mismatch(self, ctx, rng):
        a = prim.broadcast_matrix(dist(ctx, rng.random((8, 8)), block=4))
        b = dist(ctx, rng.random((8, 8)), Scheme.COL, block=2)
        with pytest.raises(ShapeError):
            prim.rmm1(a, b)

    def test_flops_attributed_to_workers(self, ctx, rng):
        a, b = rng.random((16, 12)), rng.random((12, 8))
        prim.rmm1(prim.broadcast_matrix(dist(ctx, a)), dist(ctx, b, Scheme.COL))
        assert sum(e.stats.flops for e in ctx.engines) > 0


class TestCellwiseAndScalar:
    @pytest.mark.parametrize("op", ["add", "subtract", "multiply", "divide"])
    def test_cellwise_row_aligned(self, ctx, rng, op):
        a, b = rng.random((12, 8)), rng.random((12, 8)) + 0.5
        out = prim.cellwise_op(op, dist(ctx, a), dist(ctx, b))
        expected = {"add": a + b, "subtract": a - b, "multiply": a * b, "divide": a / b}
        np.testing.assert_allclose(out.to_numpy(), expected[op], atol=1e-12)

    def test_cellwise_is_free(self, ctx, rng):
        a, b = dist(ctx, rng.random((8, 8))), dist(ctx, rng.random((8, 8)))
        mark = ctx.ledger.snapshot()
        prim.cellwise_op("add", a, b)
        assert ctx.ledger.snapshot() == mark

    def test_cellwise_broadcast_aligned(self, ctx, rng):
        a, b = rng.random((8, 8)), rng.random((8, 8))
        ba = prim.broadcast_matrix(dist(ctx, a))
        bb = prim.broadcast_matrix(dist(ctx, b))
        out = prim.cellwise_op("multiply", ba, bb)
        assert out.scheme is Scheme.BROADCAST
        np.testing.assert_allclose(out.to_numpy(), a * b)

    def test_cellwise_rejects_misaligned_schemes(self, ctx, rng):
        a = dist(ctx, rng.random((8, 8)), Scheme.ROW)
        b = dist(ctx, rng.random((8, 8)), Scheme.COL)
        with pytest.raises(SchemeError):
            prim.cellwise_op("add", a, b)

    def test_cellwise_rejects_shape_mismatch(self, ctx, rng):
        a = dist(ctx, rng.random((8, 8)))
        b = dist(ctx, rng.random((8, 6)))
        with pytest.raises(ShapeError):
            prim.cellwise_op("add", a, b)

    def test_scalar_op(self, ctx, rng):
        a = rng.random((8, 8))
        out = prim.scalar_op_matrix("multiply", dist(ctx, a), 3.0)
        assert out.scheme is Scheme.ROW
        np.testing.assert_allclose(out.to_numpy(), a * 3.0)

    def test_scalar_op_on_broadcast(self, ctx, rng):
        a = rng.random((8, 8))
        replica = prim.broadcast_matrix(dist(ctx, a))
        out = prim.scalar_op_matrix("add", replica, 1.0)
        assert out.scheme is Scheme.BROADCAST
        np.testing.assert_allclose(out.to_numpy(), a + 1.0)

    def test_aggregations(self, ctx, rng):
        a = random_sparse(rng, 12, 12, 0.4)
        mat = dist(ctx, a)
        assert prim.matrix_sum(mat) == pytest.approx(a.sum())
        assert prim.matrix_sq_sum(mat) == pytest.approx((a * a).sum())

    def test_aggregation_on_broadcast_counts_once(self, ctx, rng):
        a = rng.random((8, 8))
        replica = prim.broadcast_matrix(dist(ctx, a))
        assert prim.matrix_sum(replica) == pytest.approx(a.sum())

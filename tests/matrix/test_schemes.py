"""Tests for partition schemes and the Table 1 constraints."""

import pytest

from repro.errors import SchemeError
from repro.matrix.schemes import Scheme, contain, equal_b, equal_rc, oppose
from repro.rdd.partitioner import ColumnPartitioner, RowPartitioner

R, C, B = Scheme.ROW, Scheme.COL, Scheme.BROADCAST
ALL = (R, C, B)


class TestSchemeProperties:
    def test_one_dimensional(self):
        assert R.is_one_dimensional and C.is_one_dimensional
        assert not B.is_one_dimensional

    def test_opposite(self):
        assert R.opposite is C
        assert C.opposite is R
        assert B.opposite is B

    def test_partitioner_types(self):
        assert isinstance(R.partitioner(4), RowPartitioner)
        assert isinstance(C.partitioner(4), ColumnPartitioner)

    def test_broadcast_has_no_partitioner(self):
        with pytest.raises(SchemeError):
            B.partitioner(4)

    def test_str(self):
        assert str(R) == "r" and str(C) == "c" and str(B) == "b"


class TestConstraints:
    """The four constraints of Table 1, checked over all 9 scheme pairs."""

    def test_equal_b(self):
        assert equal_b(B, B)
        assert not any(equal_b(a, b) for a in ALL for b in ALL if (a, b) != (B, B))

    def test_equal_rc(self):
        truths = {(R, R), (C, C)}
        for a in ALL:
            for b in ALL:
                assert equal_rc(a, b) == ((a, b) in truths)

    def test_oppose(self):
        truths = {(R, C), (C, R)}
        for a in ALL:
            for b in ALL:
                assert oppose(a, b) == ((a, b) in truths)

    def test_contain(self):
        truths = {(B, R), (B, C)}
        for a in ALL:
            for b in ALL:
                assert contain(a, b) == ((a, b) in truths)

    def test_every_pair_satisfies_exactly_one_family(self):
        """Each (out, in) pair maps to exactly one Table 2 condition per
        transposed/untransposed family."""
        for a in ALL:
            for b in ALL:
                untransposed = [
                    oppose(a, b),
                    contain(b, a),
                    equal_rc(a, b) or equal_b(a, b),
                    contain(a, b),
                ]
                assert sum(untransposed) == 1, (a, b)

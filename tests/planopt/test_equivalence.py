"""Property: the optimizer never changes results, only costs.

For every built-in program, the optimized and unoptimized runs must
produce *byte-identical* outputs (bitwise -- NaN patterns included, which
``np.array_equal`` would mishandle) while the optimized run moves no more
ledgered bytes than the unoptimized one.
"""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.lang.program import LoadOp
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_jacobi_program,
    build_linreg_program,
    build_logreg_program,
    build_pagerank_program,
    build_svd_program,
)

PROGRAMS = {
    "gnmf": lambda: build_gnmf_program((60, 40), 0.05, factors=8, iterations=2),
    "pagerank": lambda: build_pagerank_program(120, 0.05, iterations=3),
    "linreg": lambda: build_linreg_program((80, 12), 0.1, iterations=2),
    "logreg": lambda: build_logreg_program((80, 12), 0.1, iterations=2),
    "jacobi": lambda: build_jacobi_program(50, 0.1, iterations=3),
    "cf": lambda: build_cf_program((40, 60), 0.05),
    "svd": lambda: build_svd_program((60, 40), 0.05, rank=3)[0],
}


def inputs_for(program, seed=7):
    """Deterministic dense-random inputs thinned to each load's declared
    sparsity (the exact values are irrelevant: both runs see the same)."""
    rng = np.random.default_rng(seed)
    inputs = {}
    for op in program.ops:
        if isinstance(op, LoadOp):
            array = rng.random((op.rows, op.cols))
            if op.sparsity < 1.0:
                array[array > op.sparsity] = 0.0
            inputs[op.output] = array
    return inputs


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_optimizer_preserves_results_and_never_moves_more(name):
    program = PROGRAMS[name]()
    inputs = inputs_for(program)
    plain = DMacSession(ClusterConfig(num_workers=4)).run(program, inputs)
    opt = DMacSession(ClusterConfig(num_workers=4), optimize=True).run(
        program, inputs
    )

    assert set(plain.matrices) == set(opt.matrices)
    for out in plain.matrices:
        a, b = plain.matrices[out], opt.matrices[out]
        assert a.shape == b.shape and a.dtype == b.dtype
        assert a.tobytes() == b.tobytes(), f"{name}: output {out!r} diverged"
    assert set(plain.scalars) == set(opt.scalars)
    for out in plain.scalars:
        a, b = plain.scalars[out], opt.scalars[out]
        assert np.float64(a).tobytes() == np.float64(b).tobytes(), (
            f"{name}: scalar {out!r} diverged"
        )

    assert opt.comm_bytes <= plain.comm_bytes, (
        f"{name}: optimizer moved more bytes "
        f"({opt.comm_bytes} > {plain.comm_bytes})"
    )

"""Unit tests for the plan-optimizer passes (repro.planopt)."""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.lint import LintContext, lint_plan
from repro.planopt import optimize_plan
from repro.planopt.cse import structural_key
from repro.programs import build_gnmf_program, build_pagerank_program


def plans_for(program, workers=4):
    """(baseline, optimized) plans for one program."""
    base = DMacSession(ClusterConfig(num_workers=workers)).plan(program)
    opt = DMacSession(ClusterConfig(num_workers=workers), optimize=True).plan(
        program
    )
    return base, opt


class TestPipeline:
    def test_pagerank_cost_strictly_improves(self):
        base, opt = plans_for(build_pagerank_program(400, 0.01, iterations=3))
        assert opt.predicted_bytes < base.predicted_bytes
        assert len(opt.steps) < len(base.steps)

    def test_rewrites_are_recorded(self):
        __, opt = plans_for(build_pagerank_program(400, 0.01, iterations=3))
        assert opt.rewrites, "optimizing pagerank must apply rewrites"
        passes = {r.pass_name for r in opt.rewrites}
        assert passes <= {"cse", "coalesce", "dce", "hoist"}
        assert {"cse", "coalesce", "hoist"} <= passes
        for rewrite in opt.rewrites:
            assert rewrite.format_human()  # human rendering never crashes

    def test_baseline_plan_left_untouched(self):
        program = build_pagerank_program(400, 0.01, iterations=3)
        base = DMacSession(ClusterConfig(num_workers=4)).plan(program)
        before = [str(s) for s in base.steps]
        optimize_plan(base, num_workers=4)
        assert [str(s) for s in base.steps] == before
        assert base.cache_pins == ()

    def test_never_costlier_across_apps(self):
        from repro.programs import (
            build_cf_program,
            build_jacobi_program,
            build_linreg_program,
            build_logreg_program,
            build_svd_program,
        )

        programs = [
            build_gnmf_program((60, 40), 0.05, factors=8, iterations=2),
            build_pagerank_program(100, 0.05, iterations=2),
            build_linreg_program((80, 10), 0.1, iterations=2),
            build_logreg_program((80, 10), 0.1, iterations=2),
            build_jacobi_program(50, 0.1, iterations=2),
            build_cf_program((40, 60), 0.05),
            build_svd_program((60, 40), 0.05, rank=3)[0],
        ]
        for program in programs:
            base, opt = plans_for(program)
            assert opt.predicted_bytes <= base.predicted_bytes
            assert len(opt.steps) <= len(base.steps)

    def test_optimized_plans_lint_clean(self):
        context = LintContext(num_workers=4)
        for program in (
            build_pagerank_program(400, 0.01, iterations=3),
            build_gnmf_program((60, 40), 0.05, factors=8, iterations=2),
        ):
            __, opt = plans_for(program)
            report = lint_plan(opt, context)
            assert not report.diagnostics, report.format_human()


class TestCSE:
    def test_no_structural_duplicates_survive(self):
        __, opt = plans_for(build_pagerank_program(400, 0.01, iterations=4))
        keys = [k for k in map(structural_key, opt.steps) if k is not None]
        assert len(keys) == len(set(keys))

    def test_pagerank_duplicate_scalar_multiply_merged(self):
        """Every iteration re-emits multiply(D, 1-d); one copy survives."""
        base, opt = plans_for(build_pagerank_program(400, 0.01, iterations=3))

        def count(plan):
            return sum(
                1 for s in plan.steps if "multiply(D" in str(s)
            )

        assert count(base) == 3
        assert count(opt) == 1


class TestDCE:
    def test_every_surviving_step_is_live(self):
        __, opt = plans_for(build_pagerank_program(400, 0.01, iterations=3))
        consumed = set()
        for step in opt.steps:
            consumed.update(step.inputs())
        outputs = set(opt.outputs.values())
        for step in opt.steps:
            out = step.output_instance()
            if out is None:
                continue  # aggregates feed scalars, checked by lint DM202
            assert out in consumed or out in outputs, f"dead step survives: {step}"


class TestHoist:
    def test_pagerank_pins_the_link_matrix(self):
        """Figure 9(a): the loop-invariant link matrix is cached once."""
        __, opt = plans_for(build_pagerank_program(400, 0.01, iterations=3))
        assert any(i.name == "link" for i in opt.cache_pins)

    def test_pins_are_epoch_zero(self):
        for program in (
            build_pagerank_program(400, 0.01, iterations=3),
            build_gnmf_program((60, 40), 0.05, factors=8, iterations=2),
        ):
            __, opt = plans_for(program)
            for pin in opt.cache_pins:
                assert "@" not in pin.name, f"loop-carried pin {pin}"

    def test_pins_are_produced_by_the_plan(self):
        __, opt = plans_for(build_gnmf_program((60, 40), 0.05, factors=8,
                                               iterations=2))
        produced = {s.output_instance() for s in opt.steps}
        for pin in opt.cache_pins:
            assert pin in produced


class TestCoalesce:
    def test_pagerank_loses_its_per_iteration_partitions(self):
        base, opt = plans_for(build_pagerank_program(400, 0.01, iterations=3))

        def partitions(plan):
            return sum(1 for s in plan.steps if "partition" in str(s))

        assert partitions(opt) < partitions(base)

    def test_single_iteration_is_stable(self):
        """With one iteration there is nothing loop-invariant to win on;
        the optimizer must not regress the plan."""
        base, opt = plans_for(build_pagerank_program(400, 0.01, iterations=1))
        assert opt.predicted_bytes <= base.predicted_bytes


class TestExecution:
    def test_optimized_pagerank_run_is_byte_identical_and_cheaper(self):
        rng = np.random.default_rng(7)
        nodes = 200
        link = rng.random((nodes, nodes))
        link[link > 0.02] = 0.0
        program = build_pagerank_program(nodes, 0.02, iterations=3)
        plain = DMacSession(ClusterConfig(num_workers=4)).run(
            program, {"link": link}
        )
        opt = DMacSession(ClusterConfig(num_workers=4), optimize=True).run(
            program, {"link": link}
        )
        assert set(plain.matrices) == set(opt.matrices)
        for name in plain.matrices:
            assert plain.matrices[name].tobytes() == opt.matrices[name].tobytes()
        assert opt.comm_bytes < plain.comm_bytes
        assert opt.simulated_seconds < plain.simulated_seconds
        assert opt.cache is not None and opt.cache["pins"] >= 1

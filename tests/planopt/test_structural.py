"""Structural identity: step keys, whole-plan hashes, program fingerprints."""

import dataclasses

from repro import ClusterConfig, DMacSession
from repro.planopt import cse
from repro.planopt.structural import (
    plan_structural_hash,
    program_fingerprint,
    step_structural_key,
)
from repro.programs.registry import WorkloadParams, build_workload

PARAMS = WorkloadParams(scale=5e-4, iterations=2, rows=300, features=30)


def plan_of(app, params=PARAMS, **session_kwargs):
    session = DMacSession(ClusterConfig(num_workers=4), **session_kwargs)
    return session.plan(build_workload(app, params).program)


class TestPlanHash:
    def test_format_is_16_hex_chars(self):
        digest = plan_structural_hash(plan_of("pagerank"))
        assert len(digest) == 16
        int(digest, 16)  # raises if not hex

    def test_identical_programs_hash_equal(self):
        assert plan_structural_hash(plan_of("pagerank")) == plan_structural_hash(
            plan_of("pagerank")
        )

    def test_different_programs_hash_differently(self):
        hashes = {
            plan_structural_hash(plan_of(app))
            for app in ("pagerank", "linreg", "jacobi")
        }
        assert len(hashes) == 3

    def test_iteration_count_changes_the_hash(self):
        more = dataclasses.replace(PARAMS, iterations=3)
        assert plan_structural_hash(plan_of("pagerank")) != plan_structural_hash(
            plan_of("pagerank", more)
        )

    def test_plan_method_delegates_here(self):
        plan = plan_of("linreg")
        assert plan.structural_hash() == plan_structural_hash(plan)

    def test_optimized_plan_hashes_differently_when_steps_change(self):
        # The optimizer rewrites the step list (CSE, caching pins); if it
        # changed anything structural the hash must move with it.
        def shape(plan):
            return [str(s) for s in plan.steps], sorted(map(str, plan.cache_pins))

        plain = plan_of("gnmf")
        optimized = plan_of("gnmf", optimize=True)
        if shape(plain) == shape(optimized):
            assert plan_structural_hash(plain) == plan_structural_hash(optimized)
        else:
            assert plan_structural_hash(plain) != plan_structural_hash(optimized)


class TestStepKey:
    def test_cse_alias_is_this_function(self):
        assert cse.structural_key is step_structural_key

    def test_source_steps_are_never_merged(self):
        plan = plan_of("pagerank")
        sources = [s for s in plan.steps if type(s).__name__ == "SourceStep"]
        assert sources
        assert all(step_structural_key(s) is None for s in sources)

    def test_equal_steps_share_a_key(self):
        a, b = plan_of("pagerank"), plan_of("pagerank")
        keys_a = [step_structural_key(s) for s in a.steps]
        keys_b = [step_structural_key(s) for s in b.steps]
        assert keys_a == keys_b


class TestProgramFingerprint:
    def test_fingerprint_is_knob_sensitive(self):
        program = build_workload("pagerank", PARAMS).program
        base = program_fingerprint(program, num_workers=4)
        assert base == program_fingerprint(program, num_workers=4)
        assert base != program_fingerprint(program, num_workers=8)
        assert base != program_fingerprint(
            program, num_workers=4, optimize=True
        )

    def test_fingerprint_is_cheaper_than_planning(self):
        # The whole point of the pre-planning key: a cache hit must not
        # pay for planning. Guard the orders-of-magnitude gap coarsely.
        import time

        program = build_workload("pagerank", PARAMS).program
        session = DMacSession(ClusterConfig(num_workers=4))
        session.plan(program)  # warm both paths before timing
        program_fingerprint(program, num_workers=4)
        reps = 10
        started = time.perf_counter()
        for _ in range(reps):
            session.plan(program)
        plan_cost = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(reps):
            program_fingerprint(program, num_workers=4)
        fingerprint_cost = time.perf_counter() - started
        assert fingerprint_cost * 2 < plan_cost

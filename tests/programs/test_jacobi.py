"""Tests for the Jacobi solver application."""

import numpy as np
import pytest

from repro.baselines.rlocal import run_local
from repro.config import ClusterConfig
from repro.core.plan import ExtendedStep
from repro.core.planner import DMacPlanner
from repro.errors import ProgramError
from repro.programs import build_jacobi_program, split_system
from repro.session import DMacSession


def diagonally_dominant_system(rng, n=40, density=0.2):
    a = rng.random((n, n)) * (rng.random((n, n)) < density)
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)  # strictly dominant
    b = rng.random((n, 1))
    return a, b


class TestCorrectness:
    def test_matches_numpy_reference(self, rng):
        a, b = diagonally_dominant_system(rng)
        remainder, dinv, rhs = split_system(a, b)
        density = np.count_nonzero(remainder) / remainder.size
        program = build_jacobi_program(40, density, iterations=5)
        result = DMacSession(ClusterConfig(4, 1, block_size=8)).run(
            program, {"R": remainder, "dinv": dinv, "b": rhs}
        )
        x = np.zeros((40, 1))
        for __ in range(5):
            x = dinv * (rhs - remainder @ x)
        np.testing.assert_allclose(result.matrices[program.bindings["x"]], x, atol=1e-10)

    def test_converges_to_solution(self, rng):
        a, b = diagonally_dominant_system(rng)
        remainder, dinv, rhs = split_system(a, b)
        program = build_jacobi_program(40, 0.3, iterations=120)
        result = run_local(program, {"R": remainder, "dinv": dinv, "b": rhs})
        exact = np.linalg.solve(a, b)
        np.testing.assert_allclose(
            result.matrices[program.bindings["x"]], exact, atol=1e-8
        )
        assert result.scalars["delta2"] < 1e-16

    def test_residual_decreases(self, rng):
        a, b = diagonally_dominant_system(rng)
        remainder, dinv, rhs = split_system(a, b)
        inputs = {"R": remainder, "dinv": dinv, "b": rhs}
        short = run_local(build_jacobi_program(40, 0.3, iterations=3), inputs)
        long = run_local(build_jacobi_program(40, 0.3, iterations=30), inputs)
        assert long.scalars["delta2"] < short.scalars["delta2"]

    def test_distributed_matches_local(self, rng):
        a, b = diagonally_dominant_system(rng, n=32)
        remainder, dinv, rhs = split_system(a, b)
        program = build_jacobi_program(32, 0.3, iterations=8)
        inputs = {"R": remainder, "dinv": dinv, "b": rhs}
        dist = DMacSession(ClusterConfig(4, 1, block_size=8)).run(program, inputs)
        local = run_local(program, inputs)
        np.testing.assert_allclose(
            dist.matrices[program.bindings["x"]],
            local.matrices[program.bindings["x"]],
            atol=1e-12,
        )


class TestPlanShape:
    def test_r_never_moves_after_load(self):
        program = build_jacobi_program(128, 0.1, iterations=6)
        plan = DMacPlanner(program, 4).plan()
        moves = [
            s
            for s in plan.steps
            if isinstance(s, ExtendedStep) and s.communicates and s.source.name == "R"
        ]
        assert moves == []

    def test_no_transposes_anywhere(self):
        """Jacobi's defining plan property: pure Reference dependencies."""
        program = build_jacobi_program(128, 0.1, iterations=6)
        plan = DMacPlanner(program, 4).plan()
        transposes = [
            s
            for s in plan.steps
            if isinstance(s, ExtendedStep) and s.kind == "transpose"
        ]
        assert transposes == []

    def test_dmac_beats_systemml(self, rng):
        a, b = diagonally_dominant_system(rng, n=64)
        remainder, dinv, rhs = split_system(a, b)
        density = np.count_nonzero(remainder) / remainder.size
        program = build_jacobi_program(64, density, iterations=6)
        inputs = {"R": remainder, "dinv": dinv, "b": rhs}
        dmac = DMacSession(ClusterConfig(4, 1, block_size=16)).run(program, inputs)
        systemml = DMacSession(ClusterConfig(4, 1, block_size=16)).run_systemml(
            program, inputs
        )
        assert dmac.comm_bytes < systemml.comm_bytes
        np.testing.assert_allclose(
            dmac.matrices[program.bindings["x"]],
            systemml.matrices[program.bindings["x"]],
            atol=1e-10,
        )


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ProgramError):
            build_jacobi_program(0, 0.5)
        with pytest.raises(ProgramError):
            build_jacobi_program(10, 0.5, iterations=0)

    def test_zero_diagonal_rejected(self):
        with pytest.raises(ProgramError):
            split_system(np.zeros((3, 3)), np.ones(3))

"""Tests for the five application programs: structure and numerical
correctness against hand-written numpy references."""

import numpy as np
import pytest

from repro.baselines.rlocal import run_local
from repro.config import ClusterConfig
from repro.datasets import netflix_like, sparse_random
from repro.errors import ProgramError
from repro.lang.program import MatMulOp
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_linreg_program,
    build_pagerank_program,
    build_svd_program,
    singular_values,
    tridiagonal_matrix,
)
from repro.session import DMacSession


def session():
    return DMacSession(ClusterConfig(num_workers=4, threads_per_worker=1, block_size=16))


class TestGNMF:
    def test_matches_numpy_reference(self):
        data = sparse_random(60, 40, 0.2, seed=3, ensure_coverage=True)
        program = build_gnmf_program((60, 40), 0.2, factors=5, iterations=3, seed=9)
        result = session().run(program, {"V": data})
        w = np.random.default_rng(9).random((60, 5))
        h = np.random.default_rng(10).random((5, 40))
        for __ in range(3):
            h = h * (w.T @ data) / (w.T @ w @ h)
            w = w * (data @ h.T) / (w @ h @ h.T)
        np.testing.assert_allclose(result.matrices[program.bindings["H"]], h, atol=1e-8)
        np.testing.assert_allclose(result.matrices[program.bindings["W"]], w, atol=1e-8)

    def test_reconstruction_improves(self):
        data = netflix_like(scale=1.5e-3, seed=2)
        short = build_gnmf_program(data.shape, 0.012, factors=6, iterations=1)
        long = build_gnmf_program(data.shape, 0.012, factors=6, iterations=8)
        errors = {}
        for label, program in (("short", short), ("long", long)):
            out = run_local(program, {"V": data})
            w = out.matrices[program.bindings["W"]]
            h = out.matrices[program.bindings["H"]]
            errors[label] = np.linalg.norm(data - w @ h)
        assert errors["long"] < errors["short"]

    def test_operator_count_scales_with_iterations(self):
        one = build_gnmf_program((10, 10), 0.5, factors=2, iterations=1)
        two = build_gnmf_program((10, 10), 0.5, factors=2, iterations=2)
        matmuls = lambda p: sum(isinstance(op, MatMulOp) for op in p.ops)
        assert matmuls(two) == 2 * matmuls(one)
        assert matmuls(one) == 6  # paper: 6 multiplications per iteration

    def test_rejects_bad_params(self):
        with pytest.raises(ProgramError):
            build_gnmf_program((10, 10), 0.5, factors=0)
        with pytest.raises(ProgramError):
            build_gnmf_program((10, 10), 0.5, iterations=0)


class TestPageRank:
    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(4)
        link = rng.random((40, 40))
        link[link < 0.8] = 0.0
        link /= np.maximum(link.sum(axis=1, keepdims=True), 1e-12)
        program = build_pagerank_program(40, 0.2, iterations=4, seed=7)
        result = session().run(program, {"link": link})
        rank = np.random.default_rng(7).random((1, 40))
        teleport = np.full((1, 40), 1.0 / 40)
        for __ in range(4):
            rank = (rank @ link) * 0.85 + teleport * 0.15
        np.testing.assert_allclose(
            result.matrices[program.bindings["rank"]], rank, atol=1e-9
        )

    def test_ranks_sum_near_one_on_stochastic_link(self):
        rng = np.random.default_rng(5)
        link = rng.random((30, 30)) + 0.01
        link /= link.sum(axis=1, keepdims=True)
        # The random initial rank washes out geometrically (0.85^k); after
        # enough iterations the total mass converges to the teleport fixpoint.
        program = build_pagerank_program(30, 1.0, iterations=50, seed=1)
        result = run_local(program, {"link": link})
        total = result.matrices[program.bindings["rank"]].sum()
        assert total == pytest.approx(1.0, abs=0.05)

    def test_rejects_bad_damping(self):
        with pytest.raises(ProgramError):
            build_pagerank_program(10, 0.1, damping=1.5)


class TestLinearRegression:
    def test_cg_converges_to_normal_equations(self):
        rng = np.random.default_rng(6)
        examples, features = 120, 12
        design = rng.random((examples, features))
        target = rng.random((examples, 1))
        program = build_linreg_program(
            (examples, features), 1.0, iterations=features + 5, ridge=1e-6
        )
        result = run_local(program, {"V": design, "y": target})
        w = result.matrices[program.bindings["w"]]
        exact = np.linalg.solve(
            design.T @ design + 1e-6 * np.eye(features), design.T @ target
        )
        np.testing.assert_allclose(w, exact, atol=1e-4)

    def test_residual_decreases(self):
        rng = np.random.default_rng(7)
        design, target = rng.random((80, 10)), rng.random((80, 1))
        short = build_linreg_program((80, 10), 1.0, iterations=1)
        long = build_linreg_program((80, 10), 1.0, iterations=10)
        inputs = {"V": design, "y": target}
        r_short = run_local(short, inputs).scalars["norm_r2@2"]
        r_long = run_local(long, inputs).scalars[long.scalar_outputs[0]]
        assert r_long < r_short

    def test_distributed_matches_local(self):
        rng = np.random.default_rng(8)
        design = sparse_random(100, 16, 0.3, seed=8)
        target = rng.random((100, 1))
        program = build_linreg_program((100, 16), 0.3, iterations=5)
        inputs = {"V": design, "y": target}
        dist = session().run(program, inputs)
        local = run_local(program, inputs)
        np.testing.assert_allclose(
            dist.matrices[program.bindings["w"]],
            local.matrices[program.bindings["w"]],
            atol=1e-7,
        )


class TestCollaborativeFiltering:
    def test_matches_numpy_reference(self):
        ratings = netflix_like(scale=1e-3, seed=9).T
        density = np.count_nonzero(ratings) / ratings.size
        program = build_cf_program(ratings.shape, density)
        result = session().run(program, {"R": ratings})
        expected = ratings @ ratings.T @ ratings
        expected = expected / np.sqrt((expected * expected).sum())
        np.testing.assert_allclose(
            result.matrices[program.bindings["predict"]], expected, atol=1e-8
        )

    def test_two_multiplications(self):
        program = build_cf_program((10, 20), 0.1)
        assert sum(isinstance(op, MatMulOp) for op in program.ops) == 2


class TestSVD:
    def test_recovers_dominant_singular_value(self):
        rng = np.random.default_rng(10)
        data = rng.random((80, 30))
        program, names = build_svd_program((80, 30), 1.0, rank=8, seed=3)
        result = run_local(program, {"V": data})
        estimated = singular_values(result.scalars, names)
        true = np.linalg.svd(data, compute_uv=False)
        assert estimated[0] == pytest.approx(true[0], rel=1e-3)

    def test_tridiagonal_is_symmetric(self):
        rng = np.random.default_rng(11)
        data = rng.random((40, 20))
        program, names = build_svd_program((40, 20), 1.0, rank=5)
        result = run_local(program, {"V": data})
        tri = tridiagonal_matrix(result.scalars, names)
        np.testing.assert_array_equal(tri, tri.T)
        # only the tridiagonal band is populated
        assert np.count_nonzero(np.triu(tri, 2)) == 0

    def test_distributed_matches_local(self):
        data = sparse_random(60, 24, 0.3, seed=12)
        program, names = build_svd_program((60, 24), 0.3, rank=4)
        dist = session().run(program, {"V": data})
        local = run_local(program, {"V": data})
        for alpha in names.alphas:
            assert dist.scalars[alpha] == pytest.approx(local.scalars[alpha], rel=1e-8)

    def test_rejects_bad_rank(self):
        with pytest.raises(ProgramError):
            build_svd_program((10, 10), 0.5, rank=0)


class TestPageRankNormalize:
    def test_in_program_normalisation_matches_external(self):
        rng = np.random.default_rng(21)
        adjacency = (rng.random((30, 30)) > 0.7).astype(float)
        adjacency[adjacency.sum(axis=1) == 0, 0] = 1.0  # no dangling rows
        density = np.count_nonzero(adjacency) / adjacency.size

        internal = build_pagerank_program(30, density, iterations=4, normalize=True)
        external = build_pagerank_program(30, density, iterations=4)
        link = adjacency / adjacency.sum(axis=1, keepdims=True)

        got = run_local(internal, {"link": adjacency})
        want = run_local(external, {"link": link})
        np.testing.assert_allclose(
            got.matrices[internal.bindings["rank"]],
            want.matrices[external.bindings["rank"]],
            atol=1e-10,
        )

    def test_distributed_normalised_run(self):
        rng = np.random.default_rng(22)
        adjacency = (rng.random((24, 24)) > 0.6).astype(float)
        adjacency[adjacency.sum(axis=1) == 0, 0] = 1.0
        density = np.count_nonzero(adjacency) / adjacency.size
        program = build_pagerank_program(24, density, iterations=3, normalize=True)
        result = session().run(program, {"link": adjacency})
        reference = run_local(program, {"link": adjacency})
        np.testing.assert_allclose(
            result.matrices[program.bindings["rank"]],
            reference.matrices[program.bindings["rank"]],
            atol=1e-9,
        )

    def test_normalisation_is_startup_only(self):
        """The normalisation must not add per-iteration communication."""
        from repro.core.planner import DMacPlanner

        builder = lambda n: build_pagerank_program(64, 0.1, iterations=n, normalize=True)
        p2 = DMacPlanner(builder(2), 4).plan().predicted_bytes
        p3 = DMacPlanner(builder(3), 4).plan().predicted_bytes
        plain = lambda n: build_pagerank_program(64, 0.1, iterations=n)
        q2 = DMacPlanner(plain(2), 4).plan().predicted_bytes
        q3 = DMacPlanner(plain(3), 4).plan().predicted_bytes
        assert (p3 - p2) == (q3 - q2)  # same per-iteration delta

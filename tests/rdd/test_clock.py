"""Tests for the simulated clock."""

import pytest

from repro.config import ClockConfig
from repro.rdd.clock import SimulatedClock, TimeBreakdown


def clock() -> SimulatedClock:
    return SimulatedClock(
        ClockConfig(
            network_bytes_per_sec=100.0,
            dense_flops_per_sec=1000.0,
            sparse_flops_per_sec=100.0,
            latency_per_stage_sec=0.5,
        )
    )


class TestNetwork:
    def test_bytes_to_seconds(self):
        c = clock()
        c.advance_network(200)
        assert c.elapsed.network_seconds == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            clock().advance_network(-1)


class TestCompute:
    def test_slowest_worker_dominates(self):
        c = clock()
        c.advance_compute({0: 1000, 1: 4000}, {}, threads_per_worker=1)
        assert c.elapsed.compute_seconds == pytest.approx(4.0)

    def test_threads_divide_time(self):
        c = clock()
        c.advance_compute({0: 4000}, {}, threads_per_worker=4)
        assert c.elapsed.compute_seconds == pytest.approx(1.0)

    def test_sparse_flops_slower(self):
        c = clock()
        c.advance_compute({}, {0: 1000}, threads_per_worker=1)
        assert c.elapsed.compute_seconds == pytest.approx(10.0)

    def test_mixed_flops_add(self):
        c = clock()
        c.advance_compute({0: 1000}, {0: 100}, threads_per_worker=1)
        assert c.elapsed.compute_seconds == pytest.approx(2.0)

    def test_empty_phase_is_free(self):
        c = clock()
        c.advance_compute({}, {}, threads_per_worker=1)
        assert c.elapsed_seconds == 0.0


class TestOverheadAndBreakdown:
    def test_stage_overhead(self):
        c = clock()
        c.advance_stage_overhead(3)
        assert c.elapsed.overhead_seconds == pytest.approx(1.5)

    def test_total_is_sum(self):
        c = clock()
        c.advance_network(100)
        c.advance_compute({0: 1000}, {}, 1)
        c.advance_stage_overhead(2)
        assert c.elapsed_seconds == pytest.approx(1.0 + 1.0 + 1.0)

    def test_communication_share(self):
        breakdown = TimeBreakdown(network_seconds=44, compute_seconds=56)
        assert breakdown.communication_share == pytest.approx(0.44)

    def test_communication_share_empty(self):
        assert TimeBreakdown().communication_share == 0.0

    def test_reset(self):
        c = clock()
        c.advance_network(100)
        c.reset()
        assert c.elapsed_seconds == 0.0

    def test_elapsed_is_a_copy(self):
        c = clock()
        snap = c.elapsed
        c.advance_network(100)
        assert snap.network_seconds == 0.0


class TestHeterogeneousWorkers:
    def test_straggler_dominates_stage_time(self):
        from repro.config import ClockConfig
        from repro.rdd.clock import SimulatedClock

        uniform = SimulatedClock(ClockConfig(dense_flops_per_sec=1000.0))
        uniform.advance_compute({0: 1000, 1: 1000}, {}, threads_per_worker=1)

        straggler = SimulatedClock(
            ClockConfig(dense_flops_per_sec=1000.0, worker_speed_factors=(1.0, 0.25))
        )
        straggler.advance_compute({0: 1000, 1: 1000}, {}, threads_per_worker=1)
        assert straggler.elapsed.compute_seconds == pytest.approx(
            4 * uniform.elapsed.compute_seconds
        )

    def test_workers_beyond_tuple_run_nominal(self):
        from repro.config import ClockConfig

        config = ClockConfig(worker_speed_factors=(0.5,))
        assert config.worker_speed(0) == 0.5
        assert config.worker_speed(7) == 1.0

    def test_nonpositive_speed_rejected(self):
        from repro.config import ClockConfig

        config = ClockConfig(worker_speed_factors=(0.0,))
        with pytest.raises(ValueError):
            config.worker_speed(0)

    def test_end_to_end_straggler_slows_simulated_run(self):
        import numpy as np

        from repro.config import ClockConfig, ClusterConfig
        from repro.lang.program import ProgramBuilder
        from repro.session import DMacSession

        pb = ProgramBuilder()
        a = pb.load("A", (64, 64))
        pb.output(pb.assign("B", a @ a))
        program = pb.build()
        array = np.random.default_rng(0).random((64, 64))

        def run(speeds):
            config = ClusterConfig(
                num_workers=4,
                threads_per_worker=1,
                block_size=16,
                clock=ClockConfig(worker_speed_factors=speeds),
            )
            return DMacSession(config).run(program, {"A": array})

        fast = run(None)
        slow = run((1.0, 1.0, 1.0, 0.1))
        assert slow.time.compute_seconds > fast.time.compute_seconds
        np.testing.assert_allclose(slow.matrices["B"], fast.matrices["B"])

"""Tests for ClusterContext, partitioners and the sizeof model."""

import numpy as np
import pytest

from repro.blocks.dense import DenseBlock
from repro.blocks.sparse import CSCBlock
from repro.config import ClusterConfig
from repro.errors import ClusterError, SchemeError
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import ColumnPartitioner, HashPartitioner, RowPartitioner
from repro.rdd.sizeof import model_sizeof


class TestPartitioners:
    def test_row_partitioner(self):
        p = RowPartitioner(4)
        assert p.partition_for((5, 3)) == 1
        assert p.partition_for((8, 0)) == 0

    def test_column_partitioner(self):
        p = ColumnPartitioner(4)
        assert p.partition_for((5, 3)) == 3

    def test_hash_partitioner_in_range(self):
        p = HashPartitioner(4)
        assert all(0 <= p.partition_for((i, j)) < 4 for i in range(8) for j in range(8))

    def test_equality_by_type_and_count(self):
        assert RowPartitioner(4) == RowPartitioner(4)
        assert RowPartitioner(4) != RowPartitioner(8)
        assert RowPartitioner(4) != ColumnPartitioner(4)

    def test_hashable(self):
        assert len({RowPartitioner(4), RowPartitioner(4), ColumnPartitioner(4)}) == 2

    def test_rejects_zero_partitions(self):
        with pytest.raises(SchemeError):
            RowPartitioner(0)


class TestContext:
    def test_worker_for_partition_wraps(self):
        ctx = ClusterContext(ClusterConfig(num_workers=4))
        assert ctx.worker_for_partition(0) == 0
        assert ctx.worker_for_partition(5) == 1

    def test_worker_for_partition_rejects_negative(self):
        ctx = ClusterContext(ClusterConfig(num_workers=4))
        with pytest.raises(ClusterError):
            ctx.worker_for_partition(-1)

    def test_one_engine_per_worker(self):
        ctx = ClusterContext(ClusterConfig(num_workers=3, threads_per_worker=5))
        assert len(ctx.engines) == 3
        assert all(e.threads == 5 for e in ctx.engines)

    def test_broadcast_charges_k_minus_1(self):
        ctx = ClusterContext(ClusterConfig(num_workers=4))
        ctx.broadcast(object(), nbytes=100)
        assert ctx.ledger.total_bytes == 300
        assert ctx.ledger.bytes_by_kind() == {"broadcast": 300}

    def test_broadcast_single_worker_free(self):
        ctx = ClusterContext(ClusterConfig(num_workers=1))
        ctx.broadcast(object(), nbytes=100)
        assert ctx.ledger.total_bytes == 0

    def test_transfer_advances_clock(self):
        ctx = ClusterContext(ClusterConfig(num_workers=4))
        ctx.transfer("shuffle", 125_000_000)
        assert ctx.clock.elapsed.network_seconds == pytest.approx(1.0)

    def test_charge_compute_since(self):
        ctx = ClusterContext(ClusterConfig(num_workers=2, threads_per_worker=1))
        snapshot = ctx.flops_snapshot()
        ctx.engines[0].stats.record(int(2e9), sparse=False)
        ctx.charge_compute_since(snapshot)
        assert ctx.clock.elapsed.compute_seconds == pytest.approx(1.0)

    def test_reset_metrics(self):
        ctx = ClusterContext(ClusterConfig(num_workers=4))
        ctx.transfer("shuffle", 100)
        ctx.reset_metrics()
        assert ctx.ledger.total_bytes == 0
        assert ctx.clock.elapsed_seconds == 0.0

    def test_config_validation(self):
        with pytest.raises(ClusterError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ClusterError):
            ClusterConfig(threads_per_worker=0)
        with pytest.raises(ClusterError):
            ClusterConfig(block_size=0)


class TestSizeof:
    def test_blocks_use_model_bytes(self):
        dense = DenseBlock.zeros(10, 10)
        assert model_sizeof(dense) == dense.model_nbytes
        sparse = CSCBlock.empty(10, 10)
        assert model_sizeof(sparse) == sparse.model_nbytes

    def test_ndarray(self):
        assert model_sizeof(np.zeros((5, 4))) == 4 * 20

    def test_scalars(self):
        assert model_sizeof(3.5) == 8
        assert model_sizeof(7) == 8

    def test_containers_sum(self):
        assert model_sizeof([1.0, 2.0]) == 16
        assert model_sizeof({(0, 0): 1.0}) == 24  # key tuple (8+8) + value 8

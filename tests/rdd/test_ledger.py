"""Tests for the communication ledger."""

import pytest

from repro.rdd.ledger import CommunicationLedger


class TestRecording:
    def test_total_accumulates(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 100)
        ledger.record("broadcast", 50)
        assert ledger.total_bytes == 150

    def test_zero_byte_transfers_not_recorded(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 0)
        assert ledger.records() == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLedger().record("teleport", 10)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLedger().record("shuffle", -1)

    def test_bytes_by_kind(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 10)
        ledger.record("shuffle", 20)
        ledger.record("broadcast", 5)
        assert ledger.bytes_by_kind() == {"shuffle": 30, "broadcast": 5}


class TestScoping:
    def test_scope_tags_records(self):
        ledger = CommunicationLedger()
        with ledger.scope("stage-1"):
            ledger.record("shuffle", 10)
        ledger.record("shuffle", 5)
        assert ledger.bytes_by_scope() == {"stage-1": 10, "": 5}

    def test_nested_scopes_join(self):
        ledger = CommunicationLedger()
        with ledger.scope("stage-2"):
            with ledger.scope("partition(W)"):
                ledger.record("shuffle", 7)
        assert ledger.bytes_by_scope() == {"stage-2/partition(W)": 7}

    def test_scope_restored_after_exception(self):
        ledger = CommunicationLedger()
        with pytest.raises(RuntimeError):
            with ledger.scope("oops"):
                raise RuntimeError
        assert ledger.current_scope() == ""


class TestSnapshots:
    def test_snapshot_delta(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 10)
        mark = ledger.snapshot()
        ledger.record("shuffle", 25)
        assert ledger.snapshot() - mark == 25

    def test_reset(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 10)
        ledger.reset()
        assert ledger.total_bytes == 0

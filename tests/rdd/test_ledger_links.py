"""Per-link (worker-pair) attribution in the communication ledger."""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.programs import build_pagerank_program
from repro.rdd.context import ClusterContext
from repro.rdd.ledger import CommunicationLedger


class TestLedgerLinks:
    def test_record_carries_link(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 10, link=(0, 1))
        ledger.record("shuffle", 5, link=(0, 1))
        ledger.record("shuffle", 7, link=(2, 3))
        ledger.record("broadcast", 99)  # aggregate record, no link
        assert ledger.bytes_by_link() == {(0, 1): 15, (2, 3): 7}
        assert ledger.total_bytes == 121

    def test_transfer_with_links_splits_records(self):
        context = ClusterContext(ClusterConfig(num_workers=4))
        context.transfer("shuffle", 30, links={(1, 0): 10, (2, 0): 20})
        assert context.ledger.bytes_by_link() == {(1, 0): 10, (2, 0): 20}
        assert context.ledger.bytes_by_kind() == {"shuffle": 30}

    def test_transfer_links_charge_clock_once(self):
        """Splitting a transfer into per-link records must not change the
        simulated network time (the clock sees the total, once)."""
        config = ClusterConfig(num_workers=4)
        split = ClusterContext(config)
        split.transfer("shuffle", 3000, links={(1, 0): 1000, (2, 0): 2000})
        whole = ClusterContext(config)
        whole.transfer("shuffle", 3000)
        assert (
            split.clock.elapsed.network_seconds
            == whole.clock.elapsed.network_seconds
        )

    def test_shuffle_attributes_every_moved_byte_to_a_link(self):
        """A real run's shuffled bytes decompose exactly over worker links."""
        rng = np.random.default_rng(3)
        nodes = 120
        link = rng.random((nodes, nodes))
        link[link > 0.05] = 0.0
        program = build_pagerank_program(nodes, 0.05, iterations=2)
        session = DMacSession(ClusterConfig(num_workers=4))
        session.run(program, {"link": link})
        ledger = session.context.ledger
        by_link = ledger.bytes_by_link()
        assert by_link, "pagerank shuffles cross-worker traffic"
        assert sum(by_link.values()) == ledger.bytes_by_kind().get("shuffle", 0)
        for (src, dst), nbytes in by_link.items():
            assert src != dst  # same-worker records are free, never ledgered
            assert 0 <= src < 4 and 0 <= dst < 4
            assert nbytes > 0

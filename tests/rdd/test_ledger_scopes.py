"""Regression tests for the ledger's contextvars scope stack.

The scope stack used to be ``threading.local``: an engine pool thread
(``threads_per_worker > 1``) saw an *empty* stack and recorded its
shuffle traffic unscoped, so per-stage byte breakdowns silently leaked
bytes into the ``""`` scope.  The stack is now a ``contextvars`` variable
and :meth:`repro.localexec.engine.LocalEngine._run` runs every pool task
under a copy of the submitting stage's context."""

import concurrent.futures
import contextvars

from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like
from repro.programs import build_gnmf_program
from repro.rdd.ledger import CommunicationLedger


def _gnmf_run(threads):
    data = netflix_like(scale=1e-3, seed=3)
    program = build_gnmf_program(data.shape, 0.02, factors=4, iterations=2)
    session = DMacSession(
        ClusterConfig(num_workers=4, threads_per_worker=threads, block_size=8)
    )
    session.run(program, {"V": data})
    return session.context.ledger


class TestPoolThreadScopes:
    def test_no_unscoped_records_with_pool_threads(self):
        """The headline regression: with L>1 every transfer still lands
        under its stage's scope -- zero records with an empty scope."""
        ledger = _gnmf_run(threads=4)
        unscoped = [r for r in ledger.records() if not r.scope]
        assert unscoped == []
        assert all(r.scope.startswith("stage-") for r in ledger.records())

    def test_pool_and_serial_runs_scope_identically(self):
        """Mis-scoping would shift bytes between scopes; the per-scope
        breakdown must not depend on engine-pool parallelism."""
        assert _gnmf_run(threads=1).bytes_by_scope() == _gnmf_run(
            threads=4
        ).bytes_by_scope()

    def test_scope_survives_an_explicit_context_copy(self):
        """The exact mechanism the engine relies on, in miniature."""
        ledger = CommunicationLedger()

        def work():
            ledger.record("shuffle", 5, link=(0, 1))
            return ledger.current_scope()

        with ledger.scope("stage-9"), ledger.scope("task"):
            context = contextvars.copy_context()
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            seen = pool.submit(context.run, work).result()
        assert seen == "stage-9/task"
        assert ledger.records()[-1].scope == "stage-9/task"

    def test_plain_thread_records_unscoped(self):
        """Without a copied context a foreign thread has no scope (the
        stack is per-context, not global)."""
        ledger = CommunicationLedger()
        with ledger.scope("stage-1"):
            with concurrent.futures.ThreadPoolExecutor(1) as pool:
                pool.submit(ledger.record, "shuffle", 3, (0, 1)).result()
        assert ledger.records()[-1].scope == ""

    def test_scopes_are_independent_per_ledger(self):
        first, second = CommunicationLedger(), CommunicationLedger()
        with first.scope("a"):
            assert first.current_scope() == "a"
            assert second.current_scope() == ""


class TestUnattributedBucket:
    def test_by_link_sums_to_total_with_unattributed(self):
        """bytes_by_link() used to silently drop link-less (broadcast)
        records; the explicit bucket closes the books."""
        ledger = _gnmf_run(threads=2)
        by_link = ledger.bytes_by_link(include_unattributed=True)
        assert sum(by_link.values()) == ledger.total_bytes
        assert by_link.get(None, 0) == ledger.unattributed_bytes
        assert ledger.unattributed_bytes == ledger.bytes_by_kind().get(
            "broadcast", 0
        )

    def test_default_excludes_the_none_bucket(self):
        ledger = CommunicationLedger()
        ledger.record("broadcast", 7)
        ledger.record("shuffle", 3, link=(1, 0))
        assert ledger.bytes_by_link() == {(1, 0): 3}
        assert ledger.bytes_by_link(include_unattributed=True) == {
            (1, 0): 3,
            None: 7,
        }
        assert ledger.unattributed_bytes == 7

    def test_unattributed_is_zero_without_broadcasts(self):
        ledger = CommunicationLedger()
        ledger.record("shuffle", 4, link=(0, 1))
        assert ledger.unattributed_bytes == 0
        assert ledger.bytes_by_link(include_unattributed=True) == {(0, 1): 4}

"""Property-based tests for the RDD substrate (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import ColumnPartitioner, HashPartitioner, RowPartitioner
from repro.rdd.sizeof import RECORD_OVERHEAD_BYTES, model_sizeof


@st.composite
def keyed_items(draw):
    n = draw(st.integers(0, 40))
    return [
        (
            (draw(st.integers(0, 9)), draw(st.integers(0, 9))),
            float(draw(st.integers(-100, 100))),
        )
        for __ in range(n)
    ]


partitioners = st.sampled_from(
    [RowPartitioner, ColumnPartitioner, HashPartitioner]
)


@given(keyed_items(), partitioners, st.integers(1, 6))
def test_shuffle_conserves_records(items, partitioner_cls, workers):
    ctx = ClusterContext(ClusterConfig(num_workers=workers))
    rdd = ctx.parallelize(items, HashPartitioner(workers))
    result = rdd.partition_by(partitioner_cls(workers))
    assert sorted(result.collect()) == sorted(items)


@given(keyed_items(), partitioners, st.integers(1, 6))
def test_shuffle_places_by_partitioner(items, partitioner_cls, workers):
    ctx = ClusterContext(ClusterConfig(num_workers=workers))
    partitioner = partitioner_cls(workers)
    rdd = ctx.parallelize(items, HashPartitioner(workers)).partition_by(partitioner)
    for index in range(workers):
        for key, __ in rdd.partition(index):
            assert partitioner.partition_for(key) == index


@given(keyed_items(), st.integers(1, 6))
def test_metered_bytes_bounded_by_payload(items, workers):
    """A shuffle can never move more than the whole dataset plus framing."""
    ctx = ClusterContext(ClusterConfig(num_workers=workers))
    rdd = ctx.parallelize(items, RowPartitioner(workers))
    total_payload = sum(
        model_sizeof(value) + RECORD_OVERHEAD_BYTES for __, value in items
    )
    before = ctx.ledger.snapshot()
    rdd.partition_by(ColumnPartitioner(workers))
    moved = ctx.ledger.snapshot() - before
    assert 0 <= moved <= total_payload


@given(keyed_items(), st.integers(1, 6))
def test_repeated_shuffle_to_same_partitioner_is_idempotent(items, workers):
    ctx = ClusterContext(ClusterConfig(num_workers=workers))
    rdd = ctx.parallelize(items, HashPartitioner(workers))
    once = rdd.partition_by(RowPartitioner(workers))
    before = ctx.ledger.snapshot()
    twice = once.partition_by(RowPartitioner(workers))
    assert twice is once
    assert ctx.ledger.snapshot() == before


@given(keyed_items(), st.integers(2, 6))
def test_single_worker_shuffles_are_free(items, workers):
    solo = ClusterContext(ClusterConfig(num_workers=1))
    rdd = solo.parallelize(items, RowPartitioner(1))
    rdd.partition_by(ColumnPartitioner(1)).partition_by(HashPartitioner(1))
    assert solo.ledger.total_bytes == 0


@given(keyed_items(), st.integers(1, 6))
def test_reduce_by_key_totals_preserved(items, workers):
    ctx = ClusterContext(ClusterConfig(num_workers=workers))
    rdd = ctx.parallelize(items, HashPartitioner(workers))
    combined = rdd.reduce_by_key(lambda a, b: a + b, RowPartitioner(workers))
    assert sum(combined.values()) == sum(value for __, value in items)
    assert len(combined.keys()) == len({key for key, __ in items})


@given(keyed_items(), st.integers(1, 6), st.booleans())
def test_map_side_combine_does_not_change_results(items, workers, combine):
    ctx = ClusterContext(ClusterConfig(num_workers=workers))
    rdd = ctx.parallelize(items, HashPartitioner(workers))
    result = rdd.reduce_by_key(
        lambda a, b: a + b, RowPartitioner(workers), map_side_combine=combine
    )
    baseline: dict = {}
    for key, value in items:
        baseline[key] = baseline.get(key, 0.0) + value
    assert result.collect_map() == pytest_approx_map(baseline)


def pytest_approx_map(mapping):
    import pytest

    return {key: pytest.approx(value) for key, value in mapping.items()}

"""Tests for the RDD substrate: transformations, shuffle metering,
partitioner preservation, placement invariants."""

import pytest

from repro.config import ClusterConfig
from repro.errors import ClusterError
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import ColumnPartitioner, HashPartitioner, RowPartitioner
from repro.rdd.rdd import RDD


@pytest.fixture
def ctx():
    return ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))


def block_items(n=6):
    return [((i, j), float(i * 10 + j)) for i in range(n) for j in range(n)]


class TestConstruction:
    def test_parallelize_places_by_partitioner(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        for p in range(4):
            for (i, __), __v in rdd.partition(p):
                assert i % 4 == p

    def test_parallelize_is_free(self, ctx):
        ctx.parallelize(block_items(), RowPartitioner(4))
        assert ctx.ledger.total_bytes == 0

    def test_partitioner_count_mismatch_rejected(self, ctx):
        with pytest.raises(ClusterError):
            RDD(ctx, [[], []], RowPartitioner(4))


class TestNarrowTransformations:
    def test_map_values_preserves_partitioner(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        mapped = rdd.map_values(lambda v: v * 2)
        assert mapped.partitioner == RowPartitioner(4)
        assert sorted(mapped.values()) == sorted(v * 2 for v in rdd.values())

    def test_map_drops_partitioner_by_default(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        assert rdd.map(lambda kv: kv).partitioner is None

    def test_map_can_keep_partitioner(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        assert rdd.map(lambda kv: kv, preserves_partitioning=True).partitioner == RowPartitioner(4)

    def test_filter_preserves_partitioner(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        kept = rdd.filter(lambda kv: kv[1] > 30)
        assert kept.partitioner == RowPartitioner(4)
        assert all(v > 30 for v in kept.values())

    def test_flat_map(self, ctx):
        rdd = ctx.parallelize(block_items(2), RowPartitioner(4))
        doubled = rdd.flat_map(lambda kv: [kv, kv])
        assert doubled.count() == 2 * rdd.count()

    def test_narrow_ops_are_free(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        rdd.map_values(lambda v: v).filter(lambda kv: True).map(lambda kv: kv)
        assert ctx.ledger.total_bytes == 0

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        tagged = rdd.map_partitions_with_index(
            lambda idx, items: [(k, idx) for k, __ in items]
        )
        for p in range(4):
            assert all(v == p for __, v in tagged.partition(p))

    def test_cache_is_identity(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        assert rdd.cache() is rdd


class TestPartitionBy:
    def test_same_partitioner_is_noop(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        assert rdd.partition_by(RowPartitioner(4)) is rdd
        assert ctx.ledger.total_bytes == 0

    def test_row_to_column_meters_bytes(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        rdd.partition_by(ColumnPartitioner(4))
        assert ctx.ledger.total_bytes > 0

    def test_row_to_column_placement(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        cols = rdd.partition_by(ColumnPartitioner(4))
        for p in range(4):
            for (__, j), __v in cols.partition(p):
                assert j % 4 == p

    def test_data_preserved_through_shuffle(self, ctx):
        rdd = ctx.parallelize(block_items(), RowPartitioner(4))
        assert sorted(rdd.partition_by(HashPartitioner(4)).collect()) == sorted(
            rdd.collect()
        )

    def test_local_moves_are_free(self, ctx):
        # Single worker: everything is local, shuffle moves zero bytes.
        solo = ClusterContext(ClusterConfig(num_workers=1))
        rdd = solo.parallelize(block_items(), RowPartitioner(1))
        rdd.partition_by(ColumnPartitioner(1))
        assert solo.ledger.total_bytes == 0


class TestReduceByKey:
    def test_combines_values(self, ctx):
        items = [(("a",), 1.0), (("a",), 2.0), (("b",), 5.0)]
        rdd = ctx.parallelize(items, HashPartitioner(4))
        combined = rdd.reduce_by_key(lambda a, b: a + b).collect_map()
        assert combined == {("a",): 3.0, ("b",): 5.0}

    def test_map_side_combine_reduces_traffic(self, ctx):
        # Many duplicate keys in each source partition.
        items = [((i % 2, 0), 1.0) for i in range(64)]
        rdd = ctx.parallelize(items, HashPartitioner(4))
        mark = ctx.ledger.snapshot()
        rdd.reduce_by_key(lambda a, b: a + b, RowPartitioner(4), map_side_combine=True)
        with_combine = ctx.ledger.snapshot() - mark
        mark = ctx.ledger.snapshot()
        rdd.reduce_by_key(lambda a, b: a + b, RowPartitioner(4), map_side_combine=False)
        without_combine = ctx.ledger.snapshot() - mark
        assert with_combine < without_combine

    def test_result_partitioner_attached(self, ctx):
        rdd = ctx.parallelize(block_items(), HashPartitioner(4))
        out = rdd.reduce_by_key(lambda a, b: a + b, RowPartitioner(4))
        assert out.partitioner == RowPartitioner(4)


class TestGroupJoinActions:
    def test_group_by_key(self, ctx):
        items = [(("k",), 1.0), (("k",), 2.0)]
        rdd = ctx.parallelize(items, HashPartitioner(4))
        grouped = rdd.group_by_key().collect_map()
        assert sorted(grouped[("k",)]) == [1.0, 2.0]

    def test_join_inner(self, ctx):
        left = ctx.parallelize([((0, 0), 1.0), ((1, 1), 2.0)], RowPartitioner(4))
        right = ctx.parallelize([((0, 0), 10.0), ((2, 2), 30.0)], RowPartitioner(4))
        joined = left.join(right).collect_map()
        assert joined == {(0, 0): (1.0, 10.0)}

    def test_join_copartitioned_is_free(self, ctx):
        left = ctx.parallelize(block_items(), RowPartitioner(4))
        right = ctx.parallelize(block_items(), RowPartitioner(4))
        mark = ctx.ledger.snapshot()
        left.join(right)
        assert ctx.ledger.snapshot() == mark

    def test_collect_map_rejects_duplicates(self, ctx):
        rdd = ctx.parallelize([(("k",), 1.0), (("k",), 2.0)], HashPartitioner(4))
        with pytest.raises(ClusterError):
            rdd.collect_map()

    def test_count_keys_values(self, ctx):
        rdd = ctx.parallelize(block_items(2), RowPartitioner(4))
        assert rdd.count() == 4
        assert len(rdd.keys()) == 4
        assert len(rdd.values()) == 4

    def test_worker_partitions_unions_hosted(self, ctx):
        # 8 partitions on 4 workers: worker 0 hosts partitions 0 and 4.
        rdd = RDD(ctx, [[((p, 0), float(p))] for p in range(8)], None)
        values = [v for __, v in rdd.worker_partitions(0)]
        assert sorted(values) == [0.0, 4.0]

"""Tests for the repro.runtime package."""

"""The memory-metered block cache: pinning, eviction, lineage refill."""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.faults import ChaosEngine, parse_fault_spec
from repro.programs import build_pagerank_program


def pagerank_inputs(nodes=200, sparsity=0.02, seed=7):
    rng = np.random.default_rng(seed)
    link = rng.random((nodes, nodes))
    link[link > sparsity] = 0.0
    return link


def run(optimize=False, cache_limit=None, chaos=None, iterations=3, serial=False):
    program = build_pagerank_program(200, 0.02, iterations=iterations)
    session = DMacSession(
        ClusterConfig(
            num_workers=4,
            cache_limit_bytes=cache_limit,
            max_concurrent_stages=1 if serial else None,
        ),
        optimize=optimize,
    )
    return session.run(program, {"link": pagerank_inputs()}, chaos=chaos)


class TestPinning:
    def test_unoptimized_runs_have_no_cache(self):
        assert run(optimize=False).cache is None

    def test_pins_are_hosted_and_metered(self):
        plain = run(optimize=False)
        opt = run(optimize=True)
        stats = opt.cache
        assert stats is not None
        assert stats["pins"] >= 1
        assert stats["hosted"] == stats["pins"]  # unbounded budget hosts all
        assert stats["pinned_bytes"] > 0
        assert stats["peak_pinned_bytes"] >= stats["pinned_bytes"]
        # Pinned residency is charged to the per-worker trackers: holding
        # instances across iterations must show up in the memory peak.
        assert opt.peak_memory_bytes > plain.peak_memory_bytes

    def test_results_identical_with_and_without_cache(self):
        plain = run(optimize=False)
        opt = run(optimize=True)
        for name in plain.matrices:
            assert plain.matrices[name].tobytes() == opt.matrices[name].tobytes()


class TestEviction:
    def test_tight_budget_spills_and_refills_transparently(self):
        # Serial stages make the publish order (and so the LRU eviction
        # sequence) deterministic; the budget is sized to host the first
        # pin alone but not both, forcing real spill/refill traffic.
        # (Under concurrent stages the publish order races, and a budget
        # too small for either pin admits nothing and never spills.)
        unbounded = run(optimize=True)
        squeezed = run(optimize=True, cache_limit=3800, serial=True)
        stats = squeezed.cache
        assert stats["budget_bytes"] == 3800
        assert stats["hosted"] < stats["pins"]  # something could not fit
        # A spilled pin read back later is recomputed from lineage.
        assert stats["spilled"] >= 1 and stats["refilled"] >= 1
        for name in unbounded.matrices:
            assert (
                unbounded.matrices[name].tobytes()
                == squeezed.matrices[name].tobytes()
            )

    def test_eviction_never_raises_peak_above_unbounded(self):
        unbounded = run(optimize=True)
        squeezed = run(optimize=True, cache_limit=1024)
        assert squeezed.peak_memory_bytes <= unbounded.peak_memory_bytes


class TestFaultLoss:
    def test_lost_pinned_instance_recovers_via_lineage(self):
        """A chaos fault destroying a pinned instance must be repaired by
        the same lineage recomputation as any other lost block."""
        clean = run(optimize=True)
        engine = ChaosEngine(11, parse_fault_spec("lostblock:instance=link"))
        faulted = run(optimize=True, chaos=engine)
        assert faulted.recovery is not None
        assert faulted.recovery["blocks_recovered"] >= 1
        for name in clean.matrices:
            assert np.allclose(
                clean.matrices[name], faulted.matrices[name], atol=1e-9
            )

"""Equivalence: the concurrent stage runtime moves time, never bytes.

For every example program, a serial (``max_concurrent_stages=1``) and a
concurrent run must produce identical per-scope ledgered bytes, identical
chosen strategies (the plan is the plan), identical numerical results and
identical simulated seconds (the clock charges the dependency-bound
schedule, not the host's dispatch order)."""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.core.plan import MatMulStep
from repro.datasets import graph_like, netflix_like, row_normalize, sparse_random
from repro.programs import (
    build_gnmf_program,
    build_linreg_program,
    build_pagerank_program,
)


def _workloads():
    gnmf_data = netflix_like(scale=1e-3, seed=3)
    gnmf = build_gnmf_program(
        gnmf_data.shape, 0.02, factors=4, iterations=2
    )
    link = row_normalize(graph_like("soc-pokec", scale=1e-3, seed=4))
    pagerank = build_pagerank_program(link.shape[0], 0.05, iterations=2)
    design = sparse_random(120, 12, 0.1, seed=5)
    target = sparse_random(120, 1, 1.0, seed=6)
    linreg = build_linreg_program(design.shape, 0.1, iterations=2)
    return [
        ("gnmf", gnmf, {"V": gnmf_data}),
        ("pagerank", pagerank, {"link": link}),
        ("linreg", linreg, {"V": design, "y": target}),
    ]


def _session(max_concurrent):
    return DMacSession(
        ClusterConfig(
            num_workers=4,
            threads_per_worker=1,
            block_size=8,
            max_concurrent_stages=max_concurrent,
        )
    )


@pytest.mark.parametrize("app,program,inputs", _workloads(),
                         ids=lambda value: value if isinstance(value, str) else "")
def test_serial_and_concurrent_runs_are_equivalent(app, program, inputs):
    serial_session = _session(1)
    serial = serial_session.run(program, inputs)
    concurrent_session = _session(None)
    concurrent = concurrent_session.run(program, inputs)

    # Chosen strategies are identical step by step.
    serial_plan = serial_session.plan(program)
    concurrent_plan = concurrent_session.plan(program)
    assert [
        step.strategy for step in serial_plan.steps if isinstance(step, MatMulStep)
    ] == [
        step.strategy for step in concurrent_plan.steps
        if isinstance(step, MatMulStep)
    ]

    # Per-scope ledgered bytes are bit-identical.
    assert (
        serial_session.context.ledger.bytes_by_scope()
        == concurrent_session.context.ledger.bytes_by_scope()
    )
    assert serial.comm_bytes == concurrent.comm_bytes

    # Numerical results agree exactly (same kernels, same block order).
    assert serial.matrices.keys() == concurrent.matrices.keys()
    for name in serial.matrices:
        np.testing.assert_array_equal(
            serial.matrices[name], concurrent.matrices[name]
        )
    assert serial.scalars == concurrent.scalars

    # The simulated clock is deterministic across dispatch widths.
    assert serial.simulated_seconds == pytest.approx(
        concurrent.simulated_seconds, abs=1e-12
    )
    assert serial.num_stages == concurrent.num_stages


def test_traced_runs_report_identical_per_step_bytes():
    app, program, inputs = _workloads()[0]
    serial = _session(1).run(program, inputs, trace=True)
    concurrent = _session(None).run(program, inputs, trace=True)
    assert serial.trace is not None and concurrent.trace is not None
    assert [(t.step, t.stage, t.comm_bytes) for t in serial.trace] == [
        (t.step, t.stage, t.comm_bytes) for t in concurrent.trace
    ]
    assert serial.comm_by_stage() == concurrent.comm_by_stage()

"""Tests for the stage graph (repro.runtime.graph)."""

import pytest

from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import PlanError
from repro.lang.program import ProgramBuilder
from repro.runtime.graph import StageGraph


def planned(pb: ProgramBuilder, workers: int = 4):
    return schedule_stages(DMacPlanner(pb.build(), workers).plan())


def two_island_program() -> ProgramBuilder:
    """Two fully independent pipelines (no shared matrices or scalars)."""
    pb = ProgramBuilder()
    a = pb.load("A", (16, 16))
    b = pb.load("B", (16, 16))
    pb.output(pb.assign("P", a @ a))
    pb.output(pb.assign("Q", b @ b))
    return pb


def gnmf_program(iterations: int = 1) -> ProgramBuilder:
    pb = ProgramBuilder()
    v = pb.load("V", (24, 18), sparsity=0.3)
    w = pb.random("W", (24, 4))
    h = pb.random("H", (4, 18))
    for _ in range(iterations):
        h = pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
        w = pb.assign("W", w * (v @ h.T) / (w @ h @ h.T))
    pb.output(w)
    pb.output(h)
    return pb


class TestConstruction:
    def test_every_step_lands_in_exactly_one_node(self):
        plan = planned(gnmf_program(2))
        graph = StageGraph.from_plan(plan)
        seen = [i for node in graph.nodes for i in node.steps]
        assert sorted(seen) == list(range(len(plan.steps)))
        assert all(graph.node_of_step[i] == node.index
                   for node in graph.nodes for i in node.steps)

    def test_nodes_share_one_stage_number(self):
        graph = StageGraph.from_plan(planned(gnmf_program(2)))
        for node in graph.nodes:
            stages = {graph.plan.steps[i].stage for i in node.steps}
            assert stages == {node.stage}

    def test_indices_are_a_topological_order(self):
        graph = StageGraph.from_plan(planned(gnmf_program(3)))
        for node in graph.nodes:
            assert all(dep < node.index for dep in node.deps)

    def test_dependents_mirror_deps(self):
        graph = StageGraph.from_plan(planned(gnmf_program(2)))
        for node in graph.nodes:
            for dep in node.deps:
                assert node.index in graph.nodes[dep].dependents

    def test_schedules_unstaged_plan(self):
        plan = DMacPlanner(gnmf_program(1).build(), 4).plan()
        assert plan.num_stages == 0
        graph = StageGraph.from_plan(plan)
        assert plan.num_stages > 0
        assert graph.num_nodes > 0

    def test_rejects_unknown_step_kind(self):
        plan = planned(gnmf_program(1))

        class AlienStep:
            stage = 1
            communicates = False

        plan.steps.append(AlienStep())
        with pytest.raises(PlanError, match="unknown step"):
            schedule_stages(plan)
        plan.steps.pop()


class TestConcurrencyStructure:
    def test_independent_pipelines_split_into_separate_roots(self):
        graph = StageGraph.from_plan(planned(two_island_program()))
        roots = graph.roots()
        assert len(roots) >= 2
        # The two islands never depend on each other anywhere in the graph.
        reach = {node.index: set(node.deps) for node in graph.nodes}
        for node in graph.nodes:
            for dep in node.deps:
                reach[node.index] |= reach[dep]
        p_nodes = {graph.node_of_step[i] for i, step in enumerate(graph.plan.steps)
                   if getattr(step.output_instance(), "name", "").startswith("P")}
        q_nodes = {graph.node_of_step[i] for i, step in enumerate(graph.plan.steps)
                   if getattr(step.output_instance(), "name", "").startswith("Q")}
        for p in p_nodes:
            assert not (reach[p] & q_nodes)

    def test_same_stage_number_can_hold_independent_nodes(self):
        graph = StageGraph.from_plan(planned(two_island_program()))
        by_stage = {}
        for node in graph.nodes:
            by_stage.setdefault(node.stage, []).append(node)
        assert any(len(nodes) > 1 for nodes in by_stage.values())


class TestCriticalPath:
    def test_path_is_a_dependency_chain(self):
        graph = StageGraph.from_plan(planned(gnmf_program(2)))
        path = graph.critical_path()
        assert path, "non-empty plan must have a critical path"
        for earlier, later in zip(path, path[1:]):
            assert earlier in graph.nodes[later].deps

    def test_path_dominates_every_chain_by_step_count(self):
        graph = StageGraph.from_plan(planned(gnmf_program(2)))
        best = sum(len(graph.nodes[i].steps) for i in graph.critical_path())
        # Longest chain by DP over the DAG, recomputed independently.
        chain = [len(node.steps) for node in graph.nodes]
        for node in graph.nodes:
            for dep in node.deps:
                chain[node.index] = max(
                    chain[node.index], chain[dep] + len(node.steps)
                )
        assert best == max(chain)


class TestViolationsAndPresentation:
    def test_clean_plan_has_no_stage_violations(self):
        graph = StageGraph.from_plan(planned(gnmf_program(2)))
        assert list(graph.stage_violations()) == []

    def test_corrupted_stage_numbers_are_reported(self):
        plan = planned(gnmf_program(1))
        graph = StageGraph.from_plan(plan)
        # Pull every step into stage 1 by hand: every communicating edge
        # then feeds a same-stage consumer.
        for step in plan.steps:
            step.stage = 1
        corrupted = StageGraph.from_plan(plan)
        violations = list(corrupted.stage_violations())
        assert violations
        for index, instance, available in violations:
            assert available > plan.steps[index].stage
        assert graph is not corrupted

    def test_json_shape(self):
        graph = StageGraph.from_plan(planned(gnmf_program(1)))
        payload = graph.to_json_dict()
        assert set(payload) == {
            "num_stages", "num_nodes", "num_edges",
            "critical_path", "critical_path_steps", "nodes",
        }
        assert len(payload["nodes"]) == graph.num_nodes
        for node in payload["nodes"]:
            assert set(node) == {"index", "stage", "deps", "steps"}
            for step in node["steps"]:
                assert set(step) == {"plan_index", "description", "communicates"}

    def test_describe_mentions_every_node_and_the_path(self):
        graph = StageGraph.from_plan(planned(gnmf_program(1)))
        text = graph.describe()
        assert "stage graph:" in text
        for node in graph.nodes:
            assert f"node {node.index} " in text
        assert "critical path" in text

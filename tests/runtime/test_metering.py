"""Thread-safety tests: the ledger, the clock and the stage meter hammered
from concurrently running stages (the regression the concurrent scheduler
introduces)."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import ClockConfig
from repro.rdd.clock import SimulatedClock, TimeBreakdown
from repro.rdd.ledger import CommunicationLedger
from repro.runtime.metering import StageMeter, active_meter, metered

THREADS = 8
ROUNDS = 200


class TestLedgerUnderConcurrency:
    def test_records_survive_a_hammering(self):
        ledger = CommunicationLedger()

        def hammer(worker: int) -> None:
            for round_index in range(ROUNDS):
                with ledger.scope(f"stage-{worker}"):
                    with ledger.scope(f"step-{round_index % 3}"):
                        ledger.record("shuffle", 10)
                    ledger.record("broadcast", 1)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        assert ledger.total_bytes == THREADS * ROUNDS * 11
        by_kind = ledger.bytes_by_kind()
        assert by_kind["shuffle"] == THREADS * ROUNDS * 10
        assert by_kind["broadcast"] == THREADS * ROUNDS * 1

    def test_scopes_are_per_thread(self):
        """Concurrent stages must tag transfers with their own scope, never
        a sibling thread's."""
        ledger = CommunicationLedger()
        barrier = threading.Barrier(THREADS, timeout=10)

        def hammer(worker: int) -> None:
            with ledger.scope(f"stage-{worker}"):
                barrier.wait()  # all scopes open simultaneously
                for __ in range(ROUNDS):
                    ledger.record("shuffle", worker + 1)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        by_scope = ledger.bytes_by_scope()
        for worker in range(THREADS):
            assert by_scope[f"stage-{worker}"] == ROUNDS * (worker + 1)

    def test_scope_stack_unwinds_per_thread(self):
        ledger = CommunicationLedger()
        with ledger.scope("outer"):
            assert ledger.current_scope() == "outer"

            def inner_thread() -> str:
                return ledger.current_scope()  # fresh thread: no stack

            with ThreadPoolExecutor(max_workers=1) as pool:
                assert pool.submit(inner_thread).result() == ""
        assert ledger.current_scope() == ""


class TestClockUnderConcurrency:
    def test_unmetered_charges_accumulate_exactly(self):
        clock = SimulatedClock(ClockConfig(network_bytes_per_sec=1e6,
                                           latency_per_stage_sec=0.5))

        def hammer(_: int) -> None:
            for __ in range(ROUNDS):
                clock.advance_network(1000)
                clock.advance_stage_overhead(1)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        elapsed = clock.elapsed
        assert elapsed.network_seconds == pytest.approx(
            THREADS * ROUNDS * 1000 / 1e6
        )
        assert elapsed.overhead_seconds == pytest.approx(THREADS * ROUNDS * 0.5)

    def test_metered_charges_go_to_the_thread_meter_only(self):
        """Concurrent stages with private meters: the global clock must not
        advance, and each meter must see exactly its own charges."""
        clock = SimulatedClock(ClockConfig(network_bytes_per_sec=1e6))
        meters = [StageMeter() for __ in range(THREADS)]
        barrier = threading.Barrier(THREADS, timeout=10)

        def hammer(worker: int) -> None:
            with metered(meters[worker]):
                barrier.wait()
                for __ in range(ROUNDS):
                    clock.advance_network((worker + 1) * 100)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        assert clock.elapsed_seconds == 0.0
        for worker, meter in enumerate(meters):
            assert meter.network_bytes == ROUNDS * (worker + 1) * 100

    def test_advance_commits_breakdown_bypassing_meters(self):
        clock = SimulatedClock()
        with metered(StageMeter()):
            clock.advance(TimeBreakdown(network_seconds=1.0,
                                        compute_seconds=2.0,
                                        overhead_seconds=3.0))
        assert clock.elapsed_seconds == pytest.approx(6.0)


class TestStageMeter:
    def test_contextvar_install_and_reset(self):
        assert active_meter() is None
        meter = StageMeter()
        with metered(meter):
            assert active_meter() is meter
            nested = StageMeter()
            with metered(nested):
                assert active_meter() is nested
            assert active_meter() is meter
        assert active_meter() is None

    def test_concurrent_flop_records_merge(self):
        meter = StageMeter()
        stats = object()

        def hammer(_: int) -> None:
            for __ in range(ROUNDS):
                meter.record_flops(stats, 10, sparse=False)
                meter.record_flops(stats, 4, sparse=True)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        [(owner, dense, sparse)] = meter.take_step_flops()
        assert owner is stats
        assert dense == THREADS * ROUNDS * 10
        assert sparse == THREADS * ROUNDS * 4
        assert meter.take_step_flops() == []

    def test_step_bytes_drain(self):
        meter = StageMeter()
        meter.add_network(100, 0.1)
        meter.add_network(50, 0.05)
        assert meter.take_step_bytes() == 150
        assert meter.take_step_bytes() == 0
        assert meter.network_bytes == 150  # stage total is not drained

"""Tests for the operator registry (repro.runtime.registry)."""

import pytest

from repro.core import plan as plan_module
from repro.core.plan import Step
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import PlanError
from repro.lang.program import ProgramBuilder
from repro.runtime.registry import (
    OPERATORS,
    OPERATORS_BY_OP,
    spec_for,
    spec_for_op,
    validate_plan_steps,
)


def all_step_types():
    """Every concrete Step subclass defined by the plan module."""
    return [
        obj
        for obj in vars(plan_module).values()
        if isinstance(obj, type) and issubclass(obj, Step) and obj is not Step
    ]


def staged_gnmf_plan():
    pb = ProgramBuilder()
    v = pb.load("V", (24, 18), sparsity=0.3)
    w = pb.random("W", (24, 4))
    h = pb.random("H", (4, 18))
    h = pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
    w = pb.assign("W", w * (v @ h.T) / (w @ h @ h.T))
    pb.output(w)
    pb.output(h)
    return schedule_stages(DMacPlanner(pb.build(), 4).plan())


class TestCoverage:
    def test_every_step_type_is_registered(self):
        for step_type in all_step_types():
            assert step_type in OPERATORS, f"{step_type.__name__} not registered"

    def test_registry_has_no_stray_entries(self):
        assert set(OPERATORS) == set(all_step_types())

    def test_specs_are_complete(self):
        for spec in OPERATORS.values():
            assert spec.name
            assert callable(spec.kernel)
            assert callable(spec.shape_rule)
            assert callable(spec.edge_label)

    def test_planner_hooks_exist_for_every_lang_operator(self):
        for op_type, spec in OPERATORS_BY_OP.items():
            assert spec.plan_hook, f"{op_type.__name__} has no plan hook"
            assert hasattr(DMacPlanner, spec.plan_hook), (
                f"{op_type.__name__}: DMacPlanner.{spec.plan_hook} missing"
            )

    def test_names_are_unique(self):
        names = [spec.name for spec in OPERATORS.values()]
        assert len(names) == len(set(names))


class TestLookup:
    def test_spec_for_every_planned_step(self):
        plan = staged_gnmf_plan()
        for step in plan.steps:
            spec = spec_for(step)
            assert isinstance(spec.edge_label(step), str)

    def test_spec_for_unknown_step_raises(self):
        class AlienStep:
            pass

        with pytest.raises(PlanError, match="unknown step AlienStep"):
            spec_for(AlienStep())

    def test_spec_for_op_unknown_returns_none(self):
        assert spec_for_op(object()) is None

    def test_validate_plan_steps_accepts_real_plans(self):
        validate_plan_steps(staged_gnmf_plan())


class TestSharedFacets:
    def test_shape_rules_agree_with_lint_facts(self):
        """The lint's interpreter and the registry are the same table."""
        from repro.lint.facts import build_facts

        plan = staged_gnmf_plan()
        facts = build_facts(plan)
        shapes = {}
        for step in plan.steps:
            output = step.output_instance()
            if output is None:
                continue
            shape = spec_for(step).shape_rule(step, shapes)
            if shape is not None:
                shapes[output] = shape
        assert shapes == facts.shapes

    def test_edge_labels_match_strategies(self):
        plan = staged_gnmf_plan()
        from repro.core.plan import MatMulStep

        for step in plan.steps:
            if isinstance(step, MatMulStep):
                assert spec_for(step).edge_label(step) == step.strategy

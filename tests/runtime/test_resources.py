"""Lifecycle tests: every matrix registered during a run is released
exactly once -- on clean completion and on mid-run failure alike."""

from collections import Counter
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.resources import ResourceManager


class RecordingManager(ResourceManager):
    """ResourceManager that registers itself for post-run inspection."""

    created: list["RecordingManager"] = []

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        RecordingManager.created.append(self)


def run_recorded(program, inputs=None, workers=3, expect=None):
    """Execute a program with the recording manager; return its event log."""
    plan = schedule_stages(DMacPlanner(program, workers).plan())
    context = ClusterContext(
        ClusterConfig(num_workers=workers, threads_per_worker=1, block_size=8)
    )
    RecordingManager.created.clear()
    with mock.patch("repro.runtime.executor.ResourceManager", RecordingManager):
        executor = PlanExecutor(context, 8)
        if expect is None:
            executor.execute(plan, inputs)
        else:
            with pytest.raises(expect):
                executor.execute(plan, inputs)
    assert len(RecordingManager.created) == 1
    return RecordingManager.created[0]


def assert_exactly_once(manager: ResourceManager) -> None:
    published = Counter(i for kind, i in manager.events if kind == "publish")
    released = Counter(i for kind, i in manager.events if kind == "release")
    assert all(count == 1 for count in published.values())
    assert released == published, (
        "every published instance must be released exactly once"
    )
    assert manager.live_instances() == []


# -- hypothesis-driven program shapes ---------------------------------------

op_choices = st.lists(
    st.sampled_from(["matmul", "gram", "add", "scale", "transpose-mul"]),
    min_size=1,
    max_size=5,
)


@given(ops=op_choices, dim=st.sampled_from([6, 10, 16]))
@settings(max_examples=15, deadline=None)
def test_every_instance_released_exactly_once(ops, dim):
    pb = ProgramBuilder()
    current = pb.load("A", (dim, dim))
    for index, kind in enumerate(ops):
        if kind == "matmul":
            current = pb.assign(f"M{index}", current @ current)
        elif kind == "gram":
            current = pb.assign(f"M{index}", current.T @ current)
        elif kind == "add":
            current = pb.assign(f"M{index}", current + current)
        elif kind == "scale":
            current = pb.assign(f"M{index}", current * 2.0)
        else:
            current = pb.assign(f"M{index}", current @ current.T)
    pb.output(current)
    inputs = {"A": np.random.default_rng(7).random((dim, dim))}
    manager = run_recorded(pb.build(), inputs)
    assert_exactly_once(manager)
    # Something was actually tracked, or the test proves nothing.
    assert any(kind == "publish" for kind, __ in manager.events)


def test_released_exactly_once_on_midrun_failure(rng):
    """A scalar division by zero aborts the run after matrices have been
    materialised; cleanup must still release each exactly once."""
    pb = ProgramBuilder()
    a = pb.load("A", (12, 12))
    b = pb.assign("B", a @ a)
    s = pb.scalar("s", b.sum())
    zero = pb.scalar("z", s - s)
    broken = pb.scalar("w", s / zero)  # 0 denominator at run time
    pb.output(pb.assign("C", b * broken))
    manager = run_recorded(
        pb.build(), {"A": rng.random((12, 12))}, expect=ExecutionError
    )
    assert_exactly_once(manager)
    published = [i for kind, i in manager.events if kind == "publish"]
    assert published, "matrices must have been live when the run aborted"


def test_outputs_survive_until_materialised(rng):
    """The output pin keeps a result alive past its last plan consumer."""
    pb = ProgramBuilder()
    a = pb.load("A", (8, 8))
    b = pb.assign("B", a @ a)
    pb.output(b)
    pb.output(pb.assign("C", b + b))  # B's last *step* consumer
    manager = run_recorded(pb.build(), {"A": rng.random((8, 8))})
    assert_exactly_once(manager)


class TestManagerUnit:
    def test_double_publish_rejected(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        manager = ResourceManager(plan)
        instance = plan.steps[0].output_instance()
        manager.publish(instance, object())
        with pytest.raises(ExecutionError, match="produced twice"):
            manager.publish(instance, object())

    def test_get_unmaterialised_fails(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        manager = ResourceManager(plan)
        with pytest.raises(ExecutionError, match="not materialised"):
            manager.get(plan.steps[0].output_instance())

    def test_close_is_idempotent(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        manager = ResourceManager(plan)
        instance = plan.steps[0].output_instance()
        manager.publish(instance, object())
        manager.close()
        manager.close()
        releases = [i for kind, i in manager.events if kind == "release"]
        assert releases.count(instance) == 1

    def test_release_goes_to_backend(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        freed = []

        class Backend:
            def release(self, matrix):
                freed.append(matrix)

        manager = ResourceManager(plan, Backend())
        token = object()
        manager.publish(plan.steps[0].output_instance(), token)
        manager.close()
        assert freed == [token]

"""Lifecycle tests: every matrix registered during a run is released
exactly once -- on clean completion and on mid-run failure alike."""

import json
from collections import Counter
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, RecoveryConfig
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.resources import ResourceManager


class RecordingManager(ResourceManager):
    """ResourceManager that registers itself for post-run inspection."""

    created: list["RecordingManager"] = []

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        RecordingManager.created.append(self)


def run_recorded(program, inputs=None, workers=3, expect=None, config=None, chaos=None):
    """Execute a program with the recording manager; return its event log."""
    plan = schedule_stages(DMacPlanner(program, workers).plan())
    context = ClusterContext(
        config
        or ClusterConfig(num_workers=workers, threads_per_worker=1, block_size=8)
    )
    RecordingManager.created.clear()
    with mock.patch("repro.runtime.executor.ResourceManager", RecordingManager):
        executor = PlanExecutor(context, context.config.block_size)
        if expect is None:
            executor.execute(plan, inputs, chaos=chaos)
        else:
            with pytest.raises(expect):
                executor.execute(plan, inputs, chaos=chaos)
    assert len(RecordingManager.created) == 1
    return RecordingManager.created[0]


def assert_exactly_once(manager: ResourceManager) -> None:
    published = Counter(i for kind, i in manager.events if kind == "publish")
    released = Counter(i for kind, i in manager.events if kind == "release")
    assert all(count == 1 for count in published.values())
    assert released == published, (
        "every published instance must be released exactly once"
    )
    assert manager.live_instances() == []


def assert_books_balance(manager: ResourceManager) -> None:
    """The fault-tolerant generalisation of :func:`assert_exactly_once`:
    with injected block loss, an instance may additionally be lost and
    later restored, but the books must still balance per instance."""
    assert manager.events_dropped == 0, "cap too small to audit this run"
    published = Counter(i for kind, i in manager.events if kind == "publish")
    released = Counter(i for kind, i in manager.events if kind == "release")
    losts = Counter(i for kind, i in manager.events if kind == "lost")
    restores = Counter(i for kind, i in manager.events if kind == "restore")
    for instance, count in published.items():
        assert count == 1, f"{instance} published {count} times"
        assert (
            released[instance] + losts[instance] - restores[instance] == 1
        ), f"books unbalanced for {instance}"
    for counter in (released, losts, restores):
        assert set(counter) <= set(published)
    assert manager.live_instances() == []


# -- hypothesis-driven program shapes ---------------------------------------

op_choices = st.lists(
    st.sampled_from(["matmul", "gram", "add", "scale", "transpose-mul"]),
    min_size=1,
    max_size=5,
)


@given(ops=op_choices, dim=st.sampled_from([6, 10, 16]))
@settings(max_examples=15, deadline=None)
def test_every_instance_released_exactly_once(ops, dim):
    pb = ProgramBuilder()
    current = pb.load("A", (dim, dim))
    for index, kind in enumerate(ops):
        if kind == "matmul":
            current = pb.assign(f"M{index}", current @ current)
        elif kind == "gram":
            current = pb.assign(f"M{index}", current.T @ current)
        elif kind == "add":
            current = pb.assign(f"M{index}", current + current)
        elif kind == "scale":
            current = pb.assign(f"M{index}", current * 2.0)
        else:
            current = pb.assign(f"M{index}", current @ current.T)
    pb.output(current)
    inputs = {"A": np.random.default_rng(7).random((dim, dim))}
    manager = run_recorded(pb.build(), inputs)
    assert_exactly_once(manager)
    # Something was actually tracked, or the test proves nothing.
    assert any(kind == "publish" for kind, __ in manager.events)


def test_released_exactly_once_on_midrun_failure(rng):
    """A scalar division by zero aborts the run after matrices have been
    materialised; cleanup must still release each exactly once."""
    pb = ProgramBuilder()
    a = pb.load("A", (12, 12))
    b = pb.assign("B", a @ a)
    s = pb.scalar("s", b.sum())
    zero = pb.scalar("z", s - s)
    broken = pb.scalar("w", s / zero)  # 0 denominator at run time
    pb.output(pb.assign("C", b * broken))
    manager = run_recorded(
        pb.build(), {"A": rng.random((12, 12))}, expect=ExecutionError
    )
    assert_exactly_once(manager)
    published = [i for kind, i in manager.events if kind == "publish"]
    assert published, "matrices must have been live when the run aborted"


def test_outputs_survive_until_materialised(rng):
    """The output pin keeps a result alive past its last plan consumer."""
    pb = ProgramBuilder()
    a = pb.load("A", (8, 8))
    b = pb.assign("B", a @ a)
    pb.output(b)
    pb.output(pb.assign("C", b + b))  # B's last *step* consumer
    manager = run_recorded(pb.build(), {"A": rng.random((8, 8))})
    assert_exactly_once(manager)


class TestManagerUnit:
    def test_double_publish_rejected(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        manager = ResourceManager(plan)
        instance = plan.steps[0].output_instance()
        manager.publish(instance, object())
        with pytest.raises(ExecutionError, match="produced twice"):
            manager.publish(instance, object())

    def test_get_unmaterialised_fails(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        manager = ResourceManager(plan)
        with pytest.raises(ExecutionError, match="not materialised"):
            manager.get(plan.steps[0].output_instance())

    def test_close_is_idempotent(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        manager = ResourceManager(plan)
        instance = plan.steps[0].output_instance()
        manager.publish(instance, object())
        manager.close()
        manager.close()
        releases = [i for kind, i in manager.events if kind == "release"]
        assert releases.count(instance) == 1

    def test_release_goes_to_backend(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        freed = []

        class Backend:
            def release(self, matrix):
                freed.append(matrix)

        manager = ResourceManager(plan, Backend())
        token = object()
        manager.publish(plan.steps[0].output_instance(), token)
        manager.close()
        assert freed == [token]


class TestInvalidateRestore:
    def make_manager(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        b = pb.assign("B", a @ a)
        pb.output(pb.assign("C", b + b))
        plan = schedule_stages(DMacPlanner(pb.build(), 2).plan())
        return ResourceManager(plan), plan.steps[0].output_instance()

    def test_invalidate_then_restore_balances_books(self):
        manager, instance = self.make_manager()
        manager.publish(instance, object())
        manager.invalidate(instance)
        assert manager.is_lost(instance)
        with pytest.raises(ExecutionError, match="not materialised"):
            manager.get(instance)
        replacement = object()
        manager.restore(instance, replacement)
        assert not manager.is_lost(instance)
        assert manager.get(instance) is replacement
        manager.close()
        assert_books_balance(manager)

    def test_lost_and_never_restored_still_balances(self):
        manager, instance = self.make_manager()
        manager.publish(instance, object())
        manager.invalidate(instance)
        manager.close()
        kinds = [kind for kind, __ in manager.events]
        assert kinds == ["publish", "lost"]
        assert_books_balance(manager)

    def test_invalidate_requires_materialised(self):
        manager, instance = self.make_manager()
        with pytest.raises(ExecutionError, match="cannot invalidate"):
            manager.invalidate(instance)

    def test_restore_requires_prior_loss(self):
        manager, instance = self.make_manager()
        manager.publish(instance, object())
        with pytest.raises(ExecutionError, match="never invalidated"):
            manager.restore(instance, object())

    def test_decref_on_lost_instance_is_inert(self):
        """A consumer finishing while the instance is lost must not
        double-release it once recovery restores the matrix."""
        manager, instance = self.make_manager()
        manager.publish(instance, object())
        manager.invalidate(instance)
        manager.release_output(instance)  # refcount poke while lost: no-op
        manager.restore(instance, object())
        manager.close()
        assert_books_balance(manager)


class TestEventLogCap:
    def test_log_is_bounded_and_counts_drops(self, rng):
        pb = ProgramBuilder()
        current = pb.load("A", (8, 8))
        for index in range(6):
            current = pb.assign(f"M{index}", current + current)
        pb.output(current)
        config = ClusterConfig(
            num_workers=3,
            threads_per_worker=1,
            block_size=8,
            resource_event_log_limit=4,
        )
        manager = run_recorded(
            pb.build(), {"A": rng.random((8, 8))}, config=config
        )
        assert len(manager.events) == 4
        assert manager.events_recorded > 4
        assert manager.events_dropped == manager.events_recorded - 4

    def test_unlimited_log_drops_nothing(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        config = ClusterConfig(
            num_workers=3,
            threads_per_worker=1,
            block_size=8,
            resource_event_log_limit=None,
        )
        manager = run_recorded(pb.build(), {"A": rng.random((8, 8))}, config=config)
        assert manager.events_dropped == 0
        assert len(manager.events) == manager.events_recorded


class TestFaultHammer:
    """End-to-end: injected crashes, flaky transfers, and block loss in one
    run -- with retries and lineage recovery the lifecycle books must still
    balance, instance by instance."""

    def run_chaos(self, seed, faults, iterations=4):
        from repro.datasets import sparse_random
        from repro.faults import ChaosEngine
        from repro.programs import build_pagerank_program

        nodes = 64
        program = build_pagerank_program(nodes, 0.05, iterations=iterations)
        link = sparse_random(nodes, nodes, 0.05, seed=3, ensure_coverage=True)
        link = link / np.maximum(link.sum(axis=1, keepdims=True), 1e-12)
        config = ClusterConfig(
            num_workers=3,
            threads_per_worker=1,
            block_size=16,
            recovery=RecoveryConfig(max_stage_attempts=4),
        )
        chaos = ChaosEngine(seed, faults)
        manager = run_recorded(
            program, {"link": link}, config=config, chaos=chaos
        )
        return manager, chaos

    def test_hammered_run_releases_every_instance_exactly_once(self):
        manager, chaos = self.run_chaos(
            seed=11,
            faults="crash:times=2;flaky:p=0.9,times=1;lostblock:instance=rank,iteration=3",
        )
        kinds = Counter(event["fault"] for event in chaos.injected)
        assert kinds.get("crash", 0) >= 1, "no crash fired -- hammer too soft"
        assert kinds.get("lostblock", 0) == 1
        assert_books_balance(manager)
        losts = [i for kind, i in manager.events if kind == "lost"]
        restores = [i for kind, i in manager.events if kind == "restore"]
        assert losts == restores, "the lost block must have been recovered"

    def test_hammered_run_is_deterministic(self):
        faults = "crash:times=2;flaky:p=0.9,times=1;lostblock:instance=rank,iteration=3"
        first, chaos_a = self.run_chaos(seed=11, faults=faults)
        second, chaos_b = self.run_chaos(seed=11, faults=faults)
        # Concurrent stages may interleave the raw logs differently (the
        # JSON report sorts canonically), but the *decisions* -- which
        # faults fired, where -- and the lifecycle transitions are fixed.
        def canon(events):
            return sorted(json.dumps(e, sort_keys=True) for e in events)

        assert canon(chaos_a.injected) == canon(chaos_b.injected)
        assert Counter(
            (kind, str(instance)) for kind, instance in first.events
        ) == Counter((kind, str(instance)) for kind, instance in second.events)

"""Tests for the concurrent stage scheduler (repro.runtime.scheduler)."""

import threading

import pytest

from repro.config import ClusterConfig
from repro.core.planner import DMacPlanner
from repro.errors import StageExecutionError
from repro.core.stages import schedule_stages
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.graph import StageGraph, StageNode
from repro.runtime.metering import StageMeter
from repro.runtime.scheduler import StageScheduler


def synthetic_graph(deps_of: dict[int, tuple[int, ...]]) -> StageGraph:
    """A StageGraph with hand-wired node dependencies (plan unused)."""
    dependents: dict[int, list[int]] = {i: [] for i in deps_of}
    for node, deps in deps_of.items():
        for dep in deps:
            dependents[dep].append(node)
    nodes = [
        StageNode(
            index=i,
            stage=1,
            steps=(i,),
            deps=tuple(deps_of[i]),
            dependents=tuple(dependents[i]),
        )
        for i in sorted(deps_of)
    ]
    return StageGraph(plan=None, nodes=nodes, step_deps={}, node_of_step={},
                      available_stage={})


def metered_runner(durations: dict[int, float]):
    """run_node stub charging a fixed compute duration per node."""

    def run(node: StageNode) -> StageMeter:
        meter = StageMeter()
        meter.add_compute(durations[node.index])
        return meter

    return run


class TestSimulatedTime:
    def test_independent_stages_charge_max_not_sum(self):
        """The acceptance case: two independent stages overlap, the clock
        advances by the slower one's duration, not the sum."""
        graph = synthetic_graph({0: (), 1: ()})
        report = StageScheduler().run(graph, metered_runner({0: 3.0, 1: 5.0}))
        assert report.makespan_seconds == pytest.approx(5.0)
        assert report.serial_seconds() == pytest.approx(8.0)
        assert report.critical_path == (1,)

    def test_dependent_stages_still_sum(self):
        graph = synthetic_graph({0: (), 1: (0,)})
        report = StageScheduler().run(graph, metered_runner({0: 3.0, 1: 5.0}))
        assert report.makespan_seconds == pytest.approx(8.0)
        assert report.critical_path == (0, 1)

    def test_diamond_takes_the_slower_branch(self):
        graph = synthetic_graph({0: (), 1: (0,), 2: (0,), 3: (1, 2)})
        durations = {0: 1.0, 1: 2.0, 2: 7.0, 3: 1.0}
        report = StageScheduler().run(graph, metered_runner(durations))
        assert report.makespan_seconds == pytest.approx(1.0 + 7.0 + 1.0)
        assert report.critical_path == (0, 2, 3)
        slow_branch = report.timings[2]
        assert slow_branch.start_seconds == pytest.approx(1.0)
        assert slow_branch.finish_seconds == pytest.approx(8.0)

    def test_simulation_is_independent_of_dispatch_width(self):
        deps = {0: (), 1: (), 2: (0,), 3: (1, 2)}
        durations = {0: 4.0, 1: 1.0, 2: 2.0, 3: 3.0}
        reports = [
            StageScheduler(width).run(synthetic_graph(deps),
                                      metered_runner(durations))
            for width in (1, 2, 8)
        ]
        assert len({r.makespan_seconds for r in reports}) == 1
        assert len({r.critical_path for r in reports}) == 1

    def test_breakdown_is_summed_along_the_path(self):
        graph = synthetic_graph({0: (), 1: (0,)})

        def run(node: StageNode) -> StageMeter:
            meter = StageMeter()
            meter.add_network(100, 1.5)
            meter.add_compute(2.0)
            meter.add_overhead(0.5)
            return meter

        report = StageScheduler().run(graph, run)
        assert report.elapsed.network_seconds == pytest.approx(3.0)
        assert report.elapsed.compute_seconds == pytest.approx(4.0)
        assert report.elapsed.overhead_seconds == pytest.approx(1.0)


class TestDispatch:
    def test_independent_stages_really_overlap(self):
        """Both nodes must be in flight at once: each waits at a barrier
        that only releases when the other arrives."""
        barrier = threading.Barrier(2, timeout=10)
        graph = synthetic_graph({0: (), 1: ()})

        def run(node: StageNode) -> StageMeter:
            barrier.wait()
            return StageMeter()

        report = StageScheduler(max_concurrent=2).run(graph, run)
        assert len(report.timings) == 2

    def test_dependency_order_is_honoured(self):
        finished: list[int] = []
        lock = threading.Lock()
        graph = synthetic_graph({0: (), 1: (0,), 2: (1,)})

        def run(node: StageNode) -> StageMeter:
            with lock:
                finished.append(node.index)
            return StageMeter()

        StageScheduler(max_concurrent=4).run(graph, run)
        assert finished == [0, 1, 2]

    def test_failure_is_wrapped_with_node_context(self):
        graph = synthetic_graph({0: (), 1: ()})

        class Boom(RuntimeError):
            pass

        def run(node: StageNode) -> StageMeter:
            if node.index == 1:
                raise Boom("stage exploded")
            return StageMeter()

        with pytest.raises(StageExecutionError, match="stage exploded") as info:
            StageScheduler(max_concurrent=2).run(graph, run)
        assert info.value.node == 1
        assert info.value.stage == 1
        assert info.value.attempts == 1
        assert isinstance(info.value.cause, Boom)
        assert isinstance(info.value.__cause__, Boom)

    def test_failure_stops_downstream_submission(self):
        ran: list[int] = []
        lock = threading.Lock()
        graph = synthetic_graph({0: (), 1: (0,)})

        def run(node: StageNode) -> StageMeter:
            with lock:
                ran.append(node.index)
            if node.index == 0:
                raise ValueError("root failed")
            return StageMeter()

        with pytest.raises(StageExecutionError, match="root failed"):
            StageScheduler(max_concurrent=2).run(graph, run)
        assert ran == [0]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            StageScheduler(max_concurrent=0)


class FlakyError(RuntimeError):
    """A stub transient fault: the scheduler retries on ``retryable``."""

    retryable = True


class TestRetry:
    def make_runner(self, failures_of: dict[int, int], counts: dict[int, int]):
        """run_node failing a node's first ``failures_of[i]`` attempts."""

        def run(node: StageNode) -> StageMeter:
            counts[node.index] = counts.get(node.index, 0) + 1
            if counts[node.index] <= failures_of.get(node.index, 0):
                raise FlakyError(f"transient failure of node {node.index}")
            meter = StageMeter()
            meter.add_compute(1.0)
            return meter

        return run

    def test_retryable_fault_is_retried(self):
        graph = synthetic_graph({0: ()})
        counts: dict[int, int] = {}
        scheduler = StageScheduler(max_attempts=3, backoff_base_sec=1.0)
        report = scheduler.run(graph, self.make_runner({0: 2}, counts))
        assert counts[0] == 3
        # backoff 1 + 2 booked as overhead, plus the final compute second
        assert report.elapsed.overhead_seconds == pytest.approx(3.0)
        assert report.elapsed.compute_seconds == pytest.approx(1.0)

    def test_backoff_is_capped(self):
        graph = synthetic_graph({0: ()})
        counts: dict[int, int] = {}
        scheduler = StageScheduler(
            max_attempts=5, backoff_base_sec=1.0, backoff_cap_sec=2.0
        )
        report = scheduler.run(graph, self.make_runner({0: 4}, counts))
        # backoffs 1, 2, 2, 2 (cap), not 1, 2, 4, 8
        assert report.elapsed.overhead_seconds == pytest.approx(7.0)

    def test_exhausted_retries_wrap_with_attempt_count(self):
        graph = synthetic_graph({0: ()})
        counts: dict[int, int] = {}
        scheduler = StageScheduler(max_attempts=3)
        with pytest.raises(StageExecutionError, match="after 3 attempt") as info:
            scheduler.run(graph, self.make_runner({0: 99}, counts))
        assert counts[0] == 3
        assert info.value.attempts == 3

    def test_non_retryable_fault_fails_fast(self):
        graph = synthetic_graph({0: ()})
        counts: dict[int, int] = {}

        def run(node: StageNode) -> StageMeter:
            counts[node.index] = counts.get(node.index, 0) + 1
            raise ValueError("genuine bug")

        with pytest.raises(StageExecutionError, match="genuine bug"):
            StageScheduler(max_attempts=5).run(graph, run)
        assert counts[0] == 1

    def test_failed_attempt_cost_is_charged(self):
        """A failed attempt's metered seconds count towards the node."""
        graph = synthetic_graph({0: ()})
        attempts: dict[int, int] = {}

        def run(node: StageNode) -> StageMeter:
            attempts[node.index] = attempts.get(node.index, 0) + 1
            meter = StageMeter()
            meter.add_compute(2.0)
            if attempts[node.index] == 1:
                error = FlakyError("died mid-stage")
                error.stage_meter = meter  # as the executor attaches it
                raise error
            return meter

        report = StageScheduler(max_attempts=2, backoff_base_sec=0.5).run(graph, run)
        assert report.elapsed.compute_seconds == pytest.approx(4.0)
        assert report.elapsed.overhead_seconds == pytest.approx(0.5)

    def test_retry_events_reach_the_sink(self):
        graph = synthetic_graph({0: ()})
        events: list[dict] = []
        scheduler = StageScheduler(
            max_attempts=2, backoff_base_sec=1.0, event_sink=events.append
        )
        scheduler.run(graph, self.make_runner({0: 1}, {}))
        assert [e["event"] for e in events] == ["retry"]
        assert events[0]["node"] == 0
        assert events[0]["backoff_sec"] == pytest.approx(1.0)


class TestSpeculation:
    def run_with_slowdown(self, multiplier: float, factor: float):
        """Three same-stage siblings, node 2 slowed by ``factor``."""
        graph = synthetic_graph({0: (), 1: (), 2: ()})

        def run(node: StageNode) -> StageMeter:
            meter = StageMeter()
            meter.add_compute(2.0)
            if node.index == 2:
                meter.slowdown_factor = factor
            return meter

        events: list[dict] = []
        scheduler = StageScheduler(
            speculation_multiplier=multiplier, event_sink=events.append
        )
        return scheduler.run(graph, run), events

    def test_straggler_is_cut_to_threshold_plus_clean(self):
        report, events = self.run_with_slowdown(multiplier=2.0, factor=10.0)
        # slowed = 20s; copy launches at 2 x median(2s) = 4s, runs clean 2s
        assert report.timings[2].duration_seconds == pytest.approx(6.0)
        assert [e["event"] for e in events] == ["speculation"]
        assert events[0]["node"] == 2

    def test_mild_straggler_keeps_its_own_time(self):
        report, events = self.run_with_slowdown(multiplier=2.0, factor=1.5)
        # slowed = 3s < threshold 4s + clean 2s: the original finishes first
        assert report.timings[2].duration_seconds == pytest.approx(3.0)
        assert events == []

    def test_speculation_disabled_is_inert(self):
        report, events = self.run_with_slowdown(multiplier=0.0, factor=10.0)
        assert report.timings[2].duration_seconds == pytest.approx(20.0)
        assert events == []

    def test_no_slowdown_means_no_speculation(self):
        report, events = self.run_with_slowdown(multiplier=2.0, factor=1.0)
        assert report.timings[2].duration_seconds == pytest.approx(2.0)
        assert events == []

    def test_two_stragglers_do_not_mask_each_other(self):
        """Regression: the threshold must come from the *clean* sibling
        durations.  A median over observed (slowed) durations lets two
        stragglers in one stage inflate each other's threshold -- median
        of {2s, 20s} is 11s, threshold 22s -- and neither ever speculates.
        """
        graph = synthetic_graph({0: (), 1: (), 2: ()})

        def run(node: StageNode) -> StageMeter:
            meter = StageMeter()
            meter.add_compute(2.0)
            if node.index in (1, 2):
                meter.slowdown_factor = 10.0
            return meter

        events: list[dict] = []
        scheduler = StageScheduler(
            speculation_multiplier=2.0, event_sink=events.append
        )
        report = scheduler.run(graph, run)
        # Each straggler: slowed 20s; its copy launches at 2 x the clean
        # sibling median (2s) = 4s and runs its own clean 2s -> 6s.
        assert report.timings[1].duration_seconds == pytest.approx(6.0)
        assert report.timings[2].duration_seconds == pytest.approx(6.0)
        assert [e["event"] for e in events] == ["speculation", "speculation"]


class TestEndToEnd:
    def test_clock_charges_critical_path_not_serial_sum(self, rng):
        """Executing two independent pipelines: the session clock advance
        equals the critical path, strictly less than the stage-time sum."""
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        b = pb.load("B", (32, 32))
        pb.output(pb.assign("P", a @ a))
        pb.output(pb.assign("Q", b @ b))
        plan = schedule_stages(DMacPlanner(pb.build(), 4).plan())
        context = ClusterContext(
            ClusterConfig(num_workers=4, threads_per_worker=1, block_size=8)
        )
        before = context.clock.elapsed_seconds
        result = PlanExecutor(context, 8).execute(
            plan, {"A": rng.random((32, 32)), "B": rng.random((32, 32))}
        )
        advanced = context.clock.elapsed_seconds - before
        serial_sum = sum(t.duration_seconds for t in result.stage_timings)
        assert advanced == pytest.approx(result.simulated_seconds)
        assert result.simulated_seconds < serial_sum
        assert result.critical_path
        path_sum = sum(
            result.stage_timings[i].duration_seconds for i in result.critical_path
        )
        assert result.simulated_seconds == pytest.approx(path_sum)

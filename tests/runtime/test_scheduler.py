"""Tests for the concurrent stage scheduler (repro.runtime.scheduler)."""

import threading

import pytest

from repro.config import ClusterConfig
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext
from repro.runtime.executor import PlanExecutor
from repro.runtime.graph import StageGraph, StageNode
from repro.runtime.metering import StageMeter
from repro.runtime.scheduler import StageScheduler


def synthetic_graph(deps_of: dict[int, tuple[int, ...]]) -> StageGraph:
    """A StageGraph with hand-wired node dependencies (plan unused)."""
    dependents: dict[int, list[int]] = {i: [] for i in deps_of}
    for node, deps in deps_of.items():
        for dep in deps:
            dependents[dep].append(node)
    nodes = [
        StageNode(
            index=i,
            stage=1,
            steps=(i,),
            deps=tuple(deps_of[i]),
            dependents=tuple(dependents[i]),
        )
        for i in sorted(deps_of)
    ]
    return StageGraph(plan=None, nodes=nodes, step_deps={}, node_of_step={},
                      available_stage={})


def metered_runner(durations: dict[int, float]):
    """run_node stub charging a fixed compute duration per node."""

    def run(node: StageNode) -> StageMeter:
        meter = StageMeter()
        meter.add_compute(durations[node.index])
        return meter

    return run


class TestSimulatedTime:
    def test_independent_stages_charge_max_not_sum(self):
        """The acceptance case: two independent stages overlap, the clock
        advances by the slower one's duration, not the sum."""
        graph = synthetic_graph({0: (), 1: ()})
        report = StageScheduler().run(graph, metered_runner({0: 3.0, 1: 5.0}))
        assert report.makespan_seconds == pytest.approx(5.0)
        assert report.serial_seconds() == pytest.approx(8.0)
        assert report.critical_path == (1,)

    def test_dependent_stages_still_sum(self):
        graph = synthetic_graph({0: (), 1: (0,)})
        report = StageScheduler().run(graph, metered_runner({0: 3.0, 1: 5.0}))
        assert report.makespan_seconds == pytest.approx(8.0)
        assert report.critical_path == (0, 1)

    def test_diamond_takes_the_slower_branch(self):
        graph = synthetic_graph({0: (), 1: (0,), 2: (0,), 3: (1, 2)})
        durations = {0: 1.0, 1: 2.0, 2: 7.0, 3: 1.0}
        report = StageScheduler().run(graph, metered_runner(durations))
        assert report.makespan_seconds == pytest.approx(1.0 + 7.0 + 1.0)
        assert report.critical_path == (0, 2, 3)
        slow_branch = report.timings[2]
        assert slow_branch.start_seconds == pytest.approx(1.0)
        assert slow_branch.finish_seconds == pytest.approx(8.0)

    def test_simulation_is_independent_of_dispatch_width(self):
        deps = {0: (), 1: (), 2: (0,), 3: (1, 2)}
        durations = {0: 4.0, 1: 1.0, 2: 2.0, 3: 3.0}
        reports = [
            StageScheduler(width).run(synthetic_graph(deps),
                                      metered_runner(durations))
            for width in (1, 2, 8)
        ]
        assert len({r.makespan_seconds for r in reports}) == 1
        assert len({r.critical_path for r in reports}) == 1

    def test_breakdown_is_summed_along_the_path(self):
        graph = synthetic_graph({0: (), 1: (0,)})

        def run(node: StageNode) -> StageMeter:
            meter = StageMeter()
            meter.add_network(100, 1.5)
            meter.add_compute(2.0)
            meter.add_overhead(0.5)
            return meter

        report = StageScheduler().run(graph, run)
        assert report.elapsed.network_seconds == pytest.approx(3.0)
        assert report.elapsed.compute_seconds == pytest.approx(4.0)
        assert report.elapsed.overhead_seconds == pytest.approx(1.0)


class TestDispatch:
    def test_independent_stages_really_overlap(self):
        """Both nodes must be in flight at once: each waits at a barrier
        that only releases when the other arrives."""
        barrier = threading.Barrier(2, timeout=10)
        graph = synthetic_graph({0: (), 1: ()})

        def run(node: StageNode) -> StageMeter:
            barrier.wait()
            return StageMeter()

        report = StageScheduler(max_concurrent=2).run(graph, run)
        assert len(report.timings) == 2

    def test_dependency_order_is_honoured(self):
        finished: list[int] = []
        lock = threading.Lock()
        graph = synthetic_graph({0: (), 1: (0,), 2: (1,)})

        def run(node: StageNode) -> StageMeter:
            with lock:
                finished.append(node.index)
            return StageMeter()

        StageScheduler(max_concurrent=4).run(graph, run)
        assert finished == [0, 1, 2]

    def test_original_exception_is_reraised_unwrapped(self):
        graph = synthetic_graph({0: (), 1: ()})

        class Boom(RuntimeError):
            pass

        def run(node: StageNode) -> StageMeter:
            if node.index == 1:
                raise Boom("stage exploded")
            return StageMeter()

        with pytest.raises(Boom, match="stage exploded"):
            StageScheduler(max_concurrent=2).run(graph, run)

    def test_failure_stops_downstream_submission(self):
        ran: list[int] = []
        lock = threading.Lock()
        graph = synthetic_graph({0: (), 1: (0,)})

        def run(node: StageNode) -> StageMeter:
            with lock:
                ran.append(node.index)
            if node.index == 0:
                raise ValueError("root failed")
            return StageMeter()

        with pytest.raises(ValueError):
            StageScheduler(max_concurrent=2).run(graph, run)
        assert ran == [0]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            StageScheduler(max_concurrent=0)


class TestEndToEnd:
    def test_clock_charges_critical_path_not_serial_sum(self, rng):
        """Executing two independent pipelines: the session clock advance
        equals the critical path, strictly less than the stage-time sum."""
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        b = pb.load("B", (32, 32))
        pb.output(pb.assign("P", a @ a))
        pb.output(pb.assign("Q", b @ b))
        plan = schedule_stages(DMacPlanner(pb.build(), 4).plan())
        context = ClusterContext(
            ClusterConfig(num_workers=4, threads_per_worker=1, block_size=8)
        )
        before = context.clock.elapsed_seconds
        result = PlanExecutor(context, 8).execute(
            plan, {"A": rng.random((32, 32)), "B": rng.random((32, 32))}
        )
        advanced = context.clock.elapsed_seconds - before
        serial_sum = sum(t.duration_seconds for t in result.stage_timings)
        assert advanced == pytest.approx(result.simulated_seconds)
        assert result.simulated_seconds < serial_sum
        assert result.critical_path
        path_sum = sum(
            result.stage_timings[i].duration_seconds for i in result.critical_path
        )
        assert result.simulated_seconds == pytest.approx(path_sum)

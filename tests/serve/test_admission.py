"""Admission control: quotas, ceilings, queue caps, typed rejections."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.errors import (
    AdmissionError,
    BacklogExceededError,
    JobTooLargeError,
    QueueFullError,
    TenantQuotaExceededError,
)
from repro.programs.registry import WorkloadParams, build_workload
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    JobSpec,
    MatrixService,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
    predict_flops,
    predict_runtime_seconds,
)
from repro.serve.plancache import plan_for_cache

PARAMS = {"scale": 5e-4, "iterations": 2, "rows": 300, "features": 30}


def make_entry(app="pagerank"):
    session = DMacSession(ClusterConfig(num_workers=4))
    workload = build_workload(app, WorkloadParams(**PARAMS))
    return plan_for_cache(session, workload.program)


def evaluate(policy=None, tenant=None, entry=None, **kwargs):
    controller = AdmissionController(policy or AdmissionPolicy())
    defaults = dict(service_queue_depth=0, tenant_queue_depth=0, idle=True)
    defaults.update(kwargs)
    return controller.evaluate(
        tenant or TenantSpec("t"), entry or make_entry(), **defaults
    )


class TestDecisions:
    def test_idle_cluster_runs(self):
        assert evaluate().action == "run"

    def test_busy_cluster_queues(self):
        assert evaluate(idle=False).action == "queue"

    def test_memory_quota_rejects(self):
        entry = make_entry()
        decision = evaluate(
            tenant=TenantSpec("t", memory_quota_bytes=1), entry=entry
        )
        assert decision.action == "reject"
        assert decision.reason == TenantQuotaExceededError.reason
        assert str(entry.predicted_peak_bytes) in decision.detail

    def test_byte_ceiling_rejects(self):
        decision = evaluate(policy=AdmissionPolicy(max_job_bytes=1))
        assert decision.action == "reject"
        assert decision.reason == JobTooLargeError.reason

    def test_flop_ceiling_rejects(self):
        decision = evaluate(policy=AdmissionPolicy(max_job_flops=1))
        assert decision.action == "reject"
        assert decision.reason == JobTooLargeError.reason

    def test_tenant_queue_cap_rejects(self):
        decision = evaluate(
            tenant=TenantSpec("t", max_queued_jobs=2), tenant_queue_depth=2
        )
        assert decision.action == "reject"
        assert decision.reason == QueueFullError.reason

    def test_service_queue_cap_rejects(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_queued_jobs=3), service_queue_depth=3
        )
        assert decision.reason == QueueFullError.reason

    def test_quota_outranks_queue_cap(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_queued_jobs=0),
            tenant=TenantSpec("t", memory_quota_bytes=1),
            service_queue_depth=5,
        )
        assert decision.reason == TenantQuotaExceededError.reason

    def test_error_mapping(self):
        decision = evaluate(policy=AdmissionPolicy(max_job_bytes=1))
        error = AdmissionController.error_for(decision, "t")
        assert isinstance(error, JobTooLargeError)
        assert isinstance(error, AdmissionError)
        assert error.tenant == "t"
        assert error.reason == "job-too-large"

    def test_backlog_horizon_rejects_on_predicted_runtime(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_backlog_seconds=1.0),
            backlog_seconds=0.8,
            predicted_seconds=0.5,
        )
        assert decision.action == "reject"
        assert decision.reason == BacklogExceededError.reason
        error = AdmissionController.error_for(decision, "t")
        assert isinstance(error, BacklogExceededError)

    def test_backlog_horizon_admits_under_the_cap(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_backlog_seconds=1.0),
            backlog_seconds=0.3,
            predicted_seconds=0.5,
            idle=False,
        )
        assert decision.action == "queue"

    def test_backlog_check_is_inert_without_a_prediction(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_backlog_seconds=0.0001),
            backlog_seconds=100.0,
            predicted_seconds=None,
        )
        assert decision.admitted


class TestPredictFlops:
    def test_positive_and_deterministic(self):
        program = build_workload("pagerank", WorkloadParams(**PARAMS)).program
        assert predict_flops(program) > 0
        assert predict_flops(program) == predict_flops(program)

    def test_scales_with_work(self):
        small = build_workload(
            "pagerank", WorkloadParams(scale=5e-4, iterations=2)
        ).program
        large = build_workload(
            "pagerank", WorkloadParams(scale=2e-3, iterations=2)
        ).program
        assert predict_flops(large) > predict_flops(small)


class TestPredictRuntimeSeconds:
    def test_combines_network_and_compute_terms(self):
        cluster = ClusterConfig(num_workers=2, threads_per_worker=2)
        clock = cluster.clock
        seconds = predict_runtime_seconds(1_000_000, 8_000_000, cluster)
        expected = 1_000_000 / clock.network_bytes_per_sec + 8_000_000 / (
            clock.dense_flops_per_sec * 4
        )
        assert seconds == pytest.approx(expected)

    def test_more_workers_predict_faster_compute(self):
        small = ClusterConfig(num_workers=2)
        large = ClusterConfig(num_workers=8)
        assert predict_runtime_seconds(0, 10**9, large) < predict_runtime_seconds(
            0, 10**9, small
        )


class TestBacklogAndSpjfIntegration:
    SHORT = {"scale": 5e-4, "iterations": 2}
    LONG = {"scale": 4e-3, "iterations": 4}

    def test_long_job_queues_behind_short_ones_under_spjf(self):
        """The satellite scenario: with SPJF on, a long job submitted
        *first* still dispatches after the short jobs it would delay."""
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("t"),), policy=AdmissionPolicy(spjf=True)
            )
        )
        service.submit(
            JobSpec(tenant="t", app="gnmf", params=self.LONG, label="long")
        )
        service.submit(
            JobSpec(tenant="t", app="pagerank", params=self.SHORT, label="short")
        )
        records = service.drain()
        assert [r.app for r in records] == ["short", "long"]
        long_record = records[-1]
        short_record = records[0]
        assert long_record.predicted_seconds > short_record.predicted_seconds

    def test_fifo_order_without_spjf(self):
        service = MatrixService(ServiceConfig(tenants=(TenantSpec("t"),)))
        service.submit(
            JobSpec(tenant="t", app="gnmf", params=self.LONG, label="long")
        )
        service.submit(
            JobSpec(tenant="t", app="pagerank", params=self.SHORT, label="short")
        )
        assert [r.app for r in service.drain()] == ["long", "short"]

    def test_priority_still_outranks_predicted_runtime(self):
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("t"),), policy=AdmissionPolicy(spjf=True)
            )
        )
        service.submit(
            JobSpec(
                tenant="t", app="gnmf", params=self.LONG,
                priority=5, label="urgent-long",
            )
        )
        service.submit(
            JobSpec(tenant="t", app="pagerank", params=self.SHORT, label="short")
        )
        assert [r.app for r in service.drain()] == ["urgent-long", "short"]

    def test_service_rejects_past_the_backlog_horizon(self):
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("t"),),
                policy=AdmissionPolicy(max_backlog_seconds=0.0015),
            )
        )
        first = service.submit(
            JobSpec(tenant="t", app="pagerank", params=self.SHORT)
        )
        second = service.submit(JobSpec(tenant="t", app="gnmf", params=self.LONG))
        assert first.decision in ("run", "queue")
        assert second.state == "rejected"
        assert second.reject_reason == "backlog"
        assert "backlog" in repr(service.rejection_error(second).reason)

    def test_records_publish_the_predicted_seconds(self):
        service = MatrixService(ServiceConfig(tenants=(TenantSpec("t"),)))
        record = service.submit(
            JobSpec(tenant="t", app="pagerank", params=self.SHORT)
        )
        assert record.predicted_seconds == pytest.approx(
            predict_runtime_seconds(
                record.predicted_bytes,
                record.predicted_flops,
                service.config.cluster,
            )
        )
        assert record.to_json_dict()["predicted_seconds"] == record.predicted_seconds


class TestServiceIntegration:
    def test_client_raises_typed_error_and_service_records_rejection(self):
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("tiny", memory_quota_bytes=1),), seed=0
            )
        )
        client = ServiceClient(service)
        with pytest.raises(TenantQuotaExceededError) as info:
            client.submit("tiny", "pagerank", params=PARAMS)
        assert info.value.tenant == "tiny"
        record = service.records[-1]
        assert record.state == "rejected"
        assert record.reject_reason == "memory-quota"
        assert service.accountant.account("tiny").jobs_rejected == 1

    def test_rejected_jobs_never_execute(self):
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("tiny", memory_quota_bytes=1),), seed=0
            )
        )
        service.submit(JobSpec(tenant="tiny", app="pagerank", params=PARAMS))
        assert service.drain() == []
        assert service.sim_now == 0.0

"""Admission control: quotas, ceilings, queue caps, typed rejections."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.errors import (
    AdmissionError,
    JobTooLargeError,
    QueueFullError,
    TenantQuotaExceededError,
)
from repro.programs.registry import WorkloadParams, build_workload
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    JobSpec,
    MatrixService,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
    predict_flops,
)
from repro.serve.plancache import plan_for_cache

PARAMS = {"scale": 5e-4, "iterations": 2, "rows": 300, "features": 30}


def make_entry(app="pagerank"):
    session = DMacSession(ClusterConfig(num_workers=4))
    workload = build_workload(app, WorkloadParams(**PARAMS))
    return plan_for_cache(session, workload.program)


def evaluate(policy=None, tenant=None, entry=None, **kwargs):
    controller = AdmissionController(policy or AdmissionPolicy())
    defaults = dict(service_queue_depth=0, tenant_queue_depth=0, idle=True)
    defaults.update(kwargs)
    return controller.evaluate(
        tenant or TenantSpec("t"), entry or make_entry(), **defaults
    )


class TestDecisions:
    def test_idle_cluster_runs(self):
        assert evaluate().action == "run"

    def test_busy_cluster_queues(self):
        assert evaluate(idle=False).action == "queue"

    def test_memory_quota_rejects(self):
        entry = make_entry()
        decision = evaluate(
            tenant=TenantSpec("t", memory_quota_bytes=1), entry=entry
        )
        assert decision.action == "reject"
        assert decision.reason == TenantQuotaExceededError.reason
        assert str(entry.predicted_peak_bytes) in decision.detail

    def test_byte_ceiling_rejects(self):
        decision = evaluate(policy=AdmissionPolicy(max_job_bytes=1))
        assert decision.action == "reject"
        assert decision.reason == JobTooLargeError.reason

    def test_flop_ceiling_rejects(self):
        decision = evaluate(policy=AdmissionPolicy(max_job_flops=1))
        assert decision.action == "reject"
        assert decision.reason == JobTooLargeError.reason

    def test_tenant_queue_cap_rejects(self):
        decision = evaluate(
            tenant=TenantSpec("t", max_queued_jobs=2), tenant_queue_depth=2
        )
        assert decision.action == "reject"
        assert decision.reason == QueueFullError.reason

    def test_service_queue_cap_rejects(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_queued_jobs=3), service_queue_depth=3
        )
        assert decision.reason == QueueFullError.reason

    def test_quota_outranks_queue_cap(self):
        decision = evaluate(
            policy=AdmissionPolicy(max_queued_jobs=0),
            tenant=TenantSpec("t", memory_quota_bytes=1),
            service_queue_depth=5,
        )
        assert decision.reason == TenantQuotaExceededError.reason

    def test_error_mapping(self):
        decision = evaluate(policy=AdmissionPolicy(max_job_bytes=1))
        error = AdmissionController.error_for(decision, "t")
        assert isinstance(error, JobTooLargeError)
        assert isinstance(error, AdmissionError)
        assert error.tenant == "t"
        assert error.reason == "job-too-large"


class TestPredictFlops:
    def test_positive_and_deterministic(self):
        program = build_workload("pagerank", WorkloadParams(**PARAMS)).program
        assert predict_flops(program) > 0
        assert predict_flops(program) == predict_flops(program)

    def test_scales_with_work(self):
        small = build_workload(
            "pagerank", WorkloadParams(scale=5e-4, iterations=2)
        ).program
        large = build_workload(
            "pagerank", WorkloadParams(scale=2e-3, iterations=2)
        ).program
        assert predict_flops(large) > predict_flops(small)


class TestServiceIntegration:
    def test_client_raises_typed_error_and_service_records_rejection(self):
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("tiny", memory_quota_bytes=1),), seed=0
            )
        )
        client = ServiceClient(service)
        with pytest.raises(TenantQuotaExceededError) as info:
            client.submit("tiny", "pagerank", params=PARAMS)
        assert info.value.tenant == "tiny"
        record = service.records[-1]
        assert record.state == "rejected"
        assert record.reject_reason == "memory-quota"
        assert service.accountant.account("tiny").jobs_rejected == 1

    def test_rejected_jobs_never_execute(self):
        service = MatrixService(
            ServiceConfig(
                tenants=(TenantSpec("tiny", memory_quota_bytes=1),), seed=0
            )
        )
        service.submit(JobSpec(tenant="tiny", app="pagerank", params=PARAMS))
        assert service.drain() == []
        assert service.sim_now == 0.0

"""Daemon protocol: socket round trips, typed rejections, protocol errors."""

import json
import socket
import threading

import pytest

from repro.errors import ServiceError, TenantQuotaExceededError
from repro.serve import (
    MatrixService,
    RemoteClient,
    ServiceConfig,
    TenantSpec,
    handle_request,
)
from repro.serve.daemon import request, serve_forever

PARAMS = {"scale": 5e-4, "iterations": 2}


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a tmp socket; shut down and joined on teardown."""
    service = MatrixService(
        ServiceConfig(
            tenants=(
                TenantSpec("a"),
                TenantSpec("tiny", memory_quota_bytes=1),
            ),
            seed=0,
        )
    )
    path = str(tmp_path / "repro.sock")
    ready = threading.Event()

    def run():
        ready.set()
        serve_forever(service, path)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    ready.wait()
    # serve_forever binds after the event; poll until the socket answers.
    client = RemoteClient(path, timeout=10.0)
    for _ in range(200):
        try:
            client.ping()
            break
        except (ConnectionRefusedError, FileNotFoundError):
            threading.Event().wait(0.01)
    else:
        pytest.fail("daemon never came up")
    yield client
    try:
        client.shutdown()
    except (ServiceError, ConnectionRefusedError, FileNotFoundError):
        pass
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestRoundTrips:
    def test_ping(self, daemon):
        response = daemon.ping()
        assert response["ok"] is True
        assert response["queued_jobs"] == 0
        assert response["simulated_seconds"] == 0.0

    def test_submit_drain_report(self, daemon):
        job = daemon.submit("a", "pagerank", params=PARAMS, label="pr")
        assert job["state"] in ("queued", "running")
        assert job["plan_cache"] == "miss"
        finished = daemon.drain()
        assert [record["job_id"] for record in finished] == [job["job_id"]]
        assert finished[0]["state"] == "done"
        report = daemon.report()
        assert report["job_states"]["done"] == 1
        assert report["jobs"][0]["app"] == "pr"  # label becomes display name

    def test_rejection_is_a_typed_error(self, daemon):
        with pytest.raises(TenantQuotaExceededError) as info:
            daemon.submit("tiny", "pagerank", params=PARAMS)
        assert info.value.tenant == "tiny"
        # The rejection is still on the books.
        assert daemon.report()["job_states"]["rejected"] == 1

    def test_many_requests_on_one_connection(self, daemon):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.settimeout(10.0)
            raw.connect(daemon.socket_path)
            reader = raw.makefile("rb")
            for _ in range(3):
                raw.sendall(json.dumps({"op": "ping"}).encode() + b"\n")
                assert json.loads(reader.readline())["ok"] is True


class TestProtocolErrors:
    def test_unknown_op(self, daemon):
        response = request(daemon.socket_path, {"op": "explode"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_unknown_tenant(self, daemon):
        with pytest.raises(ServiceError):
            daemon.submit("nobody", "pagerank", params=PARAMS)

    def test_bad_json_line(self, daemon):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.settimeout(10.0)
            raw.connect(daemon.socket_path)
            raw.sendall(b"this is not json\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is False
        assert response["reason"] == "protocol"
        # The daemon survives the bad line.
        assert daemon.ping()["ok"] is True

    def test_bad_submit_payload(self, daemon):
        response = request(
            daemon.socket_path, {"op": "submit", "tenant": "a"}
        )
        assert response["ok"] is False  # neither app nor program


class TestHandleRequest:
    def make_service(self):
        return MatrixService(
            ServiceConfig(tenants=(TenantSpec("a"),), seed=0)
        )

    def test_shutdown_stops_the_loop(self):
        response, keep = handle_request(self.make_service(), {"op": "shutdown"})
        assert response["ok"] is True
        assert keep is False

    def test_responses_are_json_serialisable(self):
        service = self.make_service()
        for op in ("ping", "report"):
            response, _ = handle_request(service, {"op": op})
            json.dumps(response, sort_keys=True)

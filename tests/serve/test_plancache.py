"""Plan cache: fingerprints, hits/misses/bypasses, LRU eviction."""

import dataclasses

from repro import ClusterConfig, DMacSession
from repro.planopt.structural import program_fingerprint
from repro.programs.registry import WorkloadParams, build_workload
from repro.serve.plancache import PlanCache, plan_for_cache

PARAMS = WorkloadParams(scale=5e-4, iterations=2, rows=300, features=30)


def entry_for(app, fingerprint="fp"):
    session = DMacSession(ClusterConfig(num_workers=4))
    workload = build_workload(app, PARAMS)
    entry = plan_for_cache(session, workload.program)
    return dataclasses.replace(entry, fingerprint=fingerprint)


class TestFingerprint:
    def test_identical_programs_share_a_fingerprint(self):
        a = build_workload("pagerank", PARAMS).program
        b = build_workload("pagerank", PARAMS).program
        assert program_fingerprint(a, workers=4) == program_fingerprint(b, workers=4)

    def test_different_programs_differ(self):
        a = build_workload("pagerank", PARAMS).program
        b = build_workload(
            "pagerank", dataclasses.replace(PARAMS, iterations=3)
        ).program
        assert program_fingerprint(a, workers=4) != program_fingerprint(b, workers=4)

    def test_knobs_are_part_of_the_key(self):
        program = build_workload("pagerank", PARAMS).program
        assert program_fingerprint(program, workers=4) != program_fingerprint(
            program, workers=8
        )

    def test_staged_programs_fingerprint(self):
        a = build_workload("powiter", WorkloadParams(rows=60)).program
        b = build_workload("powiter", WorkloadParams(rows=60)).program
        c = build_workload("powiter", WorkloadParams(rows=80)).program
        assert program_fingerprint(a) == program_fingerprint(b)
        assert program_fingerprint(a) != program_fingerprint(c)


class TestEntry:
    def test_entry_carries_predictions_and_hashes(self):
        entry = entry_for("pagerank")
        assert len(entry.plans) == 1
        assert not entry.staged
        assert entry.structural_hashes == (entry.plans[0].structural_hash(),)
        assert entry.predicted_bytes == entry.plans[0].predicted_bytes
        assert entry.predicted_peak_bytes > 0
        assert entry.predicted_flops > 0
        assert entry.plan_wall_seconds > 0

    def test_staged_entry_has_two_plans(self):
        session = DMacSession(ClusterConfig(num_workers=4))
        workload = build_workload("powiter", WorkloadParams(rows=60))
        entry = plan_for_cache(session, workload.program)
        assert entry.staged
        assert len(entry.plans) == 2
        assert len(entry.structural_hashes) == 2


class TestLRU:
    def test_hit_miss_counting(self):
        cache = PlanCache(max_entries=4)
        assert cache.lookup("a") is None
        cache.insert(entry_for("pagerank", "a"))
        assert cache.lookup("a") is not None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["bypasses"] == 0

    def test_disabled_cache_bypasses(self):
        cache = PlanCache(max_entries=0)
        assert not cache.enabled
        assert cache.lookup("a") is None
        cache.insert(entry_for("pagerank", "a"))
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["bypasses"] == 1
        assert stats["misses"] == 0

    def test_lru_eviction_prefers_stale_entries(self):
        cache = PlanCache(max_entries=2)
        entry = entry_for("pagerank")
        cache.insert(dataclasses.replace(entry, fingerprint="a"))
        cache.insert(dataclasses.replace(entry, fingerprint="b"))
        assert cache.lookup("a") is not None  # refresh a
        cache.insert(dataclasses.replace(entry, fingerprint="c"))  # evicts b
        assert cache.stats()["evictions"] == 1
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None
        assert cache.lookup("c") is not None

"""Stride scheduler: weighted shares, priorities, deterministic order."""

import pytest

from repro.errors import ServiceError
from repro.serve.job import JobRecord
from repro.serve.scheduler import StrideScheduler


def job(tenant, job_id, priority=0):
    return JobRecord(job_id=job_id, tenant=tenant, app="x", priority=priority)


def drain_order(scheduler, duration=1.0):
    order = []
    while True:
        record = scheduler.next_job()
        if record is None:
            return order
        scheduler.charge(record.tenant, duration)
        order.append(record)


class TestFairness:
    def test_equal_weights_alternate(self):
        scheduler = StrideScheduler({"a": 1.0, "b": 1.0})
        for i in range(4):
            scheduler.enqueue(job("a", i))
            scheduler.enqueue(job("b", 10 + i))
        tenants = [r.tenant for r in drain_order(scheduler)]
        assert tenants == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_weighted_shares_converge(self):
        # Dispatch only 60 of 120 queued jobs so every tenant stays
        # backlogged -- draining everything would equalise totals no
        # matter what the scheduler did.
        scheduler = StrideScheduler({"a": 1.0, "b": 2.0, "c": 1.0})
        for i in range(40):
            scheduler.enqueue(job("a", i))
            scheduler.enqueue(job("b", 100 + i))
            scheduler.enqueue(job("c", 200 + i))
        for _ in range(60):
            record = scheduler.next_job()
            scheduler.charge(record.tenant, 1.0)
        assert not scheduler.idle
        shares = scheduler.shares()
        entitled = scheduler.entitled_shares()
        for tenant in shares:
            assert shares[tenant] == pytest.approx(entitled[tenant], abs=0.05)

    def test_unequal_job_durations_still_fair(self):
        # Tenant a's jobs are 4x longer; stride charges by duration, so a
        # dispatches 4x fewer jobs but gets the same share of seconds.
        scheduler = StrideScheduler({"a": 1.0, "b": 1.0})
        for i in range(32):
            scheduler.enqueue(job("a", i))
            scheduler.enqueue(job("b", 100 + i))
        dispatched = {"a": 0, "b": 0}
        for _ in range(20):
            record = scheduler.next_job()
            dispatched[record.tenant] += 1
            scheduler.charge(record.tenant, 4.0 if record.tenant == "a" else 1.0)
        shares = scheduler.shares()
        assert shares["a"] == pytest.approx(0.5, abs=0.1)
        assert dispatched["b"] > dispatched["a"]

    def test_returning_tenant_gets_no_banked_credit(self):
        scheduler = StrideScheduler({"a": 1.0, "b": 1.0})
        for i in range(10):
            scheduler.enqueue(job("b", i))
        for _ in range(6):
            scheduler.charge("b", 1.0)
            scheduler.next_job()
        # a was idle the whole time; on arrival it must not monopolise.
        for i in range(10):
            scheduler.enqueue(job("a", 100 + i))
        first_four = []
        for _ in range(4):
            record = scheduler.next_job()
            scheduler.charge(record.tenant, 1.0)
            first_four.append(record.tenant)
        assert first_four.count("a") <= 2


class TestOrdering:
    def test_priority_orders_within_tenant(self):
        scheduler = StrideScheduler({"a": 1.0})
        scheduler.enqueue(job("a", 1, priority=0))
        scheduler.enqueue(job("a", 2, priority=5))
        scheduler.enqueue(job("a", 3, priority=5))
        ids = [r.job_id for r in drain_order(scheduler)]
        assert ids == [2, 3, 1]  # high priority first, FIFO ties

    def test_tie_break_is_tenant_name(self):
        scheduler = StrideScheduler({"b": 1.0, "a": 1.0})
        scheduler.enqueue(job("b", 1))
        scheduler.enqueue(job("a", 2))
        assert scheduler.next_job().tenant == "a"

    def test_queue_depths(self):
        scheduler = StrideScheduler({"a": 1.0, "b": 1.0})
        scheduler.enqueue(job("a", 1))
        scheduler.enqueue(job("a", 2))
        scheduler.enqueue(job("b", 3))
        assert scheduler.queue_depth() == 3
        assert scheduler.queue_depth("a") == 2
        assert not scheduler.idle

    def test_unknown_tenant_raises(self):
        scheduler = StrideScheduler({"a": 1.0})
        with pytest.raises(ServiceError):
            scheduler.enqueue(job("nope", 1))
        with pytest.raises(ServiceError):
            scheduler.charge("nope", 1.0)
        with pytest.raises(ServiceError):
            scheduler.queue_depth("nope")

"""End-to-end service behaviour: determinism, fairness, tenant isolation."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.frontend import Matrix, matrix_input, matrix_program
from repro.frontend.dsl import output
from repro.serve import (
    JobSpec,
    MatrixService,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
    parse_batch,
    render_report,
    run_batch,
    synthetic_batch,
)

SMALL = {"scale": 5e-4, "iterations": 2, "rows": 300, "features": 30}


def small_batch(seed=7, **kwargs):
    batch = synthetic_batch(seed, **kwargs)
    for job in batch["jobs"]:
        job["params"].update(SMALL)
    return batch


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        texts = []
        for _ in range(2):
            service, report = run_batch(*parse_batch(small_batch()))
            texts.append(render_report(report))
        assert texts[0] == texts[1]

    def test_reports_never_leak_nondeterministic_readings(self):
        # Wall clock and the realised memory peak both depend on real
        # thread timing; the report must carry neither (it publishes the
        # verifier's predicted peak instead).
        service, report = run_batch(*parse_batch(small_batch(jobs_per_tenant=1)))
        for job in report["jobs"]:
            assert "wall" not in " ".join(job)
            assert "peak_memory_bytes" not in job
            assert job["predicted_peak_bytes"] > 0
        record = service.records[0]
        assert record.plan_wall_seconds > 0  # measured, just not serialised
        assert record.run_wall_seconds > 0
        assert record.peak_memory_bytes > 0

    def test_different_seeds_differ(self):
        __, a = run_batch(*parse_batch(small_batch(seed=1)))
        __, b = run_batch(*parse_batch(small_batch(seed=2)))
        assert render_report(a) != render_report(b)


class TestPlanCache:
    def test_repeat_submission_hits(self):
        config = ServiceConfig(tenants=(TenantSpec("t"),), seed=0)
        service = MatrixService(config)
        client = ServiceClient(service)
        first = client.run("t", "pagerank", params=SMALL)
        second = client.run("t", "pagerank", params=SMALL)
        assert first.plan_cache == "miss"
        assert second.plan_cache == "hit"
        assert first.plan_hashes == second.plan_hashes
        # A hit skips planning entirely: its plan path is just fingerprint
        # + lookup, which must be far cheaper than actual planning.
        assert second.plan_wall_seconds < first.plan_wall_seconds
        # Identical program, identical plans: identical execution metrics.
        assert second.comm_bytes == first.comm_bytes
        assert second.flops == first.flops

    def test_hit_and_miss_counts_reach_the_report(self):
        __, report = run_batch(*parse_batch(small_batch(mix="cache-friendly")))
        stats = report["plan_cache"]
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["hits"] + stats["misses"] == len(report["jobs"])

    def test_cache_off_bypasses(self):
        batch = small_batch(jobs_per_tenant=1)
        batch["plan_cache_entries"] = 0
        __, report = run_batch(*parse_batch(batch))
        assert report["plan_cache"]["bypasses"] == len(report["jobs"])
        assert report["plan_cache"]["hits"] == 0


class TestFairness:
    def test_saturating_load_shares_within_tolerance(self):
        # Saturating 3-tenant load, equal weights: submit everything up
        # front, drain on a truncated horizon, require each tenant's share
        # of simulated seconds within 10% of its entitlement.
        config = ServiceConfig(
            tenants=(TenantSpec("a"), TenantSpec("b"), TenantSpec("c")),
            seed=0,
        )
        service = MatrixService(config)
        for tenant in ("a", "b", "c"):
            for __ in range(8):
                service.submit(
                    JobSpec(tenant=tenant, app="pagerank", params=SMALL)
                )
        # Truncate at roughly half the backlog so every tenant still has
        # queued work when we measure -- the load stays saturating.
        service.drain(horizon_seconds=6.0)
        assert not service.scheduler.idle
        shares = service.scheduler.shares()
        entitled = service.scheduler.entitled_shares()
        for tenant, share in shares.items():
            assert share == pytest.approx(entitled[tenant], abs=0.10), shares

    def test_weights_shift_shares(self):
        config = ServiceConfig(
            tenants=(TenantSpec("heavy", weight=3.0), TenantSpec("light")),
            seed=0,
        )
        service = MatrixService(config)
        for tenant in ("heavy", "light"):
            for __ in range(8):
                service.submit(
                    JobSpec(tenant=tenant, app="pagerank", params=SMALL)
                )
        service.drain(horizon_seconds=3.0)
        assert not service.scheduler.idle
        shares = service.scheduler.shares()
        assert shares["heavy"] > 0.6 > shares["light"]


class TestIsolation:
    def test_quota_tenant_rejected_without_affecting_others(self):
        # Solo run: tenant "ok" alone.
        solo = MatrixService(
            ServiceConfig(tenants=(TenantSpec("ok"),), seed=3)
        )
        solo_client = ServiceClient(solo)
        solo_record = solo_client.run("ok", "pagerank", params=SMALL)
        # Mixed run: same seed, plus a tenant whose quota rejects its job.
        mixed = MatrixService(
            ServiceConfig(
                tenants=(
                    TenantSpec("ok"),
                    TenantSpec("tiny", memory_quota_bytes=1),
                ),
                seed=3,
            )
        )
        mixed.submit(JobSpec(tenant="tiny", app="pagerank", params=SMALL))
        mixed.submit(JobSpec(tenant="ok", app="pagerank", params=SMALL))
        mixed.drain()
        mixed_record = next(r for r in mixed.records if r.tenant == "ok")
        assert mixed.records[0].state == "rejected"
        # The bystander's measured execution is byte-identical to its solo
        # run: same bytes, flops, simulated time, predictions, plan hashes.
        assert mixed_record.comm_bytes == solo_record.comm_bytes
        assert mixed_record.flops == solo_record.flops
        assert mixed_record.simulated_seconds == solo_record.simulated_seconds
        assert (
            mixed_record.predicted_peak_bytes == solo_record.predicted_peak_bytes
        )
        assert mixed_record.plan_hashes == solo_record.plan_hashes

    def test_per_tenant_ledgers_are_isolated(self):
        service, report = run_batch(*parse_batch(small_batch(jobs_per_tenant=1)))
        for tenant, scopes in report["ledger_scopes"].items():
            for scope in scopes:
                assert scope.startswith(f"tenant:{tenant}/"), (tenant, scope)

    def test_cache_quota_flows_into_session_config(self):
        config = ServiceConfig(
            tenants=(TenantSpec("t", cache_quota_bytes=12345),), seed=0
        )
        service = MatrixService(config)
        assert service.sessions["t"].config.cache_limit_bytes == 12345


class TestPrograms:
    def test_submit_frontend_program_object(self):
        @matrix_program
        def scaled(A: Matrix):
            B = A * 2.0
            output(B)

        rng = np.random.default_rng(0)
        service = MatrixService(
            ServiceConfig(tenants=(TenantSpec("t"),), seed=0)
        )
        client = ServiceClient(service)
        record = client.run(
            "t",
            program=scaled,
            inputs={"A": rng.random((100, 100))},
            params={"A": matrix_input((100, 100))},
            label="scaled",
        )
        assert record.state == "done"
        assert record.app == "scaled"

    def test_staged_jobs_run_through_cached_plans(self):
        service = MatrixService(
            ServiceConfig(tenants=(TenantSpec("t"),), seed=0)
        )
        client = ServiceClient(service)
        first = client.run("t", "powiter", params={"rows": 60})
        second = client.run("t", "powiter", params={"rows": 60})
        assert first.plan_cache == "miss" and second.plan_cache == "hit"
        assert first.segments == second.segments
        assert len(first.plan_hashes) == 2  # prologue + body

    def test_accounts_aggregate_job_costs(self):
        service, report = run_batch(*parse_batch(small_batch(jobs_per_tenant=2)))
        for name, account in report["accounts"].items():
            records = [r for r in service.records if r.tenant == name]
            assert account["jobs_submitted"] == len(records)
            assert account["comm_bytes"] == sum(r.comm_bytes for r in records)
            assert account["flops"] == sum(r.flops for r in records)

"""Tests for the cluster-size advisor and the execution trace."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.advisor import (
    advise_workers,
    best_worker_count,
    estimate_program_flops,
)
from repro.config import ClockConfig
from repro.datasets import sparse_random
from repro.errors import ExecutionError, PlanError
from repro.lang.program import ProgramBuilder
from repro.programs import build_gnmf_program, build_linreg_program


class TestFlopEstimate:
    def test_single_dense_matmul(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 20))
        b = pb.load("B", (20, 5))
        pb.output(pb.assign("C", a @ b))
        assert estimate_program_flops(pb.build()) == 2 * 10 * 20 * 5

    def test_sparse_matmul_discounted(self):
        pb = ProgramBuilder()
        a = pb.load("A", (10, 20), sparsity=0.1)
        b = pb.load("B", (20, 5))
        pb.output(pb.assign("C", a @ b))
        assert estimate_program_flops(pb.build()) == int(2 * 10 * 20 * 5 * 0.1)

    def test_cellwise_counted(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a + a))
        assert estimate_program_flops(pb.build()) == 64


class TestAdvice:
    def test_compute_shrinks_with_workers(self):
        program = build_gnmf_program((256, 128), 0.1, factors=8, iterations=2)
        advice = advise_workers(program, (2, 4, 8))
        computes = [a.predicted_compute_seconds for a in advice]
        assert computes == sorted(computes, reverse=True)

    def test_advice_sorted_and_deduped(self):
        program = build_linreg_program((200, 20), 0.2, iterations=2)
        advice = advise_workers(program, (8, 2, 8, 4))
        assert [a.workers for a in advice] == [2, 4, 8]

    def test_best_worker_count_balances_comm_and_compute(self):
        """With a slow network, broadcast-heavy plans favour fewer workers;
        with a fast one, compute parallelism wins."""
        program = build_gnmf_program((512, 256), 0.1, factors=16, iterations=2)
        slow_net = advise_workers(
            program, (2, 16), clock=ClockConfig(network_bytes_per_sec=1e4)
        )
        fast_net = advise_workers(
            program, (2, 16), clock=ClockConfig(network_bytes_per_sec=1e12,
                                                dense_flops_per_sec=1e6)
        )
        assert best_worker_count(slow_net) == 2
        assert best_worker_count(fast_net) == 16

    def test_empty_candidates_rejected(self):
        program = build_linreg_program((50, 10), 0.2, iterations=1)
        with pytest.raises(PlanError):
            advise_workers(program, ())
        with pytest.raises(PlanError):
            best_worker_count([])

    def test_advice_matches_replanning(self):
        program = build_gnmf_program((128, 96), 0.1, factors=8, iterations=1)
        from repro.core.planner import DMacPlanner

        for entry in advise_workers(program, (2, 4)):
            plan = DMacPlanner(program, entry.workers).plan()
            assert entry.predicted_comm_bytes == plan.predicted_bytes


class TestExecutionTrace:
    def run_traced(self):
        data = sparse_random(64, 48, 0.1, seed=0, ensure_coverage=True)
        program = build_gnmf_program((64, 48), 0.1, factors=4, iterations=1)
        session = DMacSession(ClusterConfig(4, 1, block_size=16))
        return session.run(program, {"V": data}, trace=True)

    def test_trace_covers_all_steps(self):
        result = self.run_traced()
        assert result.trace is not None
        assert len(result.trace) > 0
        assert all(record.stage >= 1 for record in result.trace)

    def test_trace_comm_sums_to_total(self):
        result = self.run_traced()
        assert sum(r.comm_bytes for r in result.trace) == result.comm_bytes

    def test_comm_by_stage(self):
        result = self.run_traced()
        by_stage = result.comm_by_stage()
        assert sum(by_stage.values()) == result.comm_bytes

    def test_untraced_run_has_no_trace(self):
        data = sparse_random(32, 24, 0.2, seed=1, ensure_coverage=True)
        program = build_gnmf_program((32, 24), 0.2, factors=4, iterations=1)
        result = DMacSession(ClusterConfig(4, 1, block_size=8)).run(program, {"V": data})
        assert result.trace is None
        with pytest.raises(ExecutionError):
            result.comm_by_stage()

    def test_trace_flops_positive_for_compute_steps(self):
        result = self.run_traced()
        matmul_records = [r for r in result.trace if "rmm" in r.step or "cpmm" in r.step]
        assert matmul_records
        assert all(r.flops > 0 for r in matmul_records)

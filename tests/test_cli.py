"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gnmf"])
        assert args.app == "gnmf"
        assert args.workers == 4
        assert not args.compare

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "kmeans"])

    def test_plan_dot_flag(self):
        args = build_parser().parse_args(["plan", "gnmf", "--dot"])
        assert args.dot


class TestRunCommand:
    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "gnmf", "--scale", "1.5e-3", "--iterations", "1", "--factors", "4"],
            ["run", "pagerank", "--scale", "1e-4", "--iterations", "2"],
            ["run", "linreg", "--rows", "200", "--features", "20", "--iterations", "2"],
            ["run", "cf", "--scale", "1e-3"],
            ["run", "svd", "--scale", "1.5e-3", "--rank", "3"],
        ],
    )
    def test_every_app_runs(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "DMac" in out
        assert "communication" in out

    def test_compare_runs_baseline(self, capsys):
        assert main(
            ["run", "gnmf", "--scale", "1.5e-3", "--iterations", "1",
             "--factors", "4", "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "SystemML-S baseline" in out
        assert "x DMac" in out

    def test_svd_prints_singular_values(self, capsys):
        main(["run", "svd", "--scale", "1.5e-3", "--rank", "3"])
        assert "singular values" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_listing(self, capsys):
        assert main(["plan", "gnmf", "--iterations", "1", "--factors", "4",
                     "--scale", "1.5e-3"]) == 0
        out = capsys.readouterr().out
        assert "-- stage 1 --" in out
        assert "predicted" in out

    def test_plan_dot(self, capsys):
        assert main(["plan", "pagerank", "--scale", "1e-4", "--iterations", "1",
                     "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph plan {")

    def test_workers_flag_respected(self, capsys):
        main(["plan", "gnmf", "--iterations", "1", "--factors", "4",
              "--scale", "1.5e-3", "--workers", "2"])
        assert "stage" in capsys.readouterr().out


class TestStagesCommand:
    def test_stages_listing(self, capsys):
        assert main(["stages", "gnmf", "--iterations", "1", "--factors", "4",
                     "--scale", "1.5e-3"]) == 0
        out = capsys.readouterr().out
        assert "stage graph:" in out
        assert "critical path" in out
        assert "node 0" in out

    def test_stages_json(self, capsys):
        import json

        assert main(["stages", "pagerank", "--scale", "1e-4",
                     "--iterations", "1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == "pagerank"
        assert payload["num_nodes"] >= 1
        assert payload["critical_path"]
        for node in payload["nodes"]:
            assert {"index", "stage", "deps", "steps"} <= set(node)

    def test_stages_script_target(self, tmp_path, capsys):
        path = tmp_path / "prog.dml"
        path.write_text(
            "A = load(16, 16)\nB = A %*% A\noutput(B)\n"
        )
        assert main(["stages", str(path)]) == 0
        assert "stage graph:" in capsys.readouterr().out

    def test_stages_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["stages", "kmeans"])


class TestScriptCommand:
    def write_script(self, tmp_path, text):
        path = tmp_path / "prog.dml"
        path.write_text(text)
        return str(path)

    def test_runs_script_with_npy_binding(self, tmp_path, capsys):
        import numpy as np

        np.save(tmp_path / "A.npy", np.random.default_rng(0).random((8, 8)))
        script = self.write_script(
            tmp_path, "A = load(8, 8)\nB = A %*% A\noutput(B)\n"
        )
        assert main(["script", script, "--bind", f"A={tmp_path / 'A.npy'}"]) == 0
        out = capsys.readouterr().out
        assert "matrix B" in out

    def test_runs_script_with_repro_npz_binding(self, tmp_path, capsys):
        import numpy as np

        from repro.config import ClusterConfig
        from repro.matrix.distributed import DistributedMatrix
        from repro.matrix.io import save_matrix
        from repro.rdd.context import ClusterContext

        ctx = ClusterContext(ClusterConfig(num_workers=2))
        array = np.random.default_rng(1).random((6, 6))
        save_matrix(tmp_path / "A.npz", DistributedMatrix.from_numpy(ctx, array, 3))
        script = self.write_script(tmp_path, "A = load(6, 6)\nB = A + A\noutput(B)\n")
        assert main(["script", script, "--bind", f"A={tmp_path / 'A.npz'}"]) == 0
        assert "matrix B" in capsys.readouterr().out

    def test_scalar_outputs_printed(self, tmp_path, capsys):
        script = self.write_script(
            tmp_path, "A = random(4, 4)\ns = sum(A)\noutputScalar(s)\n"
        )
        assert main(["script", script]) == 0
        assert "scalar s" in capsys.readouterr().out

    def test_unknown_binding_rejected(self, tmp_path):
        script = self.write_script(tmp_path, "A = random(4, 4)\noutput(A)\n")
        with pytest.raises(SystemExit):
            main(["script", script, "--bind", "ghost=/nonexistent.npy"])


def test_jacobi_app_runs(capsys):
    assert main(["run", "jacobi", "--rows", "60", "--iterations", "5"]) == 0
    assert "DMac jacobi" in capsys.readouterr().out

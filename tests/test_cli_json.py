"""Audit of the CLI's machine-readable contract: every ``--format json``
subcommand prints *exactly one* parseable JSON document on stdout, with
any human-readable progress on stderr."""

import json

import pytest

from repro.cli import main

#: One representative invocation per JSON-capable subcommand, kept small.
JSON_COMMANDS = {
    "run": ["run", "pagerank", "--scale", "1e-3", "--iterations", "2",
            "--format", "json"],
    "run-trace": ["run", "linreg", "--rows", "120", "--features", "12",
                  "--iterations", "2", "--trace", "--format", "json"],
    "plan": ["plan", "gnmf", "--scale", "1e-3", "--iterations", "1",
             "--factors", "4", "--format", "json"],
    "stages": ["stages", "gnmf", "--scale", "1e-3", "--iterations", "1",
               "--factors", "4", "--format", "json"],
    "lint": ["lint", "pagerank", "--scale", "1e-3", "--iterations", "2",
             "--format", "json"],
    "verify": ["verify", "gnmf", "--scale", "1e-3", "--iterations", "2",
               "--factors", "4", "--format", "json"],
    "verify-execute": ["verify", "linreg", "--rows", "120", "--features", "12",
                       "--iterations", "2", "--execute", "--format", "json"],
    "chaos": ["chaos", "pagerank", "--scale", "1e-3", "--iterations", "2",
              "--seed", "7", "--faults", "flaky:p=0.3", "--format", "json"],
    "trace": ["trace", "pagerank", "--scale", "1e-3", "--iterations", "2",
              "--format", "json"],
    "trace-chrome": ["trace", "linreg", "--rows", "120", "--features", "12",
                     "--iterations", "2", "--format", "chrome"],
}


@pytest.mark.parametrize("argv", JSON_COMMANDS.values(),
                         ids=JSON_COMMANDS.keys())
def test_stdout_is_exactly_one_json_document(argv, capsys):
    code = main(argv)
    assert code == 0
    out, err = capsys.readouterr()
    document = json.loads(out)  # the whole of stdout parses as one doc
    assert isinstance(document, dict)
    for line in err.splitlines():  # progress lines are prose, not JSON
        with pytest.raises(json.JSONDecodeError):
            json.loads(line)


def test_trace_out_writes_the_document_to_a_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    argv = ["trace", "pagerank", "--scale", "1e-3", "--iterations", "2",
            "--format", "chrome", "--out", str(path)]
    assert main(argv) == 0
    out, __ = capsys.readouterr()
    assert out == ""  # --out leaves stdout clean
    document = json.loads(path.read_text())
    assert document["otherData"]["clock"] == "simulated"


def test_verify_parse_error_exits_2(tmp_path, capsys):
    bad = tmp_path / "broken.dml"
    bad.write_text("H = ???~~~(")
    assert main(["verify", str(bad)]) == 2
    out, err = capsys.readouterr()
    assert out == ""  # nothing but JSON ever reaches stdout
    assert "parse error" in err


def test_verify_hazards_exit_1_and_mark_the_document(capsys, monkeypatch):
    import dataclasses

    import repro.verify as verify_mod
    from repro.verify import READ_BEFORE_PUBLISH, Hazard

    real = verify_mod.verify_plan

    def hazardous(plan, **kwargs):
        report = real(plan, **kwargs)
        injected = Hazard(kind=READ_BEFORE_PUBLISH, step=0, subject="X",
                          detail="injected for the exit-code contract")
        return dataclasses.replace(report, hazards=(injected,))

    monkeypatch.setattr(verify_mod, "verify_plan", hazardous)
    code = main(["verify", "gnmf", "--scale", "1e-3", "--iterations", "1",
                 "--factors", "4", "--format", "json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    assert document["hazards"][0]["kind"] == READ_BEFORE_PUBLISH


def test_run_without_trace_has_no_trace_key(capsys):
    argv = ["run", "pagerank", "--scale", "1e-3", "--iterations", "2",
            "--format", "json"]
    assert main(argv) == 0
    document = json.loads(capsys.readouterr().out)
    assert "trace" not in document


def test_run_with_trace_reports_reconciliation(capsys):
    argv = ["run", "pagerank", "--scale", "1e-3", "--iterations", "2",
            "--trace", "--format", "json"]
    assert main(argv) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["trace"]["reconciled"] is True
    assert (
        document["trace"]["metrics"]["counters"]["bytes.total"]
        == document["comm_bytes"]
    )

"""Concurrent sessions: independent DMacSessions running in parallel
threads must behave exactly like solo runs.

This is the substrate the serving layer stands on: per-tenant sessions
share nothing but code, the ledger's contextvars scopes follow each
dispatching thread into the stage pool, and every run's refcounted
matrices drain to zero no matter how many runs are in flight."""

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from unittest import mock

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.programs.registry import WorkloadParams, build_workload
from repro.runtime.resources import ResourceManager

PARAMS = WorkloadParams(scale=5e-4, iterations=2, rows=300, features=30)
APPS = ("pagerank", "linreg", "jacobi")


def run_app(app, label=None):
    """One complete session run; returns (result, session)."""
    session = DMacSession(ClusterConfig(num_workers=4))
    workload = build_workload(app, PARAMS)
    if label is None:
        result = session.run(workload.program, workload.inputs, trace=True)
    else:
        with session.context.ledger.scope(label):
            result = session.run(workload.program, workload.inputs, trace=True)
    return result, session


class TestParallelRuns:
    def test_concurrent_runs_match_solo_baselines(self):
        baselines = {app: run_app(app)[0] for app in APPS}
        jobs = [APPS[i % len(APPS)] for i in range(6)]
        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            results = list(pool.map(lambda app: run_app(app)[0], jobs))
        for app, result in zip(jobs, results):
            base = baselines[app]
            assert result.comm_bytes == base.comm_bytes
            assert result.simulated_seconds == base.simulated_seconds
            assert result.num_stages == base.num_stages
            # (peak_memory_bytes is intentionally not compared: intra-run
            # stage overlap shifts under machine load, so the realised peak
            # of a *concurrently running* session may differ.)
            assert sorted(r.flops for r in result.trace) == sorted(
                r.flops for r in base.trace
            )
            for name, matrix in base.matrices.items():
                np.testing.assert_array_equal(result.matrices[name], matrix)

    def test_ledger_and_clock_isolation(self):
        # Each thread's bytes land only in its own session's ledger, under
        # its own scope, and each clock advances by exactly its own run.
        def run_scoped(index):
            app = APPS[index % len(APPS)]
            result, session = run_app(app, label=f"thread-{index}")
            return index, result, session

        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(run_scoped, range(4)))
        for index, result, session in outcomes:
            by_scope = session.context.ledger.bytes_by_scope()
            assert sum(by_scope.values()) == result.comm_bytes
            for scope in by_scope:
                assert scope.startswith(f"thread-{index}"), scope
            assert session.context.clock.elapsed_seconds == (
                result.simulated_seconds
            )

    def test_refcounts_drain_under_concurrency(self):
        # Reuse the lifecycle-audit idiom from tests/runtime: record every
        # ResourceManager the concurrent runs create, then check each run
        # published and released every instance exactly once.
        managers = []
        real_init = ResourceManager.__init__

        class Recording(ResourceManager):
            def __init__(self, *args, **kwargs):
                real_init(self, *args, **kwargs)
                managers.append(self)

        with mock.patch("repro.runtime.executor.ResourceManager", Recording):
            with ThreadPoolExecutor(max_workers=3) as pool:
                list(pool.map(lambda app: run_app(app)[0], APPS))
        assert len(managers) == len(APPS)
        for manager in managers:
            assert manager.events_dropped == 0
            published = Counter(i for kind, i in manager.events if kind == "publish")
            released = Counter(i for kind, i in manager.events if kind == "release")
            assert all(count == 1 for count in published.values())
            assert released == published
            assert manager.live_instances() == []

    def test_one_session_is_reusable_across_sequential_runs(self):
        # Metrics accumulate on the session; per-run deltas stay exact.
        session = DMacSession(ClusterConfig(num_workers=4))
        workload = build_workload("pagerank", PARAMS)
        first = session.run(workload.program, workload.inputs)
        second = session.run(workload.program, workload.inputs)
        assert first.comm_bytes == second.comm_bytes
        assert session.context.ledger.total_bytes == (
            first.comm_bytes + second.comm_bytes
        )

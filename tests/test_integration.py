"""End-to-end integration tests across the whole stack: sessions, all five
applications, DMac vs SystemML-S comparability, scalability shapes."""

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.baselines.rlocal import run_local
from repro.datasets import graph_like, netflix_like, row_normalize, sparse_random
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_linreg_program,
    build_pagerank_program,
    build_svd_program,
    singular_values,
)


def fresh(workers=4, block=32):
    return DMacSession(ClusterConfig(num_workers=workers, threads_per_worker=1, block_size=block))


class TestAllApplicationsAgree:
    """DMac, SystemML-S and single-machine numpy must produce the same
    numbers for every application -- only the communication differs."""

    def test_gnmf(self):
        data = netflix_like(scale=1.5e-3, seed=1)
        density = np.count_nonzero(data) / data.size
        program = build_gnmf_program(data.shape, density, factors=6, iterations=3)
        dmac = fresh().run(program, {"V": data})
        systemml = fresh().run_systemml(program, {"V": data})
        local = run_local(program, {"V": data})
        for name in program.outputs:
            np.testing.assert_allclose(dmac.matrices[name], local.matrices[name], atol=1e-8)
            np.testing.assert_allclose(systemml.matrices[name], local.matrices[name], atol=1e-8)
        assert dmac.comm_bytes < systemml.comm_bytes

    def test_pagerank(self):
        link = row_normalize(graph_like("soc-pokec", scale=2e-4, seed=2))
        density = np.count_nonzero(link) / link.size
        program = build_pagerank_program(link.shape[0], density, iterations=4)
        dmac = fresh().run(program, {"link": link})
        systemml = fresh().run_systemml(program, {"link": link})
        name = program.bindings["rank"]
        np.testing.assert_allclose(dmac.matrices[name], systemml.matrices[name], atol=1e-9)
        assert dmac.comm_bytes < systemml.comm_bytes

    def test_linreg(self):
        design = sparse_random(300, 40, 0.1, seed=3)
        target = sparse_random(300, 1, 1.0, seed=4)
        program = build_linreg_program((300, 40), 0.1, iterations=4)
        inputs = {"V": design, "y": target}
        dmac = fresh().run(program, inputs)
        systemml = fresh().run_systemml(program, inputs)
        name = program.bindings["w"]
        np.testing.assert_allclose(dmac.matrices[name], systemml.matrices[name], atol=1e-7)
        assert dmac.comm_bytes < systemml.comm_bytes

    def test_cf(self):
        ratings = netflix_like(scale=1e-3, seed=5).T
        density = np.count_nonzero(ratings) / ratings.size
        program = build_cf_program(ratings.shape, density)
        dmac = fresh().run(program, {"R": ratings})
        systemml = fresh().run_systemml(program, {"R": ratings})
        name = program.bindings["predict"]
        np.testing.assert_allclose(dmac.matrices[name], systemml.matrices[name], atol=1e-9)
        assert dmac.comm_bytes <= systemml.comm_bytes

    def test_svd(self):
        data = sparse_random(100, 30, 0.3, seed=6)
        program, names = build_svd_program((100, 30), 0.3, rank=6)
        dmac = fresh().run(program, {"V": data})
        estimated = singular_values(dmac.scalars, names)
        true = np.linalg.svd(data, compute_uv=False)
        assert estimated[0] == pytest.approx(true[0], rel=1e-3)


class TestScalabilityShapes:
    def test_gnmf_gap_grows_with_data(self):
        """Figure 10(a): the DMac/SystemML-S gap widens as V grows."""
        gaps = []
        for rows in (64, 256):
            data = sparse_random(rows, 64, 0.05, seed=7, ensure_coverage=True)
            density = np.count_nonzero(data) / data.size
            program = build_gnmf_program((rows, 64), density, factors=4, iterations=2)
            dmac = fresh(block=16).run(program, {"V": data})
            systemml = fresh(block=16).run_systemml(program, {"V": data})
            gaps.append(systemml.comm_bytes - dmac.comm_bytes)
        assert gaps[1] > gaps[0]

    def test_more_workers_shorter_simulated_time(self):
        """Figure 10(c): compute time shrinks with the worker count."""
        data = sparse_random(256, 64, 0.1, seed=8, ensure_coverage=True)
        density = np.count_nonzero(data) / data.size
        program = build_gnmf_program((256, 64), density, factors=4, iterations=2)
        few = fresh(workers=2, block=16).run(program, {"V": data})
        many = fresh(workers=8, block=16).run(program, {"V": data})
        assert many.time.compute_seconds < few.time.compute_seconds


class TestHeuristicAblation:
    def test_heuristics_never_hurt(self):
        data = netflix_like(scale=1.5e-3, seed=9)
        density = np.count_nonzero(data) / data.size
        program = build_gnmf_program(data.shape, density, factors=6, iterations=2)
        full = DMacSession(ClusterConfig(4, 1, block_size=32)).run(program, {"V": data})
        bare_session = DMacSession(
            ClusterConfig(4, 1, block_size=32),
            pull_up_broadcast=False,
            re_assignment=False,
        )
        bare = bare_session.run(program, {"V": data})
        assert full.comm_bytes <= bare.comm_bytes
        name = program.bindings["H"]
        np.testing.assert_allclose(full.matrices[name], bare.matrices[name], atol=1e-8)


class TestSessionBehaviour:
    def test_plan_reuse(self):
        data = sparse_random(64, 32, 0.2, seed=10, ensure_coverage=True)
        program = build_gnmf_program((64, 32), 0.2, factors=4, iterations=1)
        session = fresh(block=16)
        plan = session.plan(program)
        first = session.run(program, {"V": data}, plan=plan)
        second = session.run(program, {"V": data}, plan=plan)
        np.testing.assert_allclose(
            first.matrices[program.bindings["H"]],
            second.matrices[program.bindings["H"]],
        )
        assert first.comm_bytes == second.comm_bytes

    def test_metrics_are_per_run_deltas(self):
        data = sparse_random(64, 32, 0.2, seed=11, ensure_coverage=True)
        program = build_gnmf_program((64, 32), 0.2, factors=4, iterations=1)
        session = fresh(block=16)
        first = session.run(program, {"V": data})
        second = session.run(program, {"V": data})
        assert second.comm_bytes == pytest.approx(first.comm_bytes, rel=0.01)

"""Repository integrity guards: docs, benchmark registry, examples stay in
sync with the code."""

import ast
import pathlib
import re


REPO = pathlib.Path(__file__).resolve().parent.parent


class TestBenchmarkRegistry:
    def test_run_all_maps_to_existing_files(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "run_all", REPO / "benchmarks" / "run_all.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for name, filename in module.EXPERIMENTS.items():
            assert (REPO / "benchmarks" / filename).exists(), (name, filename)

    def test_every_bench_file_is_registered(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "run_all", REPO / "benchmarks" / "run_all.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        registered = set(module.EXPERIMENTS.values())
        on_disk = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        assert on_disk == registered

    def test_every_bench_uses_the_benchmark_fixture(self):
        """`--benchmark-only` skips tests without the fixture; a bench that
        silently never runs is worse than a failing one."""
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.FunctionDef) and node.name.startswith("test_"):
                    args = [a.arg for a in node.args.args]
                    assert "benchmark" in args, f"{path.name}::{node.name}"


class TestDocumentation:
    def test_readme_python_blocks_compile(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert blocks, "README should contain python examples"
        for block in blocks:
            compile(block, "<readme>", "exec")

    def test_design_mentions_every_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for path in (REPO / "benchmarks").glob("bench_fig*.py"):
            assert path.name in design, path.name

    def test_experiments_covers_every_figure_and_table(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for artefact in ("Figure 6", "Figure 7", "Figure 8", "Figure 9(a)",
                         "Figure 9(b)", "Figure 10(a,b)", "Figure 10(c,d)",
                         "Table 4"):
            assert artefact in experiments, artefact

    def test_paper_mapping_links_exist(self):
        mapping = (REPO / "docs" / "paper_mapping.md").read_text()
        for module_path in re.findall(r"`repro\.([a-z0-9_.]+)`", mapping):
            candidate = REPO / "src" / "repro" / (module_path.replace(".", "/") + ".py")
            package = REPO / "src" / "repro" / module_path.replace(".", "/")
            attribute_host = (
                REPO / "src" / "repro" / (module_path.rsplit(".", 1)[0].replace(".", "/") + ".py")
            )
            assert (
                candidate.exists() or package.exists() or attribute_host.exists()
            ), module_path


class TestExamples:
    def test_examples_directory_contents(self):
        examples = REPO / "examples"
        scripts = list(examples.glob("*.py"))
        assert len(scripts) >= 5
        assert (examples / "quickstart.py").exists()
        for script in scripts:
            compile(script.read_text(), str(script), "exec")

    def test_dml_scripts_parse(self):
        from repro.lang.dml import parse_program

        for script in (REPO / "examples").glob("*.dml"):
            program = parse_program(script.read_text())
            assert program.outputs or program.scalar_outputs, script.name

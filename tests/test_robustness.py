"""Robustness and edge-case tests across the stack: degenerate shapes,
resource-limit failures, extreme cluster configurations."""

import numpy as np
import pytest

from repro import (
    ClusterConfig,
    DMacSession,
    MemoryLimitExceeded,
    StageExecutionError,
)
from repro.baselines.rlocal import run_local
from repro.datasets import sparse_random
from repro.lang.program import ProgramBuilder
from repro.programs import build_gnmf_program


def session(workers=4, block=8, **kwargs):
    return DMacSession(
        ClusterConfig(num_workers=workers, threads_per_worker=1, block_size=block, **kwargs)
    )


class TestDegenerateShapes:
    def test_1x1_matrices(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (1, 1))
        b = pb.load("B", (1, 1))
        pb.output(pb.assign("C", a @ b + a))
        result = session().run(pb.build(), {"A": np.array([[3.0]]), "B": np.array([[4.0]])})
        assert result.matrices["C"][0, 0] == pytest.approx(15.0)

    def test_single_row_vector_pipeline(self, rng):
        pb = ProgramBuilder()
        v = pb.load("v", (1, 50))
        m = pb.load("M", (50, 50))
        pb.output(pb.assign("r", v @ m))
        arrays = {"v": rng.random((1, 50)), "M": rng.random((50, 50))}
        result = session().run(pb.build(), arrays)
        np.testing.assert_allclose(result.matrices["r"], arrays["v"] @ arrays["M"], atol=1e-9)

    def test_block_size_larger_than_matrix(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (5, 5))
        pb.output(pb.assign("B", a @ a))
        array = rng.random((5, 5))
        result = session(block=64).run(pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["B"], array @ array, atol=1e-10)

    def test_all_zero_input(self):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16), sparsity=0.0)
        b = pb.load("B", (16, 16))
        pb.output(pb.assign("C", a @ b))
        result = session().run(
            pb.build(), {"A": np.zeros((16, 16)), "B": np.ones((16, 16))}
        )
        assert np.all(result.matrices["C"] == 0.0)

    def test_more_workers_than_block_rows(self, rng):
        """K=8 workers but only 2 block rows: some workers stay idle but
        results are unaffected."""
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        pb.output(pb.assign("B", a + a))
        array = rng.random((16, 16))
        result = session(workers=8).run(pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["B"], 2 * array)

    def test_single_worker_cluster_matches_multi(self, rng):
        data = sparse_random(48, 32, 0.2, seed=5, ensure_coverage=True)
        program = build_gnmf_program((48, 32), 0.2, factors=4, iterations=2)
        solo = session(workers=1).run(program, {"V": data})
        quad = session(workers=4).run(program, {"V": data})
        for name in program.outputs:
            np.testing.assert_allclose(solo.matrices[name], quad.matrices[name], atol=1e-9)

    def test_single_worker_moves_zero_bytes(self, rng):
        data = sparse_random(48, 32, 0.2, seed=5, ensure_coverage=True)
        program = build_gnmf_program((48, 32), 0.2, factors=4, iterations=2)
        result = session(workers=1).run(program, {"V": data})
        assert result.comm_bytes == 0


class TestResourceFailures:
    def test_memory_limit_propagates_from_distributed_run(self, rng):
        """A worker exceeding its budget mid-program surfaces the error,
        wrapped with the failing stage's context."""
        pb = ProgramBuilder()
        a = pb.load("A", (64, 64))
        pb.output(pb.assign("B", a @ a))
        with pytest.raises(StageExecutionError, match="exceeds limit") as info:
            session(block=8, memory_limit_bytes=2000).run(
                pb.build(), {"A": rng.random((64, 64))}
            )
        assert isinstance(info.value.__cause__, MemoryLimitExceeded)

    def test_generous_limit_is_harmless(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (32, 32))
        pb.output(pb.assign("B", a @ a))
        array = rng.random((32, 32))
        result = session(block=8, memory_limit_bytes=10**9).run(pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["B"], array @ array, atol=1e-9)


class TestNumericalEdges:
    def test_division_produces_inf_not_crash(self):
        """Cell-wise division by a zero denominator mirrors numpy (inf),
        matching the single-machine baseline bit-for-bit."""
        pb = ProgramBuilder()
        a = pb.load("A", (4, 4))
        b = pb.load("B", (4, 4))
        pb.output(pb.assign("C", a / b))
        num = np.ones((4, 4))
        den = np.ones((4, 4))
        den[0, 0] = 0.0
        result = session(block=2).run(pb.build(), {"A": num, "B": den})
        reference = run_local(pb.build(), {"A": num, "B": den})
        np.testing.assert_array_equal(result.matrices["C"], reference.matrices["C"])
        assert np.isinf(result.matrices["C"][0, 0])

    def test_large_magnitude_values(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a @ a))
        array = rng.random((8, 8)) * 1e150
        result = session(block=4).run(pb.build(), {"A": array})
        np.testing.assert_allclose(
            result.matrices["B"], array @ array, rtol=1e-12
        )

    def test_negative_values_in_sparse_blocks(self, rng):
        array = sparse_random(20, 20, 0.3, seed=9) - 0.5
        array[np.abs(array) < 1e-9] = 0.0
        pb = ProgramBuilder()
        a = pb.load("A", (20, 20), sparsity=float(np.count_nonzero(array)) / 400)
        pb.output(pb.assign("B", a.T @ a))
        result = session(block=4).run(pb.build(), {"A": array})
        np.testing.assert_allclose(result.matrices["B"], array.T @ array, atol=1e-9)


class TestProgramReuse:
    def test_same_program_on_different_data(self, rng):
        pb = ProgramBuilder()
        a = pb.load("A", (16, 16))
        pb.output(pb.assign("B", a @ a))
        program = pb.build()
        s = session()
        plan = s.plan(program)
        for seed in (1, 2, 3):
            array = np.random.default_rng(seed).random((16, 16))
            result = s.run(program, {"A": array}, plan=plan)
            np.testing.assert_allclose(result.matrices["B"], array @ array, atol=1e-9)

    def test_program_is_immutable_after_build(self):
        pb = ProgramBuilder()
        a = pb.load("A", (8, 8))
        pb.output(pb.assign("B", a + a))
        program = pb.build()
        with pytest.raises(Exception):
            program.ops += ()  # frozen dataclass: no reassignment


class TestConcurrencyDeterminism:
    def test_many_threads_identical_results(self, rng):
        """The In-Place engine's task decomposition is deterministic: the
        thread count never changes the produced numbers (accumulation order
        within a task is fixed)."""
        from repro.blocks import assemble, split
        from repro.localexec import LocalEngine

        a = rng.random((60, 60))
        b = rng.random((60, 60))
        ga, gb = split(a, 10), split(b, 10)
        baseline = None
        for threads in (1, 2, 8, 16):
            engine = LocalEngine(threads=threads, inplace=True)
            product = assemble(engine.matmul_grids(ga, gb), (60, 60), 10)
            if baseline is None:
                baseline = product
            else:
                np.testing.assert_array_equal(product, baseline)

    def test_peak_memory_by_worker_reported(self, rng):
        from repro.programs import build_gnmf_program

        data = sparse_random(64, 48, 0.1, seed=1, ensure_coverage=True)
        program = build_gnmf_program((64, 48), 0.1, factors=4, iterations=1)
        s = session(block=16)
        s.run(program, {"V": data})
        peaks = s.context.peak_memory_by_worker()
        assert len(peaks) == 4
        assert max(peaks) == s.context.peak_memory_bytes()
        assert all(p >= 0 for p in peaks)

"""Behaviour of the standalone benchmark runner (``benchmarks/run_all.py``)
and the harness's structured table sidecars it consolidates."""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def load_module(name, relative):
    spec = importlib.util.spec_from_file_location(name, REPO / relative)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def run_all(tmp_path, monkeypatch):
    module = load_module("run_all_under_test", "benchmarks/run_all.py")
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(module, "SUMMARY_PATH", tmp_path / "BENCH_summary.json")
    return module


class TestUnknownExperiments:
    def test_unknown_only_errors_with_valid_names(self, run_all, capsys):
        assert run_all.main(["--only", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments: nonsense" in err
        assert "valid names:" in err
        for name in run_all.EXPERIMENTS:
            assert name in err

    def test_unknown_positional_errors_too(self, run_all, capsys):
        assert run_all.main(["fig6", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_list_enumerates_experiments(self, run_all, capsys):
        assert run_all.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fusedkernels" in out
        assert "bench_fused_kernels.py" in out


class TestSummary:
    def test_write_summary_persists_entries(self, run_all):
        entries = [
            {
                "experiment": "fig6",
                "file": "bench_fig6_gnmf.py",
                "wall_clock_seconds": 1.5,
                "returncode": 0,
                "tables": [{"name": "fig6_gnmf", "rows": []}],
            }
        ]
        run_all.write_summary(entries)
        summary = json.loads(run_all.SUMMARY_PATH.read_text())
        assert summary["suite"] == "dmac-paper-reproduction"
        assert summary["python"]
        assert summary["experiments"] == entries

    def test_refreshed_tables_reports_only_new_writes(self, run_all):
        stale = run_all.RESULTS_DIR / "old.json"
        stale.write_text(json.dumps({"name": "old"}))
        before = run_all._table_stamps()
        fresh = run_all.RESULTS_DIR / "fresh.json"
        fresh.write_text(json.dumps({"name": "fresh"}))
        tables = run_all._refreshed_tables(before)
        assert [table["name"] for table in tables] == ["fresh"]

    def test_refreshed_tables_skips_the_summary_itself(self, run_all):
        run_all.write_summary([])
        assert run_all._refreshed_tables({}) == []


class TestHarnessSidecar:
    def test_report_writes_structured_json(self, tmp_path, monkeypatch):
        harness = load_module("harness_under_test", "benchmarks/harness.py")
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        harness.report(
            "sample",
            "Sample table",
            ["metric", "value"],
            [["speedup", 1.5]],
            notes="a note",
            seed=13,
        )
        structured = json.loads((tmp_path / "sample.json").read_text())
        assert structured == {
            "name": "sample",
            "title": "Sample table",
            "headers": ["metric", "value"],
            "rows": [["speedup", "1.5"]],
            "notes": "a note",
            "seed": 13,
        }
        assert (tmp_path / "sample.txt").read_text().startswith("Sample table")

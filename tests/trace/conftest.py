"""Shared workloads for the trace suite: all seven paper applications,
scaled down to run in a few hundred milliseconds each."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterConfig, DMacSession
from repro.datasets import graph_like, netflix_like, row_normalize, sparse_random
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_jacobi_program,
    build_linreg_program,
    build_logreg_program,
    build_pagerank_program,
    build_svd_program,
    split_system,
)


def seven_apps():
    """``(name, program, inputs)`` for every app of the equivalence suite."""
    out = []
    gnmf_data = netflix_like(scale=1e-3, seed=3)
    out.append((
        "gnmf",
        build_gnmf_program(gnmf_data.shape, 0.02, factors=4, iterations=2),
        {"V": gnmf_data},
    ))
    link = row_normalize(graph_like("soc-pokec", scale=1e-3, seed=4))
    out.append((
        "pagerank",
        build_pagerank_program(link.shape[0], 0.05, iterations=2),
        {"link": link},
    ))
    design = sparse_random(120, 12, 0.1, seed=5)
    target = sparse_random(120, 1, 1.0, seed=6)
    out.append((
        "linreg",
        build_linreg_program(design.shape, 0.1, iterations=2),
        {"V": design, "y": target},
    ))
    rng = np.random.default_rng(7)
    labels = (rng.random((120, 1)) > 0.5).astype(float)
    out.append((
        "logreg",
        build_logreg_program(design.shape, 0.1, iterations=2),
        {"V": design, "y": labels},
    ))
    n = 48
    matrix = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
    np.fill_diagonal(matrix, np.abs(matrix).sum(axis=1) + 1.0)
    remainder, dinv, rhs = split_system(matrix, rng.random((n, 1)))
    out.append((
        "jacobi",
        build_jacobi_program(n, 0.3, iterations=2),
        {"R": remainder, "dinv": dinv, "b": rhs},
    ))
    ratings = netflix_like(scale=1e-3, seed=8).T
    out.append(("cf", build_cf_program(ratings.shape, 0.02), {"R": ratings}))
    svd_data = netflix_like(scale=1e-3, seed=9)
    svd_program, __ = build_svd_program(svd_data.shape, 0.02, rank=3)
    out.append(("svd", svd_program, {"V": svd_data}))
    return out


@pytest.fixture
def traced_session():
    """A session on a cluster whose engines use pool threads (L=2), so the
    trace exercises context propagation into block tasks."""
    return DMacSession(
        ClusterConfig(num_workers=4, threads_per_worker=2, block_size=8)
    )

"""TraceCollector unit behaviour: span linkage, canonical ordering,
attempt numbering, metrics aggregation."""

from repro.trace import TraceCollector
from repro.trace.collector import MetricsRegistry
from repro.trace.model import EVENT_KINDS, SPAN_KINDS, PointEvent, Span


class TestSpans:
    def test_parent_linkage_follows_context(self):
        collector = TraceCollector()
        with collector.span("plan", "plan") as plan:
            with collector.span("stage", "stage-1", node=0, stage=1) as stage:
                with collector.span("step", "multiply", node=0) as step:
                    assert step.parent_id == stage.span_id
                assert stage.parent_id == plan.span_id
        assert plan.parent_id is None

    def test_stage_spans_get_attempt_numbers_per_node(self):
        collector = TraceCollector()
        for __ in range(2):
            with collector.span("stage", "stage-1", node=0, stage=1):
                pass
        with collector.span("stage", "stage-1", node=1, stage=1):
            pass
        attempts = [
            (s.attrs["node"], s.attrs["attempt"]) for s in collector.spans("stage")
        ]
        assert sorted(attempts) == [(0, 1), (0, 2), (1, 1)]

    def test_end_span_merges_attrs(self):
        collector = TraceCollector()
        span = collector.begin_span("step", "multiply", node=0)
        collector.end_span(span, bytes=10, flops=20)
        assert span.attrs["bytes"] == 10
        assert span.wall_end is not None and span.wall_end >= span.wall_start

    def test_kind_filter(self):
        collector = TraceCollector()
        with collector.span("plan", "plan"):
            with collector.span("stage", "stage-1", node=0, stage=1):
                pass
        assert [s.kind for s in collector.spans("stage")] == ["stage"]
        assert len(collector.spans()) == 2


class TestEvents:
    def test_events_sort_canonically_not_by_arrival(self):
        collector = TraceCollector()
        collector.event("transfer", "shuffle", stage=(1, 1), nbytes=2)
        collector.event("cache", "hit", stage=(0, 1))
        collector.event("transfer", "broadcast", stage=(0, 1), nbytes=1)
        kinds = [e.kind for e in collector.events()]
        assert kinds == sorted(
            kinds, key=EVENT_KINDS.index
        ), "canonical order groups by kind rank"
        transfers = collector.events("transfer")
        assert [e.name for e in transfers] == ["broadcast", "shuffle"]

    def test_model_kind_tuples_cover_the_emitters(self):
        assert set(SPAN_KINDS) == {"plan", "stage", "step", "block-task"}
        assert set(EVENT_KINDS) == {
            "transfer", "cache", "fault", "recovery", "retry", "speculation"
        }

    def test_sort_keys_ignore_wall_clock(self):
        early = PointEvent("cache", "hit", wall_time=1.0, stage=(0, 1))
        late = PointEvent("cache", "hit", wall_time=99.0, stage=(0, 1))
        assert early.sort_key() == late.sort_key()
        a = Span(0, None, "stage", "stage-1", wall_start=1.0,
                 sim_start=0.5, attrs={"node": 2})
        b = Span(9, None, "stage", "stage-1", wall_start=50.0,
                 sim_start=0.5, attrs={"node": 2})
        assert a.sort_key() == b.sort_key()


class TestMetrics:
    def test_registry_aggregates(self):
        registry = MetricsRegistry()
        registry.count("n")
        registry.count("n", 2)
        registry.gauge("g", 0.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        payload = registry.to_json_dict()
        assert payload["counters"]["n"] == 3
        assert payload["gauges"]["g"] == 0.5
        assert payload["histograms"]["h"] == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0
        }

    def test_collector_metrics_bucket_transfers(self):
        collector = TraceCollector()
        collector.event("transfer", "shuffle", stage=(0, 1),
                        nbytes=10, link=(1, 0), scope="stage-1/x")
        collector.event("transfer", "broadcast", stage=None,
                        nbytes=4, link=None, scope="broadcast")
        metrics = collector.metrics().to_json_dict()["counters"]
        assert metrics["bytes.total"] == 14
        assert metrics["bytes.kind.shuffle"] == 10
        assert metrics["bytes.link.1->0"] == 10
        assert metrics["bytes.unattributed"] == 4
        assert metrics["transfers"] == 2

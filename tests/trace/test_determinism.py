"""Trace determinism: the same app + seed + fault spec must export a
byte-identical Chrome trace, no matter how the host scheduled threads.

Exports use only simulated timestamps and canonical ordering, so wall
clocks, pool interleavings and concurrent-stage dispatch order cannot
leak into the output."""

import json

import pytest

from repro import ClusterConfig, DMacSession
from repro.faults import ChaosEngine
from repro.trace import TraceCollector, to_chrome_trace, to_json_dict

from .conftest import seven_apps


def _chrome(program, inputs, *, chaos_seed=None, faults=None,
            max_concurrent=None):
    session = DMacSession(
        ClusterConfig(
            num_workers=4,
            threads_per_worker=2,
            block_size=8,
            max_concurrent_stages=max_concurrent,
        )
    )
    chaos = (
        ChaosEngine(chaos_seed, faults) if faults is not None else None
    )
    tracer = TraceCollector()
    session.run(program, inputs, chaos=chaos, tracer=tracer)
    return to_chrome_trace(tracer)


@pytest.mark.parametrize(
    "app,program,inputs", [seven_apps()[0], seven_apps()[1]],
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_chrome_export_is_byte_identical_across_runs(app, program, inputs):
    exports = {_chrome(program, inputs) for __ in range(3)}
    assert len(exports) == 1


def test_concurrent_and_serial_schedules_export_identically():
    """max_concurrent_stages only changes host dispatch order; the
    simulated timeline -- hence the export -- is the same bytes."""
    __, program, inputs = seven_apps()[0]  # gnmf has parallel stages
    assert _chrome(program, inputs, max_concurrent=1) == _chrome(
        program, inputs, max_concurrent=None
    )


def test_chrome_export_deterministic_under_faults():
    __, program, inputs = seven_apps()[1]  # pagerank
    spec = "crash:p=0.3;flaky:p=0.2;straggler:p=0.3,factor=4"
    exports = {
        _chrome(program, inputs, chaos_seed=11, faults=spec)
        for __ in range(3)
    }
    assert len(exports) == 1
    document = json.loads(next(iter(exports)))
    names = {event["name"] for event in document["traceEvents"]}
    assert any(name.startswith(("fault:", "retry:")) for name in names), (
        "the seeded faults must be visible in the export"
    )


def test_chrome_export_loads_and_uses_simulated_time():
    __, program, inputs = seven_apps()[2]  # linreg
    document = json.loads(_chrome(program, inputs))
    assert document["otherData"]["clock"] == "simulated"
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert complete, "stage/step spans must export as complete events"
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert {"pid", "tid", "name", "args"} <= set(event)


def test_raw_json_export_spans_are_ordered_canonically():
    __, program, inputs = seven_apps()[2]
    session = DMacSession(ClusterConfig(num_workers=4, block_size=8))
    tracer = TraceCollector()
    session.run(program, inputs, tracer=tracer)
    payload = to_json_dict(tracer)
    stage_rows = [s for s in payload["spans"] if s["kind"] == "stage"]
    starts = [row["sim_start"] for row in stage_rows]
    assert starts == sorted(starts)

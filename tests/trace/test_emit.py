"""The emit API: a global tracer slot plus a context-local stage marker,
both dark (single ``None`` read) when tracing is off."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.datasets import sparse_random
from repro.programs import build_linreg_program
from repro.trace import TraceCollector, active_tracer, install_tracer
from repro.trace.emit import current_stage, stage_scope


class TestTracerSlot:
    def test_no_tracer_by_default(self):
        assert active_tracer() is None

    def test_install_and_reset(self):
        collector = TraceCollector()
        with install_tracer(collector):
            assert active_tracer() is collector
        assert active_tracer() is None

    def test_reset_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with install_tracer(TraceCollector()):
                raise RuntimeError("boom")
        assert active_tracer() is None

    def test_nested_install_rejected(self):
        with install_tracer(TraceCollector()):
            with pytest.raises(RuntimeError):
                with install_tracer(TraceCollector()):
                    pass  # pragma: no cover
        assert active_tracer() is None

    def test_install_none_is_a_noop_window(self):
        with install_tracer(None):
            assert active_tracer() is None


class TestStageScope:
    def test_no_stage_by_default(self):
        assert current_stage() is None

    def test_scope_sets_and_resets(self):
        with stage_scope(3, 7):
            assert current_stage() == (3, 7)
        assert current_stage() is None

    def test_scopes_nest(self):
        with stage_scope(0, 1):
            with stage_scope(2, 5):
                assert current_stage() == (2, 5)
            assert current_stage() == (0, 1)


class TestDarkWhenOff:
    def test_untraced_run_collects_nothing(self):
        design = sparse_random(60, 8, 0.2, seed=1)
        target = sparse_random(60, 1, 1.0, seed=2)
        program = build_linreg_program(design.shape, 0.2, iterations=1)
        session = DMacSession(ClusterConfig(num_workers=2, block_size=8))
        result = session.run(program, {"V": design, "y": target})
        assert result.tracing is None
        assert active_tracer() is None

    def test_session_trace_flag_creates_a_collector(self):
        design = sparse_random(60, 8, 0.2, seed=1)
        target = sparse_random(60, 1, 1.0, seed=2)
        program = build_linreg_program(design.shape, 0.2, iterations=1)
        session = DMacSession(
            ClusterConfig(num_workers=2, block_size=8), trace=True
        )
        result = session.run(program, {"V": design, "y": target})
        assert isinstance(result.tracing, TraceCollector)
        assert result.tracing.spans("stage")
        assert active_tracer() is None  # uninstalled after the run

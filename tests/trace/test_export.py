"""The terminal timeline and the raw JSON document."""

import json

from repro import ClusterConfig, DMacSession
from repro.trace import TraceCollector, format_summary, to_json_dict

from .conftest import seven_apps


def _traced_pagerank():
    __, program, inputs = seven_apps()[1]
    session = DMacSession(ClusterConfig(num_workers=4, block_size=8))
    tracer = TraceCollector()
    result = session.run(program, inputs, tracer=tracer)
    return tracer, result


class TestSummary:
    def test_timeline_lists_every_stage_node(self):
        tracer, __ = _traced_pagerank()
        summary = format_summary(tracer)
        assert "simulated timeline" in summary
        for span in tracer.final_stage_spans():
            assert f"node {span.attrs['node']:>3}" in summary
        assert "* = on the critical path" in summary
        assert "metrics" in summary

    def test_critical_path_nodes_are_starred(self):
        tracer, __ = _traced_pagerank()
        starred = [
            line for line in format_summary(tracer).splitlines()
            if " * " in line and line.strip().startswith("node")
        ]
        critical = [
            s for s in tracer.final_stage_spans()
            if s.attrs.get("on_critical_path")
        ]
        assert len(starred) == len(critical) > 0


class TestJsonDocument:
    def test_document_is_json_serialisable_and_complete(self):
        tracer, result = _traced_pagerank()
        payload = json.loads(json.dumps(to_json_dict(tracer), sort_keys=True))
        assert payload["metrics"]["counters"]["bytes.total"] == result.comm_bytes
        assert payload["critical_path"], "scheduler critical path is recorded"
        assert payload["wall_seconds"] > 0
        kinds = {span["kind"] for span in payload["spans"]}
        assert {"plan", "stage", "step", "block-task"} <= kinds

    def test_step_spans_nest_inside_their_stage_interval(self):
        tracer, __ = _traced_pagerank()
        stages = {s.span_id: s for s in tracer.final_stage_spans()}
        placed_steps = [
            s for s in tracer.spans("step") if s.sim_start is not None
        ]
        assert placed_steps
        for step in placed_steps:
            stage = stages[step.parent_id]
            assert stage.sim_start <= step.sim_start
            assert step.sim_end <= stage.sim_end + 1e-12

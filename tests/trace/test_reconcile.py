"""The cross-check pass: trace-summed bytes/seconds must reconcile
*exactly* with the CommunicationLedger and the SimulatedClock, for every
application of the equivalence suite, clean and under injected faults."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.errors import TraceReconciliationError
from repro.faults import ChaosEngine
from repro.trace import TraceCollector, assert_reconciled, reconcile

from .conftest import seven_apps


def _checks(report):
    return {check["name"]: check for check in report["checks"]}


@pytest.mark.parametrize(
    "app,program,inputs", seven_apps(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_every_app_reconciles_exactly(app, program, inputs, traced_session):
    tracer = TraceCollector()
    result = traced_session.run(program, inputs, tracer=tracer)
    report = assert_reconciled(tracer)

    checks = _checks(report)
    # Bytes: integer equality against the ledger, per kind/link/scope.
    assert checks["bytes.total"]["expected"] == checks["bytes.total"]["actual"]
    assert checks["bytes.total"]["actual"] == result.comm_bytes
    assert checks["bytes.by_link"]["ok"] and checks["bytes.by_scope"]["ok"]
    # Stage attribution: no transfer recorded under a scope that disagrees
    # with the recording thread's stage context.
    assert checks["bytes.stage_attribution"]["actual"] == []
    # Seconds: float *equality* (same components, same addition order as
    # the scheduler's critical-path sum), not a tolerance.
    network, compute, overhead = checks["seconds.critical_path"]["actual"]
    assert (network, compute, overhead) == checks["seconds.critical_path"]["expected"]
    assert network + compute + overhead == result.simulated_seconds
    assert checks["seconds.clock_delta"]["ok"]


def test_reconciles_under_injected_faults(traced_session):
    __, program, inputs = seven_apps()[1]  # pagerank
    engine = ChaosEngine(11, "crash:p=0.3;flaky:p=0.2;straggler:p=0.3,factor=4")
    tracer = TraceCollector()
    traced_session.run(program, inputs, chaos=engine, tracer=tracer)
    assert engine.injected, "seed 11 must actually fire faults"
    report = assert_reconciled(tracer)
    assert _checks(report)["bytes.stage_attribution"]["actual"] == []
    assert tracer.events("fault")


def test_reconciles_with_concurrent_stages_and_optimizer():
    app, program, inputs = seven_apps()[0]  # gnmf: widest stage graph
    session = DMacSession(
        ClusterConfig(num_workers=4, threads_per_worker=2, block_size=8),
        optimize=True,
    )
    tracer = TraceCollector()
    session.run(program, inputs, tracer=tracer)
    assert_reconciled(tracer)


def test_tampered_trace_fails_reconciliation(traced_session):
    __, program, inputs = seven_apps()[2]  # linreg: smallest
    tracer = TraceCollector()
    traced_session.run(program, inputs, tracer=tracer)
    # Forge one transfer event the ledger never saw.
    tracer.event("transfer", "shuffle", stage=(0, 1),
                 nbytes=1, link=(0, 1), scope="stage-1/forged")
    report = reconcile(tracer)
    assert not report["ok"]
    failed = {c["name"] for c in report["checks"] if not c["ok"]}
    assert "bytes.total" in failed
    with pytest.raises(TraceReconciliationError, match="bytes.total"):
        assert_reconciled(tracer)


def test_misattributed_scope_is_caught(traced_session):
    __, program, inputs = seven_apps()[2]
    tracer = TraceCollector()
    traced_session.run(program, inputs, tracer=tracer)
    # A record whose ledger scope says stage 2 but whose recording context
    # said stage 1 -- the shape of the old threading.local bug.
    record = tracer.meta["ledger_records"][0]
    tracer.meta["ledger_records"].append(
        type(record)("shuffle", 8, "stage-2/forged", (0, 1))
    )
    tracer.event("transfer", "shuffle", stage=(0, 1),
                 nbytes=8, link=(0, 1), scope="stage-2/forged")
    report = reconcile(tracer)
    failed = {c["name"] for c in report["checks"] if not c["ok"]}
    assert "bytes.stage_attribution" in failed

"""Small, fast parameterisations of the seven paper applications, shared
by the verification tests (certification audit + memory cross-checks)."""

from __future__ import annotations

from repro.programs.registry import PAPER_APPS as APPS
from repro.programs.registry import WorkloadParams, build_workload

#: Shapes small enough that running every app twice stays in CI budget.
SMALL_ARGS = dict(
    scale=3e-3,
    seed=7,
    factors=10,
    iterations=2,
    graph="LiveJournal",
    rows=600,
    features=40,
    sparsity=0.05,
    rank=6,
)


def small_workload(app: str):
    """(program, inputs, svd_names) for one app at reduced scale."""
    assert app in APPS
    workload = build_workload(app, WorkloadParams(**SMALL_ARGS))
    return workload.program, workload.inputs, workload.extra

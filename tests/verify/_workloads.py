"""Small, fast parameterisations of the seven paper applications, shared
by the verification tests (certification audit + memory cross-checks)."""

from __future__ import annotations

import argparse

from repro.cli import APPS, _workload

#: Shapes small enough that running every app twice stays in CI budget.
SMALL_ARGS = dict(
    scale=3e-3,
    seed=7,
    factors=10,
    iterations=2,
    graph="LiveJournal",
    rows=600,
    features=40,
    sparsity=0.05,
    rank=6,
)


def small_workload(app: str):
    """(program, inputs, svd_names) for one app at reduced scale."""
    assert app in APPS
    return _workload(argparse.Namespace(app=app, **SMALL_ARGS))

"""Translation validation: identity and strategy changes certify, value
changes are rejected, and a broken optimizer pass can never hand its plan
to the executor."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.cli import APPS
from repro.core.plan import CellwiseStep, MatMulStep
from repro.errors import TranslationValidationError
from repro.planopt import optimize_plan
from repro.planopt.common import AppliedRewrite, clone_plan
from repro.verify import certify, value_summary
from repro.verify.certify import OBLIGATIONS

from tests.verify._workloads import small_workload


def _gnmf_plan():
    program, __, ___ = small_workload("gnmf")
    return DMacSession(ClusterConfig(num_workers=4)).plan(program)


def test_identity_certifies_every_obligation():
    plan = _gnmf_plan()
    certificate = certify(plan, clone_plan(plan), pass_name="identity")
    assert certificate.obligations == OBLIGATIONS
    assert certificate.outputs == len(plan.outputs)


def test_matmul_strategy_is_a_free_degree_of_freedom():
    plan = _gnmf_plan()
    rewritten = clone_plan(plan)
    matmuls = [s for s in rewritten.steps if isinstance(s, MatMulStep)]
    assert matmuls, "GNMF must contain matmul steps"
    for step in matmuls:
        step.strategy = "cpmm" if step.strategy != "cpmm" else "rmm1"
    certify(plan, rewritten, pass_name="restrategise")  # must not raise


def test_swapped_divide_operands_fail_value_equivalence():
    plan = _gnmf_plan()
    rewritten = clone_plan(plan)
    divide = next(
        s for s in rewritten.steps
        if isinstance(s, CellwiseStep) and s.op.op == "divide"
    )
    divide.left, divide.right = divide.right, divide.left
    with pytest.raises(TranslationValidationError, match="value-equivalence"):
        certify(plan, rewritten, pass_name="swap")


def test_duplicate_publish_of_the_same_value_is_not_a_conflict():
    plan = _gnmf_plan()
    summary = value_summary(plan)
    assert summary.conflicts == ()
    assert summary.order_violations == ()


class _EvilPass:
    """A plausible-looking rewrite that silently swaps divide operands --
    the classic broken-optimizer bug translation validation must catch."""

    name = "evil"

    def run(self, plan, context):
        divide = next(
            s for s in plan.steps
            if isinstance(s, CellwiseStep) and s.op.op == "divide"
        )
        divide.left, divide.right = divide.right, divide.left
        return [AppliedRewrite(pass_name=self.name,
                               description="swap divide operands")]


def test_broken_pass_is_rejected_before_any_plan_escapes():
    plan = _gnmf_plan()
    with pytest.raises(TranslationValidationError, match="pass 'evil'"):
        optimize_plan(plan, num_workers=4, passes=(_EvilPass(),))


def test_validation_can_be_disabled_explicitly():
    # With validate=False the same broken pass sails through -- proving the
    # default pipeline really is what stops it.
    plan = _gnmf_plan()
    broken = optimize_plan(
        plan, num_workers=4, passes=(_EvilPass(),), validate=False
    )
    assert broken.certificates == ()


@pytest.mark.parametrize("app", APPS)
def test_every_optimizer_rewrite_on_the_paper_apps_is_certified(app):
    program, __, ___ = small_workload(app)
    session = DMacSession(ClusterConfig(num_workers=4), optimize=True)
    plan = session.plan(program)
    certificates = plan.certificates
    assert certificates, "optimized plans must carry a certificate trail"
    assert certificates[-1].pass_name == "pipeline"
    for certificate in certificates:
        assert certificate.obligations == OBLIGATIONS
    # Every applied rewrite is covered by exactly one per-pass certificate,
    # and the end-to-end pipeline certificate agrees on the total.
    per_pass = sum(
        c.rewrites for c in certificates if c.pass_name != "pipeline"
    )
    assert per_pass == len(plan.rewrites)
    assert certificates[-1].rewrites == len(plan.rewrites)

"""The generic worklist engine: convergence, widening, and the defensive
budget.  The engine is domain-agnostic, so these tests drive it with plain
sentinel objects standing in for plan steps."""

import pytest

from repro.errors import VerificationError
from repro.verify import FlatLattice, Interval, IntervalLattice, Lattice, solve


class _Stmt:
    """A stand-in step; the engine only threads it through the callbacks."""

    def __init__(self, name):
        self.name = name


def test_straight_line_chain_converges_in_one_pass_each():
    # x0 = (1, 1); x_{i+1} = x_i  -- a forward copy chain.
    steps = [_Stmt(f"s{i}") for i in range(5)]

    def transfer(index, step, env):
        if index == 0:
            return {"x0": (1, 1)}
        return {f"x{index}": env.get(f"x{index - 1}")}

    def reads(index, step):
        return [] if index == 0 else [f"x{index - 1}"]

    result = solve(steps, FlatLattice(), transfer, reads)
    assert result.values["x4"] == (1, 1)
    assert not result.widened
    # Initial sweep plus the re-queues as facts ripple down the chain.
    assert result.iterations < 3 * len(steps)


def test_loop_carried_growth_needs_widening_to_converge():
    # One summarised cell fed back into itself: x = [0, hi(x) + 1].  Without
    # widening the chain [0,1] < [0,2] < ... never stabilises; the engine
    # must jump the upper bound to unbounded and stop.
    step = _Stmt("loop")

    def transfer(index, stmt, env):
        current = env.get("x")
        if current is None:
            return {"x": Interval(0, 1)}
        hi = None if current.hi is None else current.hi + 1
        return {"x": Interval(0, hi)}

    def reads(index, stmt):
        return ["x"]

    result = solve([step], IntervalLattice(), transfer, reads, widen_after=3)
    assert result.values["x"] == Interval(0, None)
    assert "x" in result.widened


def test_non_monotone_transfer_hits_the_budget_instead_of_hanging():
    class LastWriteWins(Lattice):
        """Deliberately not a lattice: 'join' forgets the old value, so an
        oscillating transfer function never stabilises."""

        def bottom(self):
            return None

        def join(self, a, b):
            return b

    def transfer(index, stmt, env):
        return {"x": 2 if env.get("x") == 1 else 1}

    def reads(index, stmt):
        return ["x"]

    with pytest.raises(VerificationError, match="failed to converge"):
        solve([_Stmt("osc")], LastWriteWins(), transfer, reads)


def test_changed_cells_requeue_exactly_their_consumers():
    # A diamond: s0 defines a; s1/s2 read a; s3 reads both results.  The
    # engine must propagate one fact through both arms and join at the sink.
    steps = [_Stmt(n) for n in ("src", "left", "right", "sink")]

    def transfer(index, step, env):
        if index == 0:
            return {"a": (2, 2)}
        if index == 1:
            return {"l": env.get("a")}
        if index == 2:
            return {"r": env.get("a")}
        if env.get("l") == env.get("r") and env.get("l") is not None:
            return {"out": env.get("l")}
        return {}

    reads_of = {0: [], 1: ["a"], 2: ["a"], 3: ["l", "r"]}

    result = solve(steps, FlatLattice(), transfer, lambda i, s: reads_of[i])
    assert result.values["out"] == (2, 2)

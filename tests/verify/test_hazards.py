"""Happens-before hazard detection: the PR-5 bug class (an ordering edge
the stage graph fails to record) must be caught statically, double
publishes must be flagged only when the values actually conflict, and
clean planner output must verify hazard-free."""

import dataclasses

from repro import ClusterConfig, DMacSession, Scheme
from repro.core.plan import CellwiseStep, Plan, SourceStep
from repro.lang.program import CellwiseOp, ProgramBuilder
from repro.core.plan import MatrixInstance
from repro.runtime.graph import StageGraph
from repro.verify import (
    DOUBLE_PUBLISH,
    READ_BEFORE_PUBLISH,
    ancestor_masks,
    find_hazards,
    happens_before,
)

from tests.verify._workloads import small_workload


def _plan(program):
    return DMacSession(ClusterConfig(num_workers=4)).plan(program)


def _scalar_loop_plan():
    pb = ProgramBuilder()
    A = pb.random("A", (24, 24))
    s = pb.scalar("s", A.sum())
    pb.output(pb.assign("B", A * s))
    return _plan(pb.build())


def test_clean_planner_output_has_no_hazards():
    for app in ("gnmf", "pagerank"):
        program, __, ___ = small_workload(app)
        graph = StageGraph.from_plan(_plan(program))
        assert find_hazards(graph) == []


def test_dropped_ordering_edge_is_a_read_before_publish_hazard():
    # The PR-5 bug class: a producer that drifts after its consumer in plan
    # order loses its StageGraph edge silently -- the scheduler would then
    # happily run the consumer first.  The detector must see it statically.
    plan = _scalar_loop_plan()
    aggregate = next(
        i for i, s in enumerate(plan.steps) if s.scalar_output() is not None
    )
    scalar_name = plan.steps[aggregate].scalar_output()
    consumer = next(
        i for i, s in enumerate(plan.steps)
        if scalar_name in s.scalar_inputs()
    )
    assert aggregate < consumer, "planner orders the aggregate first"
    assert find_hazards(StageGraph.from_plan(plan)) == []  # well-formed

    step = plan.steps.pop(aggregate)
    plan.steps.insert(consumer, step)  # lands just after the consumer

    hazards = find_hazards(StageGraph.from_plan(plan))
    assert [h.kind for h in hazards] == [READ_BEFORE_PUBLISH]
    assert hazards[0].subject == f"scalar {scalar_name!r}"


def _cellwise_fixture():
    """program + the instances/ops to hand-build publish schedules with."""
    pb = ProgramBuilder()
    A = pb.random("A", (8, 8))
    B = pb.random("B", (8, 8))
    pb.output(pb.assign("C", A + B))
    program = pb.build()
    a_name = program.bindings["A"]
    b_name = program.bindings["B"]
    c_name = program.bindings["C"]
    cellwise = next(op for op in program.ops if isinstance(op, CellwiseOp))
    a = MatrixInstance(a_name, False, Scheme.ROW)
    b = MatrixInstance(b_name, False, Scheme.ROW)
    c = MatrixInstance(c_name, False, Scheme.ROW)
    sources = {
        op.output: SourceStep(op, MatrixInstance(op.output, False, Scheme.ROW))
        for op in program.ops
        if op.output in (a_name, b_name)
    }
    return program, cellwise, (a, b, c), sources


def test_conflicting_double_publish_is_a_hazard():
    program, cellwise, (a, b, c), sources = _cellwise_fixture()
    conflicting = dataclasses.replace(cellwise, op="subtract")
    plan = Plan(
        program=program,
        steps=[
            sources[a.name],
            sources[b.name],
            CellwiseStep(cellwise, a, b, c),
            CellwiseStep(conflicting, a, b, c),
        ],
        outputs={c.name: c},
        predicted_bytes=0,
    )
    hazards = find_hazards(StageGraph.from_plan(plan))
    doubles = [h for h in hazards if h.kind == DOUBLE_PUBLISH]
    assert len(doubles) == 1
    assert doubles[0].subject == c.name


def test_republishing_the_same_value_is_not_a_hazard():
    # A duplicated identical publish is redundancy (DM2xx territory), not a
    # race for the value: both winners compute the same thing.
    program, cellwise, (a, b, c), sources = _cellwise_fixture()
    plan = Plan(
        program=program,
        steps=[
            sources[a.name],
            sources[b.name],
            CellwiseStep(cellwise, a, b, c),
            CellwiseStep(cellwise, a, b, c),
        ],
        outputs={c.name: c},
        predicted_bytes=0,
    )
    hazards = find_hazards(StageGraph.from_plan(plan))
    assert [h.kind for h in hazards if h.kind == DOUBLE_PUBLISH] == []


def test_happens_before_matches_the_stage_graphs_own_edges():
    program, __, ___ = small_workload("gnmf")
    graph = StageGraph.from_plan(_plan(program))
    masks = ancestor_masks(graph)
    for node in graph.nodes:
        steps = sorted(node.steps)
        # Within a node: serial, ascending plan order -- and never backwards.
        for earlier, later in zip(steps, steps[1:]):
            assert happens_before(graph, earlier, later, masks)
            assert not happens_before(graph, later, earlier, masks)
        # Across nodes: every recorded dep edge orders every step pair.
        for dep in node.deps:
            for producer in graph.nodes[dep].steps:
                for consumer in node.steps:
                    assert happens_before(graph, producer, consumer, masks)

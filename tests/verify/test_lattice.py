"""Unit tests for the abstract domains under the fixpoint engine."""

from repro.verify import (
    TOP,
    FlatLattice,
    Interval,
    IntervalLattice,
    PowersetLattice,
)


class TestFlatLattice:
    def test_bottom_is_identity_for_join(self):
        lattice = FlatLattice()
        assert lattice.bottom() is None
        assert lattice.join(None, (3, 4)) == (3, 4)
        assert lattice.join((3, 4), None) == (3, 4)

    def test_agreeing_facts_stay_concrete(self):
        lattice = FlatLattice()
        assert lattice.join((3, 4), (3, 4)) == (3, 4)

    def test_disagreeing_facts_go_to_top(self):
        lattice = FlatLattice()
        assert lattice.join((3, 4), (4, 3)) is TOP
        assert lattice.join(TOP, (3, 4)) is TOP

    def test_partial_order(self):
        lattice = FlatLattice()
        assert lattice.leq(None, (3, 4))
        assert lattice.leq((3, 4), TOP)
        assert not lattice.leq(TOP, (3, 4))


class TestInterval:
    def test_clamp_intersects(self):
        assert Interval(2, 10).clamp(0, 6) == Interval(2, 6)
        assert Interval(-5, None).clamp(0, 100) == Interval(0, 100)

    def test_clamp_keeps_lo_at_most_hi(self):
        clamped = Interval(50, 80).clamp(0, 10)
        assert clamped.lo <= clamped.hi == 10

    def test_str_renders_unbounded(self):
        assert str(Interval(0, None)) == "[0, inf]"


class TestIntervalLattice:
    def test_join_is_hull(self):
        lattice = IntervalLattice()
        assert lattice.join(Interval(2, 5), Interval(4, 9)) == Interval(2, 9)
        assert lattice.join(Interval(2, 5), Interval(4, None)) == Interval(2, None)
        assert lattice.join(None, Interval(1, 2)) == Interval(1, 2)

    def test_widen_jumps_growing_upper_bound_to_unbounded(self):
        lattice = IntervalLattice()
        widened = lattice.widen(Interval(0, 10), Interval(0, 11))
        assert widened == Interval(0, None)

    def test_widen_jumps_sinking_lower_bound_to_zero(self):
        lattice = IntervalLattice()
        widened = lattice.widen(Interval(5, 10), Interval(3, 10))
        assert widened == Interval(0, 10)

    def test_widen_is_identity_once_stable(self):
        lattice = IntervalLattice()
        assert lattice.widen(Interval(0, 10), Interval(2, 8)) == Interval(0, 10)


class TestPowersetLattice:
    def test_join_is_union(self):
        lattice = PowersetLattice()
        assert lattice.bottom() == frozenset()
        joined = lattice.join(frozenset({"a"}), frozenset({"b"}))
        assert joined == frozenset({"a", "b"})

    def test_partial_order_is_subset(self):
        lattice = PowersetLattice()
        assert lattice.leq(frozenset({"a"}), frozenset({"a", "b"}))
        assert not lattice.leq(frozenset({"c"}), frozenset({"a", "b"}))

"""The liveness-based memory predictor against the real engines: on every
paper application the static bound must dominate the observed per-worker
tracker peak (soundness) and, under serial stage scheduling, stay within
2x of it (tightness) -- loose enough to be safe, tight enough to be a
budget you can actually provision against."""

import pytest

from repro import ClusterConfig, DMacSession
from repro.cli import APPS
from repro.verify import predict_peak_memory

from tests.verify._workloads import small_workload


def _run(app: str, max_concurrent_stages):
    program, inputs, __ = small_workload(app)
    config = ClusterConfig(
        num_workers=4, max_concurrent_stages=max_concurrent_stages
    )
    # A fresh session per run: tracker peaks accumulate per session.
    return DMacSession(config).run(program, inputs)


@pytest.mark.parametrize("app", APPS)
def test_serial_bound_is_sound_and_within_2x(app):
    result = _run(app, max_concurrent_stages=1)
    observed = result.peak_memory_bytes
    predicted = result.predicted_peak_memory_bytes
    assert predicted is not None
    assert observed <= predicted, (
        f"{app}: unsound -- observed {observed} above the bound {predicted}"
    )
    assert predicted <= 2 * observed, (
        f"{app}: bound too loose -- predicted {predicted} vs observed "
        f"{observed} ({predicted / observed:.2f}x)"
    )


@pytest.mark.parametrize("app", APPS)
def test_concurrent_bound_stays_sound(app):
    # Under the default stage concurrency the bound covers *any* antichain
    # the scheduler could dispatch, so it is sound but deliberately looser;
    # only soundness is contractual here.
    result = _run(app, max_concurrent_stages=None)
    observed = result.peak_memory_bytes
    predicted = result.predicted_peak_memory_bytes
    assert predicted is not None
    assert observed <= predicted


def test_prediction_internals_are_ordered():
    program, __, ___ = small_workload("gnmf")
    plan = DMacSession(ClusterConfig(num_workers=4)).plan(program)
    serial = predict_peak_memory(plan, num_workers=4, max_concurrent_stages=1)
    concurrent = predict_peak_memory(plan, num_workers=4)
    assert serial.concurrency == 1
    assert serial.peak_bytes == serial.serial_peak_bytes
    assert concurrent.concurrency > 1
    assert concurrent.peak_bytes == concurrent.concurrent_peak_bytes
    # The concurrent bound only ever adds transients on top of the pins.
    assert concurrent.concurrent_peak_bytes >= serial.serial_peak_bytes
    assert serial.serial_peak_bytes >= serial.pinned_bytes
    assert serial.serial_peak_bytes >= serial.transient_peak_bytes
    assert len(serial.footprints) == len(plan.steps)


def test_buffer_strategy_predicts_no_less_than_inplace():
    program, __, ___ = small_workload("gnmf")
    plan = DMacSession(ClusterConfig(num_workers=4)).plan(program)
    inplace = predict_peak_memory(
        plan, num_workers=4, inplace=True, max_concurrent_stages=1
    )
    buffered = predict_peak_memory(
        plan, num_workers=4, inplace=False, max_concurrent_stages=1
    )
    assert buffered.serial_peak_bytes >= inplace.serial_peak_bytes


def test_json_dict_lists_the_heaviest_steps():
    program, __, ___ = small_workload("pagerank")
    plan = DMacSession(ClusterConfig(num_workers=4)).plan(program)
    prediction = predict_peak_memory(plan, num_workers=4)
    document = prediction.to_json_dict()
    heaviest = document["heaviest_steps"]
    assert heaviest, "pagerank has charging steps"
    weights = [entry["transient_bytes"] for entry in heaviest]
    assert weights == sorted(weights, reverse=True)
    assert weights[0] == prediction.transient_peak_bytes

"""The session/report surface: verify modes, the aggregate report, and the
executor's pre-run prediction field."""

import pytest

from repro import (
    ClusterConfig,
    DMacSession,
    PlanError,
    VerificationError,
)
from repro.lang.program import ProgramBuilder
from repro.session import VERIFY_MODES
from repro.verify import verify_plan

from tests.verify._workloads import small_workload


def _tiny_program():
    pb = ProgramBuilder()
    A = pb.random("A", (24, 24))
    s = pb.scalar("s", A.sum())
    pb.output(pb.assign("B", A * s))
    return pb.build()


def _break_ordering(plan):
    aggregate = next(
        i for i, s in enumerate(plan.steps) if s.scalar_output() is not None
    )
    scalar_name = plan.steps[aggregate].scalar_output()
    consumer = next(
        i for i, s in enumerate(plan.steps)
        if scalar_name in s.scalar_inputs()
    )
    plan.steps.insert(consumer, plan.steps.pop(aggregate))
    return plan


def test_verify_modes_are_validated():
    assert VERIFY_MODES == ("off", "warn", "error")
    with pytest.raises(PlanError, match="unknown verify mode"):
        DMacSession(verify="strict")


def test_error_mode_executes_clean_plans():
    session = DMacSession(ClusterConfig(num_workers=4), verify="error")
    result = session.run(_tiny_program())
    assert result.matrices
    assert result.predicted_peak_memory_bytes is not None
    assert result.peak_memory_bytes <= result.predicted_peak_memory_bytes


def test_error_mode_refuses_hazardous_plans():
    session = DMacSession(ClusterConfig(num_workers=4), verify="error")
    program = _tiny_program()
    plan = _break_ordering(session.plan(program))
    with pytest.raises(VerificationError, match="read-before-publish"):
        session.run(program, plan=plan)


def test_warn_mode_reports_to_stderr_and_runs_nothing_less(capsys):
    session = DMacSession(ClusterConfig(num_workers=4), verify="warn")
    session.run(_tiny_program())
    assert "read-before-publish" not in capsys.readouterr().err


def test_report_aggregates_all_three_clients():
    program, __, ___ = small_workload("pagerank")
    session = DMacSession(ClusterConfig(num_workers=4), optimize=True)
    plan = session.plan(program)
    report = verify_plan(plan, num_workers=4, target="pagerank")
    assert not report.has_errors
    assert report.certificates  # optimizer left an audit trail
    assert report.memory.peak_bytes > 0
    assert report.iterations > 0
    document = report.to_json_dict()
    assert document["ok"] is True
    assert document["target"] == "pagerank"
    assert document["certificates"]
    rendered = report.format_human()
    assert "[certified]" in rendered
    assert "[memory]" in rendered
    assert "[hazards]" in rendered


def test_report_renders_hazards_as_errors():
    session = DMacSession(ClusterConfig(num_workers=4))
    plan = _break_ordering(session.plan(_tiny_program()))
    report = verify_plan(plan, num_workers=4)
    assert report.has_errors
    assert "hazard(s) found" in report.format_human()
    assert report.to_json_dict()["ok"] is False
